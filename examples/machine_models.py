#!/usr/bin/env python3
"""Aligning for different machines (the paper's §6: "applying our method
to other machine models").

The same program is aligned under three penalty models — a short pipeline,
the paper's Alpha 21164, and a deep pipeline — plus a custom model you can
tweak.  Two things to notice:

* the cycles *recovered* by alignment depend on the misfetch/jump
  penalties, not the mispredict penalty (static prediction means
  mispredicts are layout-independent), and
* layouts themselves can differ between machines: a deep pipe may accept
  an extra jump to straighten a hotter conditional path.

Run:  python examples/machine_models.py
"""

import random

from repro import (
    ALPHA_21064,
    ALPHA_21164,
    DEEP_PIPE,
    PenaltyModel,
    align_program,
    evaluate_program,
)
from repro.lang import compile_source, run_and_profile

SOURCE = """
arr data[64];

fn main() {
  var i = 0;
  var acc = 0;
  while (i < input_len()) {
    var v = input(i);
    data[v % 64] = data[v % 64] + v;
    if (v % 5 == 0) {
      acc = acc + data[v % 64];
    } else {
      if (v % 7 == 0) { acc = acc - 1; }
    }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""

#: Try your own machine: a hypothetical wide fetch unit whose misfetch
#: costs 3 cycles but whose predictor resolves in 6.
CUSTOM = PenaltyModel.from_pipeline(
    "wide-fetch", misfetch=3.0, mispredict=6.0, multiway_redirect=4.0
)


def main() -> None:
    module = compile_source(SOURCE)
    rng = random.Random(7)
    inputs = [rng.randrange(0, 10_000) for _ in range(8000)]
    _, profile = run_and_profile(module, inputs)

    header = f"{'model':12s} {'original':>10s} {'aligned':>10s} {'saved':>10s} {'kept':>7s}"
    print(header)
    print("-" * len(header))
    for model in (ALPHA_21064, ALPHA_21164, DEEP_PIPE, CUSTOM):
        original_layouts = align_program(
            module.program, profile, method="original", model=model
        )
        original = evaluate_program(
            module.program, original_layouts, profile, model
        ).total
        layouts = align_program(
            module.program, profile, method="tsp", model=model
        )
        aligned = evaluate_program(
            module.program, layouts, profile, model
        ).total
        print(f"{model.name:12s} {original:>10.0f} {aligned:>10.0f} "
              f"{original - aligned:>10.0f} {aligned / original:>6.1%}")

    print("\nNote: alpha21064 and alpha21164 recover the same cycles — "
          "alignment cannot fix mispredicts, and the two models differ "
          "only in mispredict latency.")


if __name__ == "__main__":
    main()
