#!/usr/bin/env python3
"""Aligning an interpreter's dispatch loop (the xli benchmark).

Interpreters are the classic register-branch workload: the opcode dispatch
lowers to a jump table, and the best layout places the hottest opcode
handler as the dispatch block's fall-through.  This example:

* runs the bundled bytecode interpreter on the 7-queens program,
* shows the hot dispatch block's successor frequencies,
* aligns with greedy and TSP and shows which handler each method placed
  after the dispatch,
* cross-validates against the Newton's-method input (the paper's
  "xli.ne is a poor training set" finding).

Run:  python examples/interpreter_dispatch.py
"""

from repro import ALPHA_21164, align_program, evaluate_program
from repro.cfg import TerminatorKind
from repro.lang import execute, run_and_profile
from repro.workloads import SUITE, compile_benchmark


def dispatch_block(program):
    """The interpreter's jump-table block."""
    proc = program["interp"]
    for block in proc.cfg:
        if block.kind is TerminatorKind.MULTIWAY:
            return proc, block
    raise RuntimeError("no dispatch block found")


def main() -> None:
    module = compile_benchmark("xli")
    program = module.program

    print("== profiling xli.q7 (7-queens) ==")
    result, q7_profile = run_and_profile(module, SUITE["xli"].inputs("q7"))
    print(f"  solutions found: {result.outputs[0]} (expected 40)")
    print(f"  bytecode instructions interpreted: {result.outputs[1]}")

    proc, dispatch = dispatch_block(program)
    outs = q7_profile[proc.name].out_counts(dispatch.block_id)
    total = sum(outs.values())
    print(f"\n== dispatch block b{dispatch.block_id}: "
          f"{len(dispatch.successors)} handlers, {total} executions ==")
    for succ, count in sorted(outs.items(), key=lambda kv: -kv[1])[:5]:
        label = proc.cfg.block(succ).label
        print(f"  {label:30s} {count:>8d}  ({count / total:.1%})")

    print("\n== alignment (trained and tested on q7) ==")
    baseline = None
    for method in ("original", "greedy", "tsp"):
        layouts = align_program(program, q7_profile, method=method)
        penalty = evaluate_program(program, layouts, q7_profile, ALPHA_21164)
        if baseline is None:
            baseline = penalty.total
        successor_map = layouts[proc.name].successor_map()
        follower = successor_map[dispatch.block_id]
        follower_label = (
            proc.cfg.block(follower).label if follower is not None else "(end)"
        )
        print(f"  {method:8s}: {penalty.total:>9.0f} cycles "
              f"({penalty.total / baseline:.1%}); dispatch falls through "
              f"to {follower_label}")

    print("\n== cross-validation: train on ne (Newton), test on q7 ==")
    _, ne_profile = run_and_profile(module, SUITE["xli"].inputs("ne"))
    from repro.core import train_predictors
    predictors = train_predictors(program, ne_profile)
    for method in ("greedy", "tsp"):
        layouts = align_program(program, ne_profile, method=method)
        penalty = evaluate_program(
            program, layouts, q7_profile, ALPHA_21164, predictors=predictors
        )
        print(f"  {method:8s} (ne-trained): {penalty.total:>9.0f} cycles "
              f"({penalty.total / baseline:.1%} of original)")
    print("\nTraining on the short Newton run dilutes the benefit — the "
          "paper's cross-validation lesson.")


if __name__ == "__main__":
    main()
