#!/usr/bin/env python3
"""Execution-time simulation and the cache effect (Figure 2, right side).

The paper's surprise: TSP layouts ran measurably faster than greedy ones
even though their *modeled* control penalties were nearly equal — IPROBE
showed instruction-cache effects.  This example reproduces the mechanism
on the compress benchmark: the timing simulator charges instruction issue,
control stalls, and I-cache misses, and the cache term moves with layout
even though the aligner never optimizes it.

Run:  python examples/runtime_simulation.py
"""

from repro import ALPHA_21164, align_program
from repro.core import train_predictors
from repro.lang import run_and_profile
from repro.machine import DirectMappedICache
from repro.machine.timing import simulate_timing
from repro.workloads import SUITE, compile_benchmark


def main() -> None:
    module = compile_benchmark("com")
    program = module.program
    inputs = SUITE["com"].inputs("in")
    print("profiling com.in ...")
    result, profile = run_and_profile(module, inputs)
    predictors = train_predictors(program, profile)

    print(f"\n{'layout':10s} {'cycles':>12s} {'instr':>12s} "
          f"{'stalls':>10s} {'i$ miss':>8s} {'speedup':>8s}")
    baseline = None
    for method in ("original", "greedy", "tsp"):
        layouts = align_program(program, profile, method=method)
        timing = simulate_timing(
            program, layouts, profile, result.trace.trace, ALPHA_21164,
            predictors=predictors,
            icache=DirectMappedICache(2048, 32),  # small cache: layout matters
        )
        if baseline is None:
            baseline = timing.total_cycles
        print(f"{method:10s} {timing.total_cycles:>12.0f} "
              f"{timing.instruction_cycles:>12.0f} "
              f"{timing.control_stall_cycles:>10.0f} "
              f"{timing.icache_misses:>8d} "
              f"{1 - timing.total_cycles / baseline:>7.2%}")

    print("\nThe I-cache column shifts with layout even though the cost "
          "model never sees the cache — the paper's §4.1 observation.")


if __name__ == "__main__":
    main()
