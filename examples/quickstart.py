#!/usr/bin/env python3
"""Quickstart: compile, profile, align, evaluate.

Walks the full pipeline on a small program in the bundled language:

1. compile source → per-procedure CFGs,
2. run it on a training input under instrumentation → edge profile,
3. align with the paper's near-optimal TSP method (plus the greedy
   baseline for comparison),
4. report control penalties against the certified lower bound.

Run:  python examples/quickstart.py
"""

import random

from repro import ALPHA_21164, align_program, evaluate_program, lower_bound_program
from repro.lang import compile_source, run_and_profile

SOURCE = """
arr buckets[32];
global checksum = 0;

fn classify(v) {
  switch (v % 8) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 1;
    case 3: return 2;
    case 5: return 3;
    default: return 4;
  }
}

fn main() {
  var i = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    var c = classify(v);
    buckets[c] = buckets[c] + 1;
    if (v % 3 == 0 && v > 100) {
      checksum = checksum + v;
    }
    i = i + 1;
  }
  output(checksum);
  return checksum;
}
"""


def main() -> None:
    print("== compile ==")
    module = compile_source(SOURCE)
    for proc in module.program:
        print(f"  {proc.name}: {len(proc.cfg)} blocks, "
              f"{len(proc.branch_sites())} branch sites")

    print("\n== profile (training run) ==")
    rng = random.Random(42)
    inputs = [rng.randrange(0, 500) for _ in range(5000)]
    result, profile = run_and_profile(module, inputs)
    print(f"  executed {result.instructions_executed} instructions, "
          f"{profile.executed_branches(module.program)} branches")

    print("\n== align ==")
    penalties = {}
    for method in ("original", "greedy", "tsp"):
        layouts = align_program(module.program, profile, method=method)
        penalty = evaluate_program(
            module.program, layouts, profile, ALPHA_21164
        )
        penalties[method] = penalty.total
        print(f"  {method:8s}: {penalty.total:>10.0f} penalty cycles "
              f"({penalty.total / penalties['original']:.1%} of original)")

    bound = lower_bound_program(module.program, profile)
    print(f"  bound   : {bound.total:>10.0f} penalty cycles "
          f"(no layout can do better)")

    gap = penalties["tsp"] - bound.total
    print(f"\nTSP layout is within {gap:.0f} cycles "
          f"({gap / max(bound.total, 1):.2%}) of the provable optimum.")


if __name__ == "__main__":
    main()
