#!/usr/bin/env python3
"""Aligning a hand-built CFG (no frontend needed).

The aligner works on any weighted CFG: build one with :class:`CFGBuilder`,
attach an edge profile (here synthesized by a biased Markov walk), align,
and export before/after Graphviz DOT files annotated with layout positions.

Run:  python examples/handbuilt_cfg.py
(then e.g.:  dot -Tpng /tmp/aligned.dot -o aligned.png)
"""

import random

from repro import ALPHA_21164, align_program, original_layout
from repro.cfg import CFGBuilder, Procedure, Program, cfg_to_dot
from repro.profiles import random_bias_assignment, synthesize_profile


def build_cfg():
    """A loop whose body dispatches through a switch, with a cold error
    path — the shape where the original source order is clearly wrong."""
    b = CFGBuilder()
    b.block("entry", padding=2).jump("head")
    b.block("head", padding=1).cond("body", "done")
    # Error handling first in source order (a common anti-pattern).
    b.block("error", padding=6).jump("head")
    b.block("body", padding=2).switch(["op_add", "op_mul", "op_err", "op_add"])
    b.block("op_add", padding=3).cond("overflow", "next")
    b.block("overflow", padding=1).jump("error")
    b.block("op_mul", padding=4).jump("next")
    b.block("op_err", padding=1).jump("error")
    b.block("next", padding=1).jump("head")
    b.block("done", padding=1).ret()
    return b.build(entry="entry")


def main() -> None:
    cfg = build_cfg()
    program = Program()
    program.add(Procedure("kernel", cfg))

    rng = random.Random(3)
    bias = random_bias_assignment(cfg, rng, skew=0.92)
    profile = synthesize_profile(
        program, {"kernel": bias}, seed=4, walks_per_procedure=200,
        max_steps=2000,
    )
    edge_profile = profile["kernel"]

    layouts = align_program(program, profile, method="tsp")
    aligned = layouts["kernel"]

    from repro.core import evaluate_layout
    for name, layout in (
        ("original", original_layout(cfg)),
        ("aligned", aligned),
    ):
        order = " -> ".join(cfg.block(b).label for b in layout.order)
        penalty = evaluate_layout(cfg, layout, edge_profile, ALPHA_21164)
        print(f"{name:9s}: {order}")
        print(f"{'':9s}  {penalty.total:8.0f} cycles "
              f"(redirect {penalty.redirect:.0f}, mispredict "
              f"{penalty.mispredict:.0f}, jumps {penalty.jump:.0f})")

    weights = {e.key: float(edge_profile.count(*e.key)) for e in cfg.edges()}
    for name, layout in (
        ("/tmp/original.dot", original_layout(cfg)),
        ("/tmp/aligned.dot", aligned),
    ):
        with open(name, "w") as handle:
            handle.write(
                cfg_to_dot(cfg, edge_weights=weights, layout_order=layout.order)
            )
        print(f"wrote {name}")


if __name__ == "__main__":
    main()
