"""The sharded serving tier: N service workers behind a deterministic router.

One :class:`AlignmentService` is crash-safe (PR 6) but still a single
point of failure and a single straggler.  This module runs ``shards``
of them — each with its own admission gate, worker thread, and
write-ahead journal — behind a :class:`ShardSupervisor` that owns the
three horizontal failure modes:

* **Routing** — requests are routed by *idempotency-key hash*
  (:func:`route_shard`), so every duplicate of a payload lands on the
  same shard.  That is what keeps the per-shard dedup caches, in-flight
  coalescing, and journals correct without any cross-shard coordination:
  a key's entire history lives in exactly one journal.
* **Failure isolation** — a supervisor probe thread watches every shard.
  A *dead* shard (worker loop gone: the in-process analogue of SIGKILL)
  or a *wedged* one (alive but its heartbeat stale past
  ``wedge_timeout_s`` while busy) is replaced: a fresh service starts on
  the same journal, replays it (completed entries re-served, orphaned
  admissions re-enqueued past admission accounting), and the
  supervisor-side handles of stranded requests re-submit — which
  coalesces onto the recovered in-flight work by idempotency key instead
  of re-solving it.  Each shard's ``submitted == admitted + shed``
  stays closed through the whole dance because failover re-submissions
  go through the gate like any request (or dedup around it entirely).
* **Hedging** — a caller still waiting after ``hedge_after_ms``
  duplicates its request to the key's deterministic sibling shard
  (:func:`hedge_sibling`); the first response wins and the loser is
  abandoned (its shard finishes and journals the work, which is free
  idempotent warmth, never a second answer).  Because the hedge carries
  the same idempotency key, a completion already journaled anywhere is
  served from cache — hedging can duplicate *waiting*, never a
  journaled completion.  ``service.hedged`` / ``service.hedge_wins``
  count the behaviour.

The supervisor exposes the same duck-typed surface the HTTP tier uses
(``submit``/``healthy``/``ready``/``begin_drain``/``drain``/
``snapshot``), so ``repro serve --shards N`` is the same server with a
tier behind it.  ``shard_death`` / ``shard_wedge`` fault sites let chaos
plans (and the Zipf load soak, ``benchmarks/load_soak.py``) schedule
kills mid-traffic.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.errors import (
    ServiceOverloadError,
    ServiceUnavailableError,
    ShardFailoverError,
)
from repro.pipeline.executor import resolve_jobs
from repro.service.core import AlignmentService, PendingRequest, ServiceConfig
from repro.service.journal import request_key

SHARD_RUNNING = "running"
SHARD_RESTARTING = "restarting"


def route_shard(key: str, shards: int) -> int:
    """Deterministic primary shard for one idempotency key.

    A pure function of the key so every duplicate — client retry, hedge
    bookkeeping, replay after restart — agrees on the owner without any
    shared state.
    """
    if shards <= 1:
        return 0
    return int(key[:16], 16) % shards


def hedge_sibling(key: str, primary: int, shards: int) -> int:
    """The deterministic sibling a hedged request duplicates to."""
    if shards <= 1:
        return primary
    return (primary + 1) % shards


@dataclass
class ShardTierConfig:
    """Operator knobs for one shard tier."""

    #: Number of service workers behind the router.
    shards: int = 2
    #: Per-shard journals land here as ``shard-<i>.jsonl``; ``None`` = no
    #: durability and no idempotent coalescing anywhere in the tier.
    journal_dir: str | None = None
    #: Size-triggered journal compaction threshold, applied per shard.
    journal_compact_bytes: int | None = None
    #: Hedge a still-unanswered request to its sibling after this long;
    #: ``None`` disables hedging.
    hedge_after_ms: float | None = None
    #: Supervisor probe cadence (health + wedge detection + restarts).
    probe_interval_s: float = 0.05
    #: A busy shard whose heartbeat is older than this is wedged.
    wedge_timeout_s: float = 2.0
    #: Caller-side poll cadence while waiting on a shard handle.
    poll_interval_s: float = 0.002
    #: Template for each shard's own :class:`ServiceConfig` (capacity,
    #: jobs, deadlines, breakers...).  ``journal_path`` and
    #: ``pipeline_lock`` are overridden per shard.
    service: ServiceConfig = field(default_factory=ServiceConfig)


@dataclass
class ShardTierStats:
    """Supervisor-level accounting (per-shard stats live on the shards)."""

    routed: int = 0
    #: Requests re-submitted after their shard died/restarted (failover).
    rerouted: int = 0
    hedged: int = 0
    hedge_wins: int = 0
    deaths: int = 0
    wedges: int = 0
    restarts: int = 0


class ShardWorker:
    """One slot in the tier: the current service plus its restart lineage.

    ``epoch`` increments on every restart; supervisor-side handles use it
    to notice that the service they submitted to is gone and their
    pending handle will never resolve.
    """

    RETIRED_KEYS = (
        "submitted", "admitted", "shed", "deadline_shed",
        "completed", "failed", "quarantined", "deduped", "recovered",
    )

    def __init__(self, index: int, journal_path: "Path | None"):
        self.index = index
        self.journal_path = journal_path
        self.epoch = 0
        self.restarts = 0
        self.state = SHARD_RUNNING
        self.service: AlignmentService | None = None
        #: Accounting carried over from dead lives: each restart folds
        #: the old service's final gate/stats numbers in here so the
        #: tier's lifetime ``submitted == admitted + shed`` closure
        #: survives any number of shard deaths.
        self.retired = {key: 0 for key in self.RETIRED_KEYS}

    def retire_stats(self) -> None:
        """Fold the current (dying) service's counters into ``retired``.

        Called at restart, after the old life is killed.  A zombie
        wedged inside a real solve could in principle finish *after*
        this capture; that one completion goes uncounted in tier totals
        (never in the journal, which still records it) — an accepted
        skew, since the common failure (death) has final counters.
        """
        service = self.service
        if service is None:
            return
        gate = service.gate.stats()
        for key in ("submitted", "admitted", "shed", "deadline_shed"):
            self.retired[key] += gate.get(key, 0)
        stats = service.stats
        for key in ("completed", "failed", "quarantined",
                    "deduped", "recovered"):
            self.retired[key] += getattr(stats, key)


class _DurabilityView:
    """Aggregated journal health, shaped like what ``/readyz`` reads."""

    def __init__(self, degraded: bool):
        self.degraded = degraded


class ShardRequest:
    """Supervisor-side handle: first response wins across primary, hedge,
    and failover re-submissions.

    The *caller's* thread drives hedging and failover from ``result()``
    — no per-request timer threads.  A request that is submitted but
    never awaited simply rides its primary shard (and journal recovery,
    if that shard dies) like any single-service request.
    """

    def __init__(
        self,
        supervisor: "ShardSupervisor",
        key: str,
        payload,
        shard_index: int,
        epoch: int,
        handle: PendingRequest,
    ):
        self._sup = supervisor
        self.key = key
        self.payload = payload
        self.shard_index = shard_index
        self._epoch = epoch
        self._primary = handle
        self._hedge: PendingRequest | None = None
        self.hedged = False
        #: Which submission answered: ``primary`` or ``hedge``.
        self.winner: str | None = None
        self._submitted = time.monotonic()

    @property
    def request_id(self) -> int:
        return self._primary.request_id

    @property
    def done(self) -> bool:
        return self._primary.done or (
            self._hedge is not None and self._hedge.done
        )

    def result(self, timeout: float | None = None) -> dict:
        """Block for the first response; re-raises typed failures.

        While waiting this drives the tier's two latency defenses:
        after ``hedge_after_ms`` the payload is duplicated to the
        sibling shard, and whenever the primary shard has been restarted
        underneath the stranded handle the payload is re-submitted to
        the new life (idempotency-key dedup turns that into a
        coalesce-or-cache-hit, never duplicate work).
        """
        cfg = self._sup.config
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # Primary preferred on a tie so hedge_wins counts only real
            # rescues, not photo finishes.
            if self._primary.done:
                self.winner = self.winner or "primary"
                return self._primary.result(0)
            if self._hedge is not None and self._hedge.done:
                self.winner = "hedge"
                self._sup._record_hedge_win()
                return self._hedge.result(0)
            now = time.monotonic()
            if (
                not self.hedged
                and cfg.hedge_after_ms is not None
                and cfg.shards > 1
                and (now - self._submitted) * 1000.0 >= cfg.hedge_after_ms
            ):
                self._launch_hedge()
            self._refresh_primary()
            if deadline is not None and now > deadline:
                raise TimeoutError(
                    f"sharded request {self.key[:12]} did not complete "
                    f"in {timeout}s"
                )
            time.sleep(cfg.poll_interval_s)

    def _launch_hedge(self) -> None:
        self.hedged = True  # one hedge per request, landed or not
        sibling = hedge_sibling(
            self.key, self.shard_index, self._sup.config.shards
        )
        try:
            self._hedge = self._sup._submit_to_shard(sibling, self.payload)
        except Exception:  # noqa: BLE001 — a shed/dead sibling just means
            # no hedge cover; the primary (or its restart) still answers.
            return
        self._sup._record_hedged()

    def _refresh_primary(self) -> None:
        worker = self._sup._workers[self.shard_index]
        if worker.epoch == self._epoch or worker.state != SHARD_RUNNING:
            return
        service = worker.service
        if service is None:
            return
        try:
            # The old life journaled this admission, so the new life's
            # replay either already holds the key in flight (coalesce)
            # or already completed it (cache hit); without a journal
            # this genuinely re-submits, which is the best a journal-less
            # tier can do.
            self._primary = service.submit(self.payload)
        except Exception:  # noqa: BLE001 — shard flapping; retry next poll
            return
        self._epoch = worker.epoch
        self._sup._record_rerouted()


class ShardSupervisor:
    """The sharded serving tier (transport-agnostic, like the service)."""

    def __init__(self, config: ShardTierConfig | None = None):
        self.config = config or ShardTierConfig()
        if self.config.shards < 1:
            raise ValueError("shard tier needs at least one shard")
        self._tracer = obs.tracer()
        self.stats = ShardTierStats()
        self._lock = threading.Lock()
        journal_dir = (
            Path(self.config.journal_dir).expanduser()
            if self.config.journal_dir
            else None
        )
        self._journal_dir = journal_dir
        # Shard workers are the parallelism axis of the tier; when each
        # shard additionally runs a multi-process align (jobs > 1) they
        # must serialize access to the module-global pool and caches.
        self._pipeline_lock = (
            threading.Lock()
            if self.config.shards > 1
            and resolve_jobs(self.config.service.jobs) > 1
            else None
        )
        self._workers = [
            ShardWorker(
                i,
                journal_dir / f"shard-{i}.jsonl" if journal_dir else None,
            )
            for i in range(self.config.shards)
        ]
        self._monitor: threading.Thread | None = None
        self._stop_probe = threading.Event()
        self._draining = False
        self._drained = False

    # -- lifecycle -----------------------------------------------------------

    def _make_service(self, worker: ShardWorker) -> AlignmentService:
        config = dataclasses.replace(
            self.config.service,
            journal_path=(
                str(worker.journal_path) if worker.journal_path else None
            ),
            journal_compact_bytes=(
                self.config.journal_compact_bytes
                if self.config.journal_compact_bytes is not None
                else self.config.service.journal_compact_bytes
            ),
            pipeline_lock=self._pipeline_lock,
            fault_scope=f"shard-{worker.index}",
        )
        return AlignmentService(config)

    def start(self) -> "ShardSupervisor":
        if self._monitor is not None:
            return self
        if self._journal_dir is not None:
            self._journal_dir.mkdir(parents=True, exist_ok=True)
        for worker in self._workers:
            worker.service = self._make_service(worker)
            worker.service.start()
        self._monitor = threading.Thread(
            target=self._probe_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    @property
    def healthy(self) -> bool:
        """The tier serves as long as *any* shard does (isolation: one
        dead shard degrades capacity, never the tier)."""
        if self._drained:
            return True
        return any(
            worker.service is not None and worker.service.healthy
            for worker in self._workers
        )

    @property
    def ready(self) -> bool:
        return (
            not self._draining
            and not self._drained
            and any(
                worker.service is not None and worker.service.ready
                for worker in self._workers
            )
        )

    @property
    def recovering(self) -> bool:
        return any(
            worker.service is not None and worker.service.recovering
            for worker in self._workers
        )

    @property
    def journal(self) -> _DurabilityView | None:
        """Tier durability for ``/readyz``: degraded if any shard is."""
        journals = [
            worker.service.journal
            for worker in self._workers
            if worker.service is not None and worker.service.journal
        ]
        if not journals:
            return None
        return _DurabilityView(any(j.degraded for j in journals))

    def begin_drain(self) -> None:
        self._draining = True
        for worker in self._workers:
            if worker.service is not None:
                worker.service.begin_drain()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful tier drain: stop probes (no restarts race the
        shutdown), then drain every live shard.  Dead shards have
        nothing left to finish — their journals keep the orphans for the
        next start."""
        obs.install_tracer(self._tracer)
        if self._drained:
            return True
        self.begin_drain()
        self._stop_probe.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
        finished = True
        for worker in self._workers:
            service = worker.service
            if service is None or not service.healthy:
                continue
            finished = service.drain(timeout) and finished
        self._drained = finished
        if finished:
            obs.count("service.tier_drained")
        return finished

    # -- submission ----------------------------------------------------------

    def submit(self, payload) -> ShardRequest:
        """Route one request to its key's shard; returns the tier handle.

        Raises the same typed admission failures a single service does
        (the owning shard's gate does the accounting), plus
        :class:`~repro.errors.ShardFailoverError` when no live shard can
        take the request at all.
        """
        obs.install_tracer(self._tracer)
        if self._drained:
            raise ServiceUnavailableError("shard tier is drained")
        key = request_key(payload)
        primary = route_shard(key, self.config.shards)
        with self._lock:
            self.stats.routed += 1
        obs.count("service.routed")
        last_unavailable: Exception | None = None
        for offset in range(self.config.shards):
            index = (primary + offset) % self.config.shards
            worker = self._workers[index]
            service = worker.service
            if (
                worker.state != SHARD_RUNNING
                or service is None
                or service.killed
                or not service.healthy
            ):
                continue
            try:
                handle = service.submit(payload)
            except ServiceUnavailableError as exc:
                # Died between the health check and the hand-off (or is
                # draining); the next shard can still take it.
                last_unavailable = exc
                continue
            if offset:
                self._record_rerouted()
            self._after_route(index)
            return ShardRequest(self, key, payload, index, worker.epoch, handle)
        if self._draining:
            raise ServiceUnavailableError(
                "shard tier is draining and no longer admits requests"
            )
        raise ShardFailoverError(
            f"no live shard could take request {key[:12]} "
            f"({self.config.shards} shard(s) down or draining)"
        ) from last_unavailable

    def align(self, payload, timeout: float | None = None) -> dict:
        return self.submit(payload).result(timeout)

    def _submit_to_shard(self, index: int, payload) -> PendingRequest:
        """Direct hand-off (hedging), bypassing routing."""
        worker = self._workers[index]
        service = worker.service
        if (
            worker.state != SHARD_RUNNING
            or service is None
            or service.killed
            or not service.healthy
        ):
            raise ServiceUnavailableError(f"shard {index} is not running")
        return service.submit(payload)

    def _after_route(self, index: int) -> None:
        """Chaos hook: the routed request may doom its own shard —
        *after* the hand-off, so the stranded work exercises detection,
        restart, journal recovery, and failover."""
        if faults.shard_death_fires():
            self.kill_shard(index)
        if faults.shard_wedge_fires():
            self.wedge_shard(index)

    # -- counters ------------------------------------------------------------

    def _record_hedged(self) -> None:
        with self._lock:
            self.stats.hedged += 1
        obs.count("service.hedged")

    def _record_hedge_win(self) -> None:
        with self._lock:
            self.stats.hedge_wins += 1
        obs.count("service.hedge_wins")

    def _record_rerouted(self) -> None:
        with self._lock:
            self.stats.rerouted += 1
        obs.count("service.rerouted")

    # -- chaos ---------------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """Kill one shard abruptly (the ``shard_death`` chaos action).
        The probe loop detects and restarts it; nothing else is told."""
        service = self._workers[index].service
        if service is not None:
            service.kill()

    def wedge_shard(self, index: int, seconds: float | None = None) -> None:
        """Wedge one shard (the ``shard_wedge`` chaos action): alive but
        not progressing, long enough that the wedge detector must act."""
        service = self._workers[index].service
        if service is not None:
            if seconds is None:
                seconds = max(1.0, 4.0 * self.config.wedge_timeout_s)
            service.wedge(seconds)

    # -- the probe loop ------------------------------------------------------

    def _probe_loop(self) -> None:
        obs.install_tracer(self._tracer)
        while not self._stop_probe.wait(self.config.probe_interval_s):
            if self._draining:
                continue
            for worker in self._workers:
                try:
                    self._probe(worker)
                except Exception:  # noqa: BLE001 — the monitor survives
                    # everything; a failed restart retries next tick.
                    worker.state = SHARD_RUNNING

    def _probe(self, worker: ShardWorker) -> None:
        service = worker.service
        if worker.state != SHARD_RUNNING or service is None:
            return
        if not service.healthy:
            with self._lock:
                self.stats.deaths += 1
            obs.count("service.shard_deaths")
            self._restart(worker)
        elif (
            service.busy
            and service.heartbeat_age_s() > self.config.wedge_timeout_s
        ):
            with self._lock:
                self.stats.wedges += 1
            obs.count("service.shard_wedges")
            self._restart(worker)

    def _restart(self, worker: ShardWorker) -> None:
        """Replace one shard's service, journal intact.

        The old life is killed (a wedge releases, a dead loop is already
        gone) and its gate closed so stragglers get a typed 503 instead
        of landing in a queue nobody drains.  The replacement starts on
        the same journal and replays it on its own worker thread —
        completed work re-served, orphans re-enqueued — while this probe
        loop moves on.  A zombie still finishing its last solve may
        append one more completed record; replay's last-record-wins
        semantics make that benign (the answer is deterministic).
        """
        worker.state = SHARD_RESTARTING
        old = worker.service
        if old is not None:
            old.kill()
            old.gate.begin_drain()
        worker.retire_stats()
        worker.service = self._make_service(worker)
        worker.service.start()
        worker.epoch += 1
        worker.restarts += 1
        with self._lock:
            self.stats.restarts += 1
        obs.count("service.shard_restarts")
        worker.state = SHARD_RUNNING

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-friendly view of the tier (``/counters`` in shard
        mode, and what the load soak asserts accounting closure on)."""
        shard_snaps = []
        totals = {
            "submitted": 0, "admitted": 0, "shed": 0, "deadline_shed": 0,
            "completed": 0, "failed": 0, "quarantined": 0,
            "deduped": 0, "recovered": 0,
        }
        for worker in self._workers:
            service = worker.service
            snap = service.snapshot() if service is not None else None
            for name, value in worker.retired.items():
                totals[name] += value
            if snap is not None:
                gate = snap["gate"]
                totals["submitted"] += gate["submitted"]
                totals["admitted"] += gate["admitted"]
                totals["shed"] += gate["shed"]
                totals["deadline_shed"] += gate.get("deadline_shed", 0)
                for name in ("completed", "failed", "quarantined",
                             "deduped", "recovered"):
                    totals[name] += snap[name]
            shard_snaps.append({
                "index": worker.index,
                "state": worker.state,
                "epoch": worker.epoch,
                "restarts": worker.restarts,
                "journal_path": (
                    str(worker.journal_path) if worker.journal_path else None
                ),
                "retired": dict(worker.retired),
                "service": snap,
            })
        with self._lock:
            tier = {
                "shards": self.config.shards,
                "hedge_after_ms": self.config.hedge_after_ms,
                "routed": self.stats.routed,
                "rerouted": self.stats.rerouted,
                "hedged": self.stats.hedged,
                "hedge_wins": self.stats.hedge_wins,
                "deaths": self.stats.deaths,
                "wedges": self.stats.wedges,
                "restarts": self.stats.restarts,
            }
        return {
            "tier": tier,
            "totals": totals,
            "shards": shard_snaps,
            "recovering": self.recovering,
            "drained": self._drained,
            "counters": {
                name: value
                for name, value in self._tracer.counters(
                    stable_only=True
                ).items()
                if name.startswith("service.")
            },
        }
