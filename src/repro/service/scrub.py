"""Offline journal integrity scrubbing: ``repro journal verify``.

The recovery path (:meth:`RequestJournal.load`) already verifies every
line — sha256, schema version, record type, key presence — because the
journal is treated as untrusted bytes.  The scrubber reuses exactly that
logic *offline*: point it at a journal file (or a shard tier's journal
directory) and it reports, per file, the full accounting a recovery
would see — records by type, completions, orphans, terminal failures —
plus every corrupt line, classified as **interior corruption** (a
previously-durable record was damaged: bit rot, a torn write at an
arbitrary offset, tampering) or a **torn tail** (the benign signature of
a crash mid-append, which the next start absorbs for free).

Interior corruption is what the exit code escalates on: a torn tail is
expected wear, a damaged interior record is data loss.  The chaos
explorer runs the scrubber after every injected-fault workload as its
"journal integrity and replayability" invariant.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.service.journal import RequestJournal

#: Journal filename pattern a directory scrub picks up (what the shard
#: tier writes: ``shard-<i>.jsonl``; single services use any ``*.jsonl``).
JOURNAL_GLOB = "*.jsonl"


@dataclass
class JournalScrub:
    """One journal file's integrity audit."""

    path: str
    #: Physical lines in the file (blank lines included).
    lines: int = 0
    #: Well-formed records by type (``admitted``/``completed``/``failed``).
    records: dict[str, int] = field(default_factory=dict)
    #: Keys whose last record is a completion — servable from the journal.
    completed: int = 0
    #: Admitted keys with no terminal record — work a restart replays.
    orphans: int = 0
    #: Keys whose last record is a terminal failure.
    failed: int = 0
    #: 1-based line numbers that failed parse/version/type/sha checks.
    corrupt_lines: list[int] = field(default_factory=list)
    #: Corrupt lines that are *not* the final line: lost durable records.
    interior_corrupt: list[int] = field(default_factory=list)
    #: The final line is corrupt — crash-mid-append wear, tolerated.
    torn_tail: bool = False
    #: The file could not be read at all.
    unreadable: bool = False

    @property
    def corrupt(self) -> bool:
        """Damage the scrubber escalates on (exit 2): interior corruption
        or an unreadable file.  A torn tail alone is a warning."""
        return self.unreadable or bool(self.interior_corrupt)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "lines": self.lines,
            "records": dict(self.records),
            "completed": self.completed,
            "orphans": self.orphans,
            "failed": self.failed,
            "corrupt_lines": list(self.corrupt_lines),
            "interior_corrupt": list(self.interior_corrupt),
            "torn_tail": self.torn_tail,
            "unreadable": self.unreadable,
            "corrupt": self.corrupt,
        }


def scrub_journal(path: "str | pathlib.Path") -> JournalScrub:
    """Audit one journal file, reusing the recovery replay's verification."""
    path = pathlib.Path(path)
    scrub = JournalScrub(path=str(path))
    try:
        scrub.lines = len(path.read_text().splitlines())
    except FileNotFoundError:
        return scrub  # empty audit: a missing journal is a cold start
    except OSError:
        scrub.unreadable = True
        return scrub
    journal = RequestJournal(path)
    replay = journal.load()
    if journal.degraded:
        # load() only degrades when the file cannot be read.
        scrub.unreadable = True
        return scrub
    scrub.records = dict(replay.records)
    scrub.completed = len(replay.completed)
    scrub.orphans = len(replay.orphans)
    scrub.failed = len(replay.failed)
    scrub.corrupt_lines = list(replay.corrupt_lines)
    scrub.interior_corrupt = list(replay.interior_corrupt)
    scrub.torn_tail = replay.torn_tail
    return scrub


def scrub_path(path: "str | pathlib.Path") -> list[JournalScrub]:
    """Audit a journal file, or every ``*.jsonl`` in a directory (sorted,
    so reports are stable).  A missing path raises ``FileNotFoundError``
    like any CLI input would."""
    path = pathlib.Path(path)
    if path.is_dir():
        return [scrub_journal(p) for p in sorted(path.glob(JOURNAL_GLOB))]
    if not path.exists():
        raise FileNotFoundError(f"no journal at {path}")
    return [scrub_journal(path)]
