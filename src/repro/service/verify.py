"""Independent re-verification of every layout the service emits.

Branch-displacement history says emitted layouts are exactly the kind of
artifact to re-check rather than trust (Boender & Sacerdoti Coen); the
pipeline's own property tests pin these invariants offline, and this
module enforces them *per response*:

1. **Permutation validity** — every procedure has a layout, each layout
   is a permutation of its CFG's blocks with the entry block first
   (:meth:`Layout.check_against`).
2. **Cost agreement** — the cost the aligner reported for a procedure
   equals the evaluation stage's control penalty for the same layout
   (§2.2's reduction: two walks over one model must not drift).
3. **Bound sanity** — when a Held–Karp floor is available, no reported
   cost may sit below it (a "better than provably possible" layout is a
   corrupt cost matrix or a broken solver, not a miracle).

A violation means a pipeline bug.  The service *quarantines* the
response — records and counts it, returns the violation report — and
never serves the layout.
"""

from __future__ import annotations

import math

from repro.cfg.graph import Program
from repro.core.evaluate import evaluate_layout
from repro.core.layout import LayoutError, ProgramLayout
from repro.errors import LayoutVerificationError
from repro.machine.models import PenaltyModel
from repro.profiles.edge_profile import ProgramProfile

#: Relative tolerance for float comparisons.  Costs and penalties are
#: computed by identical arithmetic, so equality is exact in practice;
#: the tolerance only guards against a future refactor reordering
#: float additions, which must not start quarantining correct layouts.
REL_TOLERANCE = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=1e-9)


def verify_layouts(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    model: PenaltyModel,
    *,
    costs: dict[str, float] | None = None,
    bounds: dict[str, float] | None = None,
) -> list[str]:
    """Check every response invariant; return violations (empty = serve).

    ``costs`` are the aligner-reported per-procedure tour costs (absent
    entries — trivial or quarantined procedures — skip the agreement
    check but still get permutation checks).  ``bounds`` are certified
    Held–Karp floors when the request asked for them.
    """
    violations: list[str] = []
    for proc in program:
        if proc.name not in layouts:
            violations.append(f"{proc.name}: no layout in response")
            continue
        try:
            layouts[proc.name].check_against(proc.cfg)
        except LayoutError as exc:
            violations.append(f"{proc.name}: invalid layout ({exc})")
    for name, cost in sorted((costs or {}).items()):
        if name not in layouts or name not in program:
            continue  # already reported above / stale report entry
        edge_profile = profile.procedures.get(name)
        if edge_profile is None:
            continue
        try:
            evaluated = evaluate_layout(
                program[name].cfg, layouts[name], edge_profile, model
            ).total
        except LayoutError:
            continue  # permutation violation already recorded
        if not _close(cost, evaluated):
            violations.append(
                f"{name}: aligner cost {cost!r} != evaluator penalty "
                f"{evaluated!r}"
            )
        bound = (bounds or {}).get(name)
        if bound is not None and bound > cost and not _close(bound, cost):
            violations.append(
                f"{name}: cost {cost!r} below certified lower bound "
                f"{bound!r}"
            )
    return violations


def verify_or_raise(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    model: PenaltyModel,
    *,
    costs: dict[str, float] | None = None,
    bounds: dict[str, float] | None = None,
) -> None:
    """Raise :class:`LayoutVerificationError` carrying every violation."""
    violations = verify_layouts(
        program, layouts, profile, model, costs=costs, bounds=bounds
    )
    if violations:
        raise LayoutVerificationError(
            f"{len(violations)} layout verification violation(s): "
            + "; ".join(violations),
            violations=violations,
        )
