"""Per-aligner circuit breakers.

A breaker protects the service from an aligner whose *infrastructure* is
failing — worker processes crashing, per-attempt deadlines expiring —
which the supervised executor absorbs per request but which, repeated,
means every request burns its full retry budget before degrading.  The
breaker notices the pattern and routes around it.

State machine (the classic three states, but **deterministic**: every
transition is a pure function of the observed request sequence — no wall
clock, no randomness — so tests replay it exactly and ``--jobs 1`` and
``--jobs 4`` runs agree)::

    CLOSED ──(failure_threshold consecutive failures)──▶ OPEN
    OPEN ──(cooldown_requests routed to fallback)──▶ HALF_OPEN (probe)
    HALF_OPEN ──probe succeeds──▶ CLOSED
    HALF_OPEN ──probe fails──▶ OPEN (cooldown restarts)

While OPEN, requests are served by the fallback aligner with
``degraded="breaker_fallback"`` accounting — degraded service, never an
error.  A "failure" is a request whose supervision report shows worker
crashes, timeouts, or quarantined procedures; a clean degraded solve
(the solver ladder doing its job) is a *success* from the breaker's
point of view.

The ``breaker_probe_fail`` fault site lets chaos plans fail half-open
probes on demand, exercising the re-open path.
"""

from __future__ import annotations

import enum
import threading

from repro import obs


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Routing decisions handed to the service per request.
ROUTE_PRIMARY = "primary"
ROUTE_FALLBACK = "fallback"
ROUTE_PROBE = "probe"


class CircuitBreaker:
    """One aligner's breaker.  Thread-safe; the service holds one per
    requested method."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown_requests: int = 5,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_requests < 1:
            raise ValueError("cooldown_requests must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_requests = cooldown_requests
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        #: Times this breaker has tripped OPEN (probe failures included).
        self.opened = 0
        self._cooldown_left = 0
        self._lock = threading.Lock()

    def route(self) -> str:
        """Decide how the next request for this aligner is served.

        Returns :data:`ROUTE_PRIMARY` (run the requested aligner),
        :data:`ROUTE_FALLBACK` (serve the fallback, breaker open), or
        :data:`ROUTE_PROBE` (run the requested aligner as the half-open
        probe).  Mutates the cooldown countdown — each fallback-routed
        request brings the probe one step closer, which is what makes
        recovery request-count deterministic.
        """
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return ROUTE_PRIMARY
            if self.state is BreakerState.OPEN:
                if self._cooldown_left > 0:
                    self._cooldown_left -= 1
                    return ROUTE_FALLBACK
                self.state = BreakerState.HALF_OPEN
                return ROUTE_PROBE
            # HALF_OPEN with a probe already outstanding: shed to fallback
            # rather than stacking probes (cannot happen with the serial
            # worker, but the machine stays correct if that ever changes).
            return ROUTE_FALLBACK

    def record(self, route: str, *, failed: bool) -> None:
        """Fold one served request's outcome back into the machine.

        Fallback-served requests carry no signal about the primary
        aligner's health and are ignored.
        """
        if route == ROUTE_FALLBACK:
            return
        with self._lock:
            if not failed:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                return
            if route == ROUTE_PROBE or self.state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        # Caller holds the lock.
        self.state = BreakerState.OPEN
        self.opened += 1
        self.consecutive_failures = 0
        self._cooldown_left = self.cooldown_requests
        obs.count("service.breaker_open")

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self.state.value,
                "consecutive_failures": self.consecutive_failures,
                "opened": self.opened,
                "cooldown_left": self._cooldown_left,
            }
