"""Admission control: the bounded request queue and adaptive load shedding.

The gate is the only way work enters the service.  Its contract:

* **Bounded** — at most ``capacity`` requests wait at once.  A request
  arriving at a full queue is *shed* with
  :class:`~repro.errors.ServiceOverloadError` (the HTTP tier maps it to
  429); it never blocks the submitting thread and never grows memory.
* **Deadline-aware** — the gate keeps an EWMA of observed service times
  (the worker reports each completion); a request carrying a deadline
  that would expire *while waiting behind the current backlog* is shed
  immediately with the typed
  :class:`~repro.errors.DeadlineShedError` (still a 429) instead of
  being admitted only to time out downstream.
* **Accounted** — ``submitted == admitted + shed`` holds at every
  instant (the chaos soak asserts it), and both admissions and sheds
  land in the stable counters ``service.admitted`` / ``service.shed``
  (deadline sheds additionally count ``service.deadline_shed``).
* **Drainable** — after :meth:`AdmissionGate.begin_drain` every new
  request is refused with :class:`~repro.errors.ServiceUnavailableError`
  (HTTP 503) while already-admitted work keeps flowing to the worker.

Shed errors carry ``retry_after_s`` — the gate's own estimate of when
room will exist — which the HTTP tier surfaces as a ``Retry-After``
header and :class:`~repro.service.client.RetryPolicy` honors under its
deterministic cap.

The ``service_overload`` fault site lets chaos plans shed admissions
even with queue room, so the 429 path is exercised without needing a
real traffic storm.
"""

from __future__ import annotations

import queue
import threading

from repro import faults, obs
from repro.errors import (
    DeadlineShedError,
    ServiceOverloadError,
    ServiceUnavailableError,
)

#: EWMA smoothing factor for the observed per-request service time.
SERVICE_TIME_ALPHA = 0.2


class AdmissionGate:
    """Thread-safe bounded intake for the service's single worker."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        self.capacity = capacity
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._draining = False
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.deadline_shed = 0
        #: EWMA of observed service time (ms); ``None`` until the first
        #: completion — the gate never sheds on a guess it has not made.
        self._est_service_ms: float | None = None

    @property
    def draining(self) -> bool:
        return self._draining

    def depth(self) -> int:
        """Requests currently waiting (approximate, as all queue sizes are)."""
        return self._queue.qsize()

    def observe_service_time(self, elapsed_ms: float) -> None:
        """Fold one completed request's wall time into the wait estimate.

        Called by the worker after every processed request; the EWMA
        favours recent behaviour so a shard that slows down starts
        shedding deadline-doomed requests within a few completions.
        """
        # The clock-skew fault lands here: a skewed reading inflates the
        # observed wall time, and the EWMA (hence deadline shedding) must
        # absorb the spike instead of shedding forever.
        elapsed_ms += faults.clock_skew_ms()
        if elapsed_ms < 0:
            return
        with self._lock:
            if self._est_service_ms is None:
                self._est_service_ms = elapsed_ms
            else:
                self._est_service_ms += SERVICE_TIME_ALPHA * (
                    elapsed_ms - self._est_service_ms
                )

    def estimated_service_ms(self) -> float | None:
        with self._lock:
            return self._est_service_ms

    def expected_wait_ms(self) -> float:
        """How long a request admitted *now* would wait before its turn.

        Zero until the first completion seeds the estimate — an
        uncalibrated gate admits optimistically rather than shedding on
        fiction.
        """
        with self._lock:
            return self._expected_wait_ms_locked()

    def _expected_wait_ms_locked(self) -> float:
        if self._est_service_ms is None:
            return 0.0
        return self._queue.qsize() * self._est_service_ms

    def _retry_after_s_locked(self) -> float:
        """The backoff hint a shed response carries: roughly one queue
        drain (floored so a client never busy-spins on zero)."""
        est = self._est_service_ms or 0.0
        return max(0.05, (max(1, self._queue.qsize()) * est) / 1000.0)

    def submit(self, item, *, deadline_ms: float | None = None) -> None:
        """Admit ``item`` or raise a typed rejection.

        Never blocks: a full queue sheds immediately (back-pressure is the
        client's job, not a hidden stall in the accept loop), and a
        ``deadline_ms`` that would expire behind the current backlog is
        shed immediately too.
        """
        with self._lock:
            self.submitted += 1
            if self._draining:
                raise ServiceUnavailableError(
                    "service is draining and no longer admits requests"
                )
            if faults.service_overload_fires():
                self.shed += 1
                obs.count("service.shed")
                raise ServiceOverloadError(
                    "admission shed (injected overload)",
                    queue_depth=self._queue.qsize(),
                    retry_after_s=self._retry_after_s_locked(),
                )
            expected_wait = self._expected_wait_ms_locked()
            if deadline_ms is not None and expected_wait > deadline_ms:
                self.shed += 1
                self.deadline_shed += 1
                obs.count("service.shed")
                obs.count("service.deadline_shed")
                raise DeadlineShedError(
                    f"deadline {deadline_ms:.0f}ms would expire in the "
                    f"queue (expected wait {expected_wait:.0f}ms behind "
                    f"{self._queue.qsize()} request(s))",
                    queue_depth=self._queue.qsize(),
                    retry_after_s=self._retry_after_s_locked(),
                    expected_wait_ms=expected_wait,
                    deadline_ms=deadline_ms,
                )
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.shed += 1
                obs.count("service.shed")
                raise ServiceOverloadError(
                    f"request queue full (capacity {self.capacity})",
                    queue_depth=self.capacity,
                    retry_after_s=self._retry_after_s_locked(),
                ) from None
            self.admitted += 1
            obs.count("service.admitted")

    def requeue(self, item) -> bool:
        """Re-enqueue recovered work, bypassing admission accounting.

        Used only by journal replay: an orphaned ``admitted`` record was
        already submitted *and* admitted in a previous process life, so
        counting it again would break ``submitted == admitted + shed``
        for the restarted server's own traffic.  Never blocks — recovery
        runs on the worker thread before its drain loop, so waiting on a
        full queue would deadlock; returns ``False`` and the recoverer
        processes the orphan inline instead.
        """
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            return False
        obs.count("service.replayed")
        return True

    def put_control(self, item) -> None:
        """Enqueue a control token (the drain sentinel), bypassing
        admission accounting.  Blocks if the queue is full — control
        tokens must arrive *after* the admitted work they terminate."""
        self._queue.put(item)

    def next_item(self, timeout: float | None = None):
        """Dequeue the next work item for the worker loop.

        Raises :class:`queue.Empty` on timeout (``timeout=None`` blocks
        forever, which is safe: drain always enqueues a sentinel).
        """
        return self._queue.get(timeout=timeout)

    def begin_drain(self) -> None:
        """Stop admitting.  Idempotent; already-queued work is unaffected."""
        with self._lock:
            self._draining = True

    def stats(self) -> dict:
        with self._lock:
            est = self._est_service_ms
            return {
                "capacity": self.capacity,
                "depth": self._queue.qsize(),
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed": self.shed,
                "deadline_shed": self.deadline_shed,
                "est_service_ms": None if est is None else round(est, 3),
                "draining": self._draining,
            }
