"""Admission control: the bounded request queue and load shedding.

The gate is the only way work enters the service.  Its contract:

* **Bounded** — at most ``capacity`` requests wait at once.  A request
  arriving at a full queue is *shed* with
  :class:`~repro.errors.ServiceOverloadError` (the HTTP tier maps it to
  429); it never blocks the submitting thread and never grows memory.
* **Accounted** — ``submitted == admitted + shed`` holds at every
  instant (the chaos soak asserts it), and both admissions and sheds
  land in the stable counters ``service.admitted`` / ``service.shed``.
* **Drainable** — after :meth:`AdmissionGate.begin_drain` every new
  request is refused with :class:`~repro.errors.ServiceUnavailableError`
  (HTTP 503) while already-admitted work keeps flowing to the worker.

The ``service_overload`` fault site lets chaos plans shed admissions
even with queue room, so the 429 path is exercised without needing a
real traffic storm.
"""

from __future__ import annotations

import queue
import threading

from repro import faults, obs
from repro.errors import ServiceOverloadError, ServiceUnavailableError


class AdmissionGate:
    """Thread-safe bounded intake for the service's single worker."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        self.capacity = capacity
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._draining = False
        self.submitted = 0
        self.admitted = 0
        self.shed = 0

    @property
    def draining(self) -> bool:
        return self._draining

    def depth(self) -> int:
        """Requests currently waiting (approximate, as all queue sizes are)."""
        return self._queue.qsize()

    def submit(self, item) -> None:
        """Admit ``item`` or raise a typed rejection.

        Never blocks: a full queue sheds immediately (back-pressure is the
        client's job, not a hidden stall in the accept loop).
        """
        with self._lock:
            self.submitted += 1
            if self._draining:
                raise ServiceUnavailableError(
                    "service is draining and no longer admits requests"
                )
            if faults.service_overload_fires():
                self.shed += 1
                obs.count("service.shed")
                raise ServiceOverloadError(
                    "admission shed (injected overload)",
                    queue_depth=self._queue.qsize(),
                )
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.shed += 1
                obs.count("service.shed")
                raise ServiceOverloadError(
                    f"request queue full (capacity {self.capacity})",
                    queue_depth=self.capacity,
                ) from None
            self.admitted += 1
            obs.count("service.admitted")

    def requeue(self, item) -> bool:
        """Re-enqueue recovered work, bypassing admission accounting.

        Used only by journal replay: an orphaned ``admitted`` record was
        already submitted *and* admitted in a previous process life, so
        counting it again would break ``submitted == admitted + shed``
        for the restarted server's own traffic.  Never blocks — recovery
        runs on the worker thread before its drain loop, so waiting on a
        full queue would deadlock; returns ``False`` and the recoverer
        processes the orphan inline instead.
        """
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            return False
        obs.count("service.replayed")
        return True

    def put_control(self, item) -> None:
        """Enqueue a control token (the drain sentinel), bypassing
        admission accounting.  Blocks if the queue is full — control
        tokens must arrive *after* the admitted work they terminate."""
        self._queue.put(item)

    def next_item(self, timeout: float | None = None):
        """Dequeue the next work item for the worker loop.

        Raises :class:`queue.Empty` on timeout (``timeout=None`` blocks
        forever, which is safe: drain always enqueues a sentinel).
        """
        return self._queue.get(timeout=timeout)

    def begin_drain(self) -> None:
        """Stop admitting.  Idempotent; already-queued work is unaffected."""
        with self._lock:
            self._draining = True

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": self._queue.qsize(),
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed": self.shed,
                "draining": self._draining,
            }
