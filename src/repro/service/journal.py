"""The write-ahead request journal: crash-safe serving's source of truth.

The alignment service's premise — alignment is a deterministic function
of (CFG, profile, method, seed) — makes exactly-once recovery cheap: two
requests that normalize to the same inputs *are* the same request, so a
content-addressed **idempotency key** both names a journal record and
coalesces duplicates.  The journal is an fsynced append-only JSONL file
the server writes at two points of the request lifecycle::

    {"v": 1, "type": "admitted",  "key": K, "sha": ..., "payload": {...}}
    {"v": 1, "type": "completed", "key": K, "sha": ..., "response": {...}}
    {"v": 1, "type": "failed",    "key": K, "sha": ..., "error": "...",
     "error_type": "..."}

``admitted`` is appended *before* the request enters the worker queue;
``completed``/``failed`` when the worker resolves it.  After a SIGKILL or
power loss, :meth:`RequestJournal.load` replays the file: a key whose
last record is ``completed`` is served straight from the journal (after
re-verification — see :mod:`repro.service.core`); an ``admitted`` key
with no terminal record is an **orphan** the restarted server re-enqueues;
a ``failed`` key is left to the client's retry.

Durability discipline (the same one the ArtifactStore and experiment
checkpoints already prove):

* every append is flushed and ``fsync``\\ ed before the admission/response
  proceeds, so an acknowledged record survives the process;
* every record carries a sha256 of its payload, so a torn final record
  (the process died mid-append) fails its checksum and is *skipped*, not
  fatal, and the next append seals the stump with a newline first;
* an append that raises (disk full, injected ``journal_io_error``) flips
  the journal into **degraded-durability mode**: serving continues, the
  ``service.journal_degraded`` counter and ``/readyz``'s ``durability:
  off`` record the loss of crash-safety, and no further writes are
  attempted until restart.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass, field

from repro import faults, obs
from repro.errors import JournalError

JOURNAL_VERSION = 1

#: Record types a journal line may carry, in lifecycle order.
RECORD_TYPES = ("admitted", "completed", "failed")


# -- idempotency keys ---------------------------------------------------------


def _digest(payload: object) -> str:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def request_key(payload: object) -> str:
    """Content-addressed idempotency key for one request payload.

    Two payloads that normalize to the same alignment inputs — compiled
    CFGs, profile (explicit JSON or the inputs that generate one), method
    alias, model, effort, seed, bound flag, deadline — map to the same
    key, so a client retry or a duplicate submission coalesces onto one
    unit of work and one journal history.

    A payload that cannot be normalized (unparseable source, unknown
    method — anything the worker would reject with a typed 400) falls
    back to a digest of the canonical payload itself: still stable for a
    byte-identical retry, never an exception at admission time.
    """
    try:
        from repro.lang import compile_source
        from repro.pipeline.artifacts import (
            fingerprint_cfg,
            fingerprint_profile,
        )
        from repro.pipeline.registry import normalize_method
        from repro.profiles.edge_profile import ProgramProfile

        if not isinstance(payload, dict):
            raise ValueError("payload is not an object")
        module = compile_source(str(payload["source"]))
        cfgs = [
            (proc.name, fingerprint_cfg(proc.cfg))
            for proc in module.program
        ]
        profile_json = payload.get("profile")
        if profile_json is not None:
            profile = ProgramProfile.from_json(str(profile_json))
            profile_fp = sorted(
                (name, fingerprint_profile(edge))
                for name, edge in profile.procedures.items()
            )
        else:
            # No explicit profile: it is produced by running the program
            # on ``inputs``, a deterministic function of (CFG, inputs).
            profile_fp = ["inputs", [int(x) for x in payload.get("inputs", [])]]
        deadline = payload.get("deadline_ms")
        return _digest({
            "cfgs": cfgs,
            "profile": profile_fp,
            "method": normalize_method(str(payload.get("method", "tsp"))),
            "model": str(payload.get("model", "alpha21164")),
            "effort": str(payload.get("effort", "default")),
            "seed": int(payload.get("seed", 0)),
            "bound": bool(payload.get("bound", False)),
            "deadline_ms": None if deadline is None else float(deadline),
        })
    except Exception:  # noqa: BLE001 — malformed payloads still get keys
        return _digest({"raw": payload})


# -- replay results -----------------------------------------------------------


@dataclass
class JournalReplay:
    """What one :meth:`RequestJournal.load` pass recovered.

    ``completed`` maps keys to their recorded responses; ``failed`` to
    their recorded ``(error_type, error)``; ``orphans`` to the payloads
    of admitted requests with no terminal record, in admission order —
    the work a crash interrupted.  ``payloads`` keeps every admitted
    payload (terminal or not) so completed entries can be re-verified
    against freshly compiled inputs.
    """

    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, tuple[str, str]] = field(default_factory=dict)
    orphans: dict[str, dict] = field(default_factory=dict)
    payloads: dict[str, dict] = field(default_factory=dict)
    #: Total well-formed records read, by type.
    records: dict[str, int] = field(default_factory=dict)
    #: 1-based line numbers that failed to parse or checksum.
    corrupt_lines: list[int] = field(default_factory=list)
    #: The final line was corrupt — the torn-tail signature of a crash
    #: mid-append (any other corrupt line is bit rot or tampering).
    torn_tail: bool = False


@dataclass
class JournalStats:
    """Mutable accounting for one :class:`RequestJournal`."""

    appended: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Appends dropped because the journal is in degraded mode.
    dropped: int = 0
    io_errors: int = 0


# -- the journal --------------------------------------------------------------


def _record_sha(record: dict) -> str:
    body = {k: v for k, v in record.items() if k != "sha"}
    return _digest(body)


class RequestJournal:
    """Append-only, fsynced, torn-tail-tolerant request journal."""

    def __init__(self, path: "str | os.PathLike[str]"):
        self.path = pathlib.Path(path).expanduser()
        self.stats = JournalStats()
        #: Degraded-durability mode: an append failed, serving continues
        #: without crash-safety until restart.  Sticky by design — a disk
        #: that failed once cannot be trusted to have kept earlier
        #: records reachable, so flapping back to "durable" would lie.
        self.degraded = False
        self._lock = threading.Lock()
        # A crash mid-append leaves a final line without its newline; the
        # next append must seal the stump so it does not corrupt itself.
        self._ends_with_newline = True
        if self.path.exists():
            try:
                with self.path.open("rb") as handle:
                    handle.seek(0, 2)
                    if handle.tell() > 0:
                        handle.seek(-1, 2)
                        self._ends_with_newline = handle.read(1) == b"\n"
            except OSError:
                pass  # unreadable tail: the sealing newline is harmless

    # - append side -

    def admitted(self, key: str, payload: dict) -> bool:
        """Record one admission (before the request enters the queue)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "admitted",
            "key": key, "payload": payload,
        })
        if ok:
            self.stats.admitted += 1
        return ok

    def completed(self, key: str, response: dict) -> bool:
        """Record one served response (the exactly-once side of recovery)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "completed",
            "key": key, "response": response,
        })
        if ok:
            self.stats.completed += 1
        return ok

    def failed(self, key: str, error: BaseException | str) -> bool:
        """Record one terminal failure, so recovery does not re-enqueue it
        (the client's retry policy owns failed requests)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "failed",
            "key": key, "error": str(error),
            "error_type": type(error).__name__
            if isinstance(error, BaseException) else "error",
        })
        if ok:
            self.stats.failed += 1
        return ok

    def _append(self, record: dict) -> bool:
        """Serialize, checksum, append, flush, fsync — or degrade.

        Returns whether the record was durably written.  Failures are
        absorbed: the journal flips to degraded mode, counts the fault,
        and the service keeps serving (durability off beats down).
        """
        with self._lock:
            if self.degraded:
                self.stats.dropped += 1
                return False
            record = dict(record)
            record["sha"] = _record_sha(record)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            # The torn-tail fault truncates what lands on disk, exactly as
            # a SIGKILL between write() and the trailing newline would.
            line = faults.corrupt_journal_line(line)
            try:
                faults.check_journal_io()
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a") as handle:
                    if not self._ends_with_newline:
                        handle.write("\n")
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
            except (JournalError, OSError):
                self.stats.io_errors += 1
                self.degraded = True
                obs.count("service.journal_degraded")
                return False
            self._ends_with_newline = True
            self.stats.appended += 1
            return True

    # - replay side -

    def load(self) -> JournalReplay:
        """Replay the journal into a :class:`JournalReplay`.

        Later records win per key (an ``admitted`` followed by
        ``completed`` is completed; a key re-admitted after a failure is
        an orphan again).  Corrupt lines are skipped and counted; only a
        corrupt *final* line reads as a torn tail.  A missing or
        unreadable journal replays empty — recovery from nothing is a
        cold start, not an error.
        """
        replay = JournalReplay()
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return replay
        except OSError:
            self.stats.io_errors += 1
            self.degraded = True
            obs.count("service.journal_degraded")
            return replay
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
                if record.get("v") != JOURNAL_VERSION:
                    raise ValueError(
                        f"unsupported journal version {record.get('v')!r}"
                    )
                kind = record.get("type")
                if kind not in RECORD_TYPES:
                    raise ValueError(f"unknown record type {kind!r}")
                key = record["key"]
                if not isinstance(key, str) or not key:
                    raise ValueError("record has no idempotency key")
                if _record_sha(record) != record.get("sha"):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError):
                replay.corrupt_lines.append(number)
                continue
            replay.records[kind] = replay.records.get(kind, 0) + 1
            if kind == "admitted":
                payload = record.get("payload")
                payload = payload if isinstance(payload, dict) else {}
                replay.payloads[key] = payload
                replay.orphans[key] = payload
                replay.completed.pop(key, None)
                replay.failed.pop(key, None)
            elif kind == "completed":
                response = record.get("response")
                replay.completed[key] = (
                    response if isinstance(response, dict) else {}
                )
                replay.orphans.pop(key, None)
                replay.failed.pop(key, None)
            else:  # failed
                replay.failed[key] = (
                    str(record.get("error_type", "error")),
                    str(record.get("error", "")),
                )
                replay.orphans.pop(key, None)
                replay.completed.pop(key, None)
        replay.torn_tail = bool(
            replay.corrupt_lines and replay.corrupt_lines[-1] == len(lines)
        )
        return replay

    # - introspection -

    def snapshot(self) -> dict:
        """JSON-friendly journal health for ``/counters``."""
        return {
            "path": str(self.path),
            "degraded": self.degraded,
            "appended": self.stats.appended,
            "admitted": self.stats.admitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "dropped": self.stats.dropped,
            "io_errors": self.stats.io_errors,
        }
