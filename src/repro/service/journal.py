"""The write-ahead request journal: crash-safe serving's source of truth.

The alignment service's premise — alignment is a deterministic function
of (CFG, profile, method, seed) — makes exactly-once recovery cheap: two
requests that normalize to the same inputs *are* the same request, so a
content-addressed **idempotency key** both names a journal record and
coalesces duplicates.  The journal is an fsynced append-only JSONL file
the server writes at two points of the request lifecycle::

    {"v": 1, "type": "admitted",  "key": K, "sha": ..., "payload": {...}}
    {"v": 1, "type": "completed", "key": K, "sha": ..., "response": {...}}
    {"v": 1, "type": "failed",    "key": K, "sha": ..., "error": "...",
     "error_type": "..."}

``admitted`` is appended *before* the request enters the worker queue;
``completed``/``failed`` when the worker resolves it.  After a SIGKILL or
power loss, :meth:`RequestJournal.load` replays the file: a key whose
last record is ``completed`` is served straight from the journal (after
re-verification — see :mod:`repro.service.core`); an ``admitted`` key
with no terminal record is an **orphan** the restarted server re-enqueues;
a ``failed`` key is left to the client's retry.

Durability discipline (the same one the ArtifactStore and experiment
checkpoints already prove):

* every append is flushed and ``fsync``\\ ed before the admission/response
  proceeds, so an acknowledged record survives the process;
* every record carries a sha256 of its payload, so a torn final record
  (the process died mid-append) fails its checksum and is *skipped*, not
  fatal, and the next append seals the stump with a newline first;
* an append that raises (disk full, injected ``journal_io_error``) flips
  the journal into **degraded-durability mode**: serving continues, the
  ``service.journal_degraded`` counter and ``/readyz``'s ``durability:
  off`` record the loss of crash-safety, and no further writes are
  attempted until restart.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field

from repro import faults, obs
from repro.errors import JournalError

JOURNAL_VERSION = 1

#: Record types a journal line may carry, in lifecycle order.
RECORD_TYPES = ("admitted", "completed", "failed")


# -- idempotency keys ---------------------------------------------------------


def _digest(payload: object) -> str:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


#: Raw-payload digest → computed key.  Keying compiles the request's
#: source, which is far too expensive to repeat for every duplicate of a
#: hot payload under Zipf traffic; the memo makes re-keying a duplicate a
#: dict hit.  Bounded (FIFO eviction) so a key-diverse client cannot grow
#: it without limit.
_KEY_MEMO: dict[str, str] = {}
_KEY_MEMO_MAX = 4096


def request_key(payload: object) -> str:
    """Content-addressed idempotency key for one request payload.

    Two payloads that normalize to the same alignment inputs — compiled
    CFGs, profile (explicit JSON or the inputs that generate one), method
    alias, model, effort, seed, bound flag, deadline — map to the same
    key, so a client retry or a duplicate submission coalesces onto one
    unit of work and one journal history.

    A payload that cannot be normalized (unparseable source, unknown
    method — anything the worker would reject with a typed 400) falls
    back to a digest of the canonical payload itself: still stable for a
    byte-identical retry, never an exception at admission time.
    """
    try:
        raw_digest = _digest(payload)
        memoized = _KEY_MEMO.get(raw_digest)
        if memoized is not None:
            return memoized
    except Exception:  # noqa: BLE001 — unserializable payloads skip the memo
        raw_digest = None
    key = _compute_request_key(payload)
    if raw_digest is not None:
        if len(_KEY_MEMO) >= _KEY_MEMO_MAX:
            _KEY_MEMO.pop(next(iter(_KEY_MEMO)))
        _KEY_MEMO[raw_digest] = key
    return key


def _compute_request_key(payload: object) -> str:
    try:
        from repro.lang import compile_source
        from repro.pipeline.artifacts import (
            fingerprint_cfg,
            fingerprint_profile,
        )
        from repro.pipeline.registry import normalize_method
        from repro.profiles.edge_profile import ProgramProfile

        if not isinstance(payload, dict):
            raise ValueError("payload is not an object")
        module = compile_source(str(payload["source"]))
        cfgs = [
            (proc.name, fingerprint_cfg(proc.cfg))
            for proc in module.program
        ]
        profile_json = payload.get("profile")
        if profile_json is not None:
            profile = ProgramProfile.from_json(str(profile_json))
            profile_fp = sorted(
                (name, fingerprint_profile(edge))
                for name, edge in profile.procedures.items()
            )
        else:
            # No explicit profile: it is produced by running the program
            # on ``inputs``, a deterministic function of (CFG, inputs).
            profile_fp = ["inputs", [int(x) for x in payload.get("inputs", [])]]
        deadline = payload.get("deadline_ms")
        return _digest({
            "cfgs": cfgs,
            "profile": profile_fp,
            "method": normalize_method(str(payload.get("method", "tsp"))),
            "model": str(payload.get("model", "alpha21164")),
            "effort": str(payload.get("effort", "default")),
            "seed": int(payload.get("seed", 0)),
            "bound": bool(payload.get("bound", False)),
            "deadline_ms": None if deadline is None else float(deadline),
        })
    except Exception:  # noqa: BLE001 — malformed payloads still get keys
        return _digest({"raw": payload})


# -- replay results -----------------------------------------------------------


@dataclass
class JournalReplay:
    """What one :meth:`RequestJournal.load` pass recovered.

    ``completed`` maps keys to their recorded responses; ``failed`` to
    their recorded ``(error_type, error)``; ``orphans`` to the payloads
    of admitted requests with no terminal record, in admission order —
    the work a crash interrupted.  ``payloads`` keeps every admitted
    payload (terminal or not) so completed entries can be re-verified
    against freshly compiled inputs.
    """

    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, tuple[str, str]] = field(default_factory=dict)
    orphans: dict[str, dict] = field(default_factory=dict)
    payloads: dict[str, dict] = field(default_factory=dict)
    #: Total well-formed records read, by type.
    records: dict[str, int] = field(default_factory=dict)
    #: 1-based line numbers that failed to parse or checksum.
    corrupt_lines: list[int] = field(default_factory=list)
    #: The final line was corrupt — the torn-tail signature of a crash
    #: mid-append (any other corrupt line is bit rot or tampering).
    torn_tail: bool = False
    #: Corrupt lines in the *interior* of the file: damage that cannot be
    #: explained as a crash mid-append, so each is a previously-durable
    #: record the journal lost.  Recovery demotes whatever those lines
    #: held — the per-key replay simply never sees them, so an admitted
    #: key whose terminal record was hit reads as an orphan and is
    #: re-enqueued — and counts them under ``service.replay_rejected``.
    interior_corrupt: list[int] = field(default_factory=list)


@dataclass
class JournalStats:
    """Mutable accounting for one :class:`RequestJournal`."""

    appended: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Appends dropped because the journal is in degraded mode.
    dropped: int = 0
    io_errors: int = 0
    #: Size-triggered compactions that rewrote the file.
    compactions: int = 0
    #: Bytes reclaimed across all compactions.
    compacted_bytes: int = 0


# -- the journal --------------------------------------------------------------


def _record_sha(record: dict) -> str:
    body = {k: v for k, v in record.items() if k != "sha"}
    return _digest(body)


#: Completions a compaction keeps (most recent first to go stale last).
DEFAULT_KEEP_COMPLETED = 256


class RequestJournal:
    """Append-only, fsynced, torn-tail-tolerant request journal.

    With ``compact_bytes`` set, the journal rewrites itself whenever an
    append pushes the file past that size, keeping only the *live*
    records: every orphaned admission (work a crash would need to
    replay) and the most recent ``keep_completed`` completions together
    with their admitted payloads (so recovery can still re-verify them).
    Terminal failures and superseded history are dropped — the client's
    retry policy owns failed requests, and a bounded journal is the
    price of surviving unbounded uptime.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        compact_bytes: int | None = None,
        keep_completed: int = DEFAULT_KEEP_COMPLETED,
    ):
        self.path = pathlib.Path(path).expanduser()
        self.compact_bytes = compact_bytes
        self.keep_completed = max(0, keep_completed)
        self.stats = JournalStats()
        #: Degraded-durability mode: an append failed, serving continues
        #: without crash-safety until restart.  Sticky by design — a disk
        #: that failed once cannot be trusted to have kept earlier
        #: records reachable, so flapping back to "durable" would lie.
        self.degraded = False
        self._lock = threading.Lock()
        # A crash mid-append leaves a final line without its newline; the
        # next append must seal the stump so it does not corrupt itself.
        self._ends_with_newline = True
        if self.path.exists():
            try:
                with self.path.open("rb") as handle:
                    handle.seek(0, 2)
                    if handle.tell() > 0:
                        handle.seek(-1, 2)
                        self._ends_with_newline = handle.read(1) == b"\n"
            except OSError:
                pass  # unreadable tail: the sealing newline is harmless

    # - append side -

    def admitted(self, key: str, payload: dict) -> bool:
        """Record one admission (before the request enters the queue)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "admitted",
            "key": key, "payload": payload,
        })
        if ok:
            self.stats.admitted += 1
        return ok

    def completed(self, key: str, response: dict) -> bool:
        """Record one served response (the exactly-once side of recovery)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "completed",
            "key": key, "response": response,
        })
        if ok:
            self.stats.completed += 1
        return ok

    def failed(self, key: str, error: BaseException | str) -> bool:
        """Record one terminal failure, so recovery does not re-enqueue it
        (the client's retry policy owns failed requests)."""
        ok = self._append({
            "v": JOURNAL_VERSION, "type": "failed",
            "key": key, "error": str(error),
            "error_type": type(error).__name__
            if isinstance(error, BaseException) else "error",
        })
        if ok:
            self.stats.failed += 1
        return ok

    def _append(self, record: dict) -> bool:
        """Serialize, checksum, append, flush, fsync — or degrade.

        Returns whether the record was durably written.  Failures are
        absorbed: the journal flips to degraded mode, counts the fault,
        and the service keeps serving (durability off beats down).
        """
        with self._lock:
            if self.degraded:
                self.stats.dropped += 1
                return False
            record = dict(record)
            record["sha"] = _record_sha(record)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            # The torn-tail fault truncates what lands on disk, exactly as
            # a SIGKILL between write() and the trailing newline would.
            line = faults.corrupt_journal_line(line)
            try:
                faults.check_journal_io()
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a") as handle:
                    if not self._ends_with_newline:
                        handle.write("\n")
                    if faults.journal_enospc_fires():
                        # Disk full mid-append: half the record lands with
                        # no trailing newline, then the write fails.  What
                        # is on disk is exactly the torn tail the next
                        # recovery's replay tolerates.
                        handle.write(line[: max(1, len(line) // 2)])
                        handle.flush()
                        os.fsync(handle.fileno())
                        self._ends_with_newline = False
                        raise JournalError(
                            "fault injection: no space left on device"
                        )
                    handle.write(line + "\n")
                    handle.flush()
                    stall = faults.fsync_stall_s()
                    if stall > 0.0:
                        time.sleep(stall)
                    os.fsync(handle.fileno())
            except (JournalError, OSError):
                self.stats.io_errors += 1
                self.degraded = True
                obs.count("service.journal_degraded")
                return False
            self._ends_with_newline = True
            self.stats.appended += 1
            if faults.torn_write_mid_file_fires():
                self._corrupt_mid_file_locked()
            self._maybe_compact_locked()
            return True

    def _corrupt_mid_file_locked(self) -> None:
        """Zero one byte in the middle of the file — the injected shape of
        a torn write at an arbitrary offset (lying firmware, bit rot): an
        interior, previously-durable record stops checksumming, which the
        next recovery must demote rather than serve or abort on."""
        try:
            with self.path.open("r+b") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size < 2:
                    return
                handle.seek(size // 2)
                handle.write(b"\x00")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # failing to corrupt is a no-op, not a journal failure

    # - compaction -

    def _maybe_compact_locked(self) -> None:
        if self.compact_bytes is None:
            return
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size > self.compact_bytes:
            self._compact_locked(size)

    def compact(self) -> bool:
        """Force one compaction pass (the size trigger calls this form
        automatically via ``_append``).  Returns whether a rewrite
        happened."""
        with self._lock:
            if self.degraded:
                return False
            try:
                size = self.path.stat().st_size
            except OSError:
                return False
            return self._compact_locked(size)

    def _compact_locked(self, old_size: int) -> bool:
        """Rewrite the journal with only its live records.

        Live = every orphaned admission, plus the most recent
        ``keep_completed`` completions *with* their admitted payload
        records (recovery re-verifies a completion against its payload;
        a completion whose payload is gone is dropped rather than kept
        unverifiable).  Records are re-checksummed, written to a
        temporary file, fsynced, and atomically swapped in — a crash
        mid-compaction leaves the old journal untouched, and the
        replaced file starts newline-clean so torn-tail tolerance is
        unaffected.
        """
        replay = self.load()
        lines: list[str] = []

        def emit(record: dict) -> None:
            record = dict(record)
            record["sha"] = _record_sha(record)
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )

        kept_completed = list(replay.completed.items())[-self.keep_completed:]
        for key, response in kept_completed:
            payload = replay.payloads.get(key)
            if payload is None:
                continue
            emit({"v": JOURNAL_VERSION, "type": "admitted",
                  "key": key, "payload": payload})
            emit({"v": JOURNAL_VERSION, "type": "completed",
                  "key": key, "response": response})
        for key, payload in replay.orphans.items():
            emit({"v": JOURNAL_VERSION, "type": "admitted",
                  "key": key, "payload": payload})

        tmp = self.path.with_name(self.path.name + ".compact")
        try:
            with tmp.open("w") as handle:
                handle.write("".join(line + "\n" for line in lines))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError:
            # A failed compaction is not a failed journal: the original
            # file is intact, so serving (and the next trigger) continue.
            self.stats.io_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self._ends_with_newline = True
        self.stats.compactions += 1
        try:
            self.stats.compacted_bytes += max(
                0, old_size - self.path.stat().st_size
            )
        except OSError:
            pass
        obs.count("service.journal_compacted")
        return True

    # - replay side -

    def load(self) -> JournalReplay:
        """Replay the journal into a :class:`JournalReplay`.

        Later records win per key (an ``admitted`` followed by
        ``completed`` is completed; a key re-admitted after a failure is
        an orphan again).  Corrupt lines are skipped and counted; only a
        corrupt *final* line reads as a torn tail.  A missing or
        unreadable journal replays empty — recovery from nothing is a
        cold start, not an error.
        """
        replay = JournalReplay()
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return replay
        except OSError:
            self.stats.io_errors += 1
            self.degraded = True
            obs.count("service.journal_degraded")
            return replay
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
                if record.get("v") != JOURNAL_VERSION:
                    raise ValueError(
                        f"unsupported journal version {record.get('v')!r}"
                    )
                kind = record.get("type")
                if kind not in RECORD_TYPES:
                    raise ValueError(f"unknown record type {kind!r}")
                key = record["key"]
                if not isinstance(key, str) or not key:
                    raise ValueError("record has no idempotency key")
                if _record_sha(record) != record.get("sha"):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError):
                replay.corrupt_lines.append(number)
                continue
            replay.records[kind] = replay.records.get(kind, 0) + 1
            if kind == "admitted":
                payload = record.get("payload")
                payload = payload if isinstance(payload, dict) else {}
                replay.payloads[key] = payload
                replay.orphans[key] = payload
                replay.completed.pop(key, None)
                replay.failed.pop(key, None)
            elif kind == "completed":
                response = record.get("response")
                replay.completed[key] = (
                    response if isinstance(response, dict) else {}
                )
                replay.orphans.pop(key, None)
                replay.failed.pop(key, None)
            else:  # failed
                replay.failed[key] = (
                    str(record.get("error_type", "error")),
                    str(record.get("error", "")),
                )
                replay.orphans.pop(key, None)
                replay.completed.pop(key, None)
        replay.torn_tail = bool(
            replay.corrupt_lines and replay.corrupt_lines[-1] == len(lines)
        )
        replay.interior_corrupt = (
            replay.corrupt_lines[:-1] if replay.torn_tail
            else list(replay.corrupt_lines)
        )
        return replay

    # - introspection -

    def snapshot(self) -> dict:
        """JSON-friendly journal health for ``/counters``."""
        return {
            "path": str(self.path),
            "degraded": self.degraded,
            "appended": self.stats.appended,
            "admitted": self.stats.admitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "dropped": self.stats.dropped,
            "io_errors": self.stats.io_errors,
            "compactions": self.stats.compactions,
            "compacted_bytes": self.stats.compacted_bytes,
        }
