"""``repro.service`` — the resilient alignment service.

A long-running server (stdlib HTTP, no new dependencies) that accepts
CFG+profile alignment requests and returns verified layouts, wrapping the
staged pipeline, supervised executor, and artifact store in a
serving-grade robustness layer:

* **Admission control** (:mod:`.admission`) — a bounded request queue;
  requests beyond capacity are *shed* with a typed
  :class:`~repro.errors.ServiceOverloadError` (HTTP 429), never queued
  unboundedly.
* **Deadlines** (:mod:`.deadline`) — a per-request deadline propagates
  into per-procedure :class:`~repro.budget.Budget` solver budgets and the
  executor's ``task_timeout_ms``, so a tight deadline degrades the TSP
  aligner down its existing ladder instead of blowing the request.
* **Circuit breakers** (:mod:`.breaker`) — per-aligner, deterministic
  (request-count based, no wall clock): repeated worker crashes or task
  timeouts open the breaker and requests fall back to the greedy aligner
  with ``degraded="breaker_fallback"`` accounting.
* **Verification** (:mod:`.verify`) — every response is independently
  re-checked (permutation validity, aligner-vs-evaluator cost agreement,
  Held–Karp floor); violations are quarantined, never served.
* **Graceful drain** (:mod:`.core`, :mod:`.http_server`) — SIGTERM stops
  admission, finishes in-flight work, flushes observability state, and
  exits 0.

See ``docs/robustness.md`` ("Serving") and ``docs/architecture.md``.
"""

from .admission import AdmissionGate
from .breaker import BreakerState, CircuitBreaker
from .client import get_json, post_json, request_alignment, wait_ready
from .core import (
    AlignmentService,
    PendingRequest,
    ServiceConfig,
    fallback_method,
    parse_request,
)
from .deadline import DeadlinePlan, plan_deadline
from .http_server import AlignmentHTTPServer, serve
from .verify import verify_layouts, verify_or_raise

__all__ = [
    "AdmissionGate",
    "AlignmentHTTPServer",
    "AlignmentService",
    "BreakerState",
    "CircuitBreaker",
    "DeadlinePlan",
    "PendingRequest",
    "ServiceConfig",
    "fallback_method",
    "get_json",
    "parse_request",
    "plan_deadline",
    "post_json",
    "request_alignment",
    "serve",
    "verify_layouts",
    "verify_or_raise",
    "wait_ready",
]
