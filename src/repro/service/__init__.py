"""``repro.service`` — the resilient alignment service.

A long-running server (stdlib HTTP, no new dependencies) that accepts
CFG+profile alignment requests and returns verified layouts, wrapping the
staged pipeline, supervised executor, and artifact store in a
serving-grade robustness layer:

* **Admission control** (:mod:`.admission`) — a bounded request queue;
  requests beyond capacity are *shed* with a typed
  :class:`~repro.errors.ServiceOverloadError` (HTTP 429), never queued
  unboundedly.
* **Deadlines** (:mod:`.deadline`) — a per-request deadline propagates
  into per-procedure :class:`~repro.budget.Budget` solver budgets and the
  executor's ``task_timeout_ms``, so a tight deadline degrades the TSP
  aligner down its existing ladder instead of blowing the request.
* **Circuit breakers** (:mod:`.breaker`) — per-aligner, deterministic
  (request-count based, no wall clock): repeated worker crashes or task
  timeouts open the breaker and requests fall back to the greedy aligner
  with ``degraded="breaker_fallback"`` accounting.
* **Verification** (:mod:`.verify`) — every response is independently
  re-checked (permutation validity, aligner-vs-evaluator cost agreement,
  Held–Karp floor); violations are quarantined, never served.
* **Graceful drain** (:mod:`.core`, :mod:`.http_server`) — SIGTERM stops
  admission, finishes in-flight work, flushes observability state, and
  exits 0.
* **Crash safety** (:mod:`.journal`) — a write-ahead request journal
  (fsynced JSONL, content-addressed idempotency keys, torn-tail
  tolerant, size-triggered compaction) makes SIGKILL survivable: on
  restart the service replays the journal, re-verifies and serves
  completed responses without re-solving, and re-enqueues orphaned
  admissions.  Duplicate payloads coalesce onto one unit of work
  (exactly-once), and :class:`~.client.RetryPolicy` gives clients a
  deterministic backoff that rides through the restart (honoring the
  server's ``Retry-After`` drain estimate under its cap).
* **Horizontal scale** (:mod:`.shard`) — ``--shards N`` runs N services
  behind a :class:`~.shard.ShardSupervisor`: idempotency-key-hash
  routing (each key's dedup/journal history lives on exactly one
  shard), health-probe failure isolation (dead or wedged shards are
  restarted on their journal and stranded requests re-land via
  replay + coalescing), and deterministic hedged requests
  (``hedge_after_ms`` duplicates a slow request to the sibling shard;
  first response wins, and idempotency keys guarantee hedging never
  double-computes journaled work).

See ``docs/robustness.md`` ("Serving", "Crash recovery", "Serving at
scale") and ``docs/architecture.md``.
"""

from .admission import AdmissionGate
from .breaker import BreakerState, CircuitBreaker
from .client import (
    RetryPolicy,
    get_json,
    post_json,
    request_alignment,
    request_with_retry,
    wait_ready,
)
from .core import (
    AlignmentService,
    PendingRequest,
    ServiceConfig,
    fallback_method,
    parse_request,
)
from .deadline import DeadlinePlan, plan_deadline
from .http_server import AlignmentHTTPServer, serve
from .journal import JournalReplay, RequestJournal, request_key
from .scrub import JournalScrub, scrub_journal, scrub_path
from .shard import (
    ShardRequest,
    ShardSupervisor,
    ShardTierConfig,
    hedge_sibling,
    route_shard,
)
from .verify import verify_layouts, verify_or_raise

__all__ = [
    "AdmissionGate",
    "AlignmentHTTPServer",
    "AlignmentService",
    "BreakerState",
    "CircuitBreaker",
    "DeadlinePlan",
    "JournalReplay",
    "JournalScrub",
    "PendingRequest",
    "RequestJournal",
    "RetryPolicy",
    "ServiceConfig",
    "ShardRequest",
    "ShardSupervisor",
    "ShardTierConfig",
    "fallback_method",
    "get_json",
    "hedge_sibling",
    "parse_request",
    "plan_deadline",
    "post_json",
    "request_alignment",
    "request_key",
    "request_with_retry",
    "route_shard",
    "scrub_journal",
    "scrub_path",
    "serve",
    "verify_layouts",
    "verify_or_raise",
    "wait_ready",
]
