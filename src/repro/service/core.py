"""The alignment service core: request lifecycle and the worker loop.

One :class:`AlignmentService` owns a bounded
:class:`~repro.service.admission.AdmissionGate`, a single worker thread
that drains it, per-aligner
:class:`~repro.service.breaker.CircuitBreaker`\\ s, and the verification
gate every response passes before it is served.  The HTTP tier
(:mod:`repro.service.http_server`) and tests talk to the same object;
nothing below this layer knows it is inside a server.

Request lifecycle (see ``docs/architecture.md``)::

    submit ─▶ admission (shed/503) ─▶ queue ─▶ worker:
        parse → compile → profile → breaker route → deadline plan
        → align (supervised pipeline) → breaker record → evaluate
        → verify → respond (or quarantine)

Thread/context notes — the two stdlib traps this layer exists to absorb:

* ``ContextVar`` state is **per-thread**: the HTTP handler threads and
  the worker thread would each mint a fresh sink-less tracer and a
  fault-plan-free context.  Every entry point therefore installs the
  service's captured tracer (:func:`repro.obs.install_tracer`), and each
  request carries a ``contextvars.copy_context()`` snapshot from its
  submitting thread, which the worker re-enters — so a caller's
  ``inject_faults`` plan and trace scope follow the request across the
  thread hop.
* The worker thread is the only consumer of the process pool, so
  pipeline state (pool, caches, store) needs no additional locking.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

from repro import faults, obs
from repro.budget import RetryPolicy
from repro.cfg import CFGError, validate_program
from repro.core import align_program, evaluate_program, lower_bound_program
from repro.core.align import AlignmentReport
from repro.errors import (
    ServiceUnavailableError,
    UnknownNameError,
    UsageError,
)
from repro.lang import compile_source, run_and_profile
from repro.machine.models import get_model
from repro.pipeline.executor import shutdown_pool
from repro.pipeline.registry import normalize_method
from repro.profiles.edge_profile import ProgramProfile
from repro.service.admission import AdmissionGate
from repro.service.breaker import (
    ROUTE_FALLBACK,
    ROUTE_PROBE,
    CircuitBreaker,
)
from repro.core.layout import Layout, ProgramLayout
from repro.service.deadline import plan_deadline
from repro.service.journal import RequestJournal, request_key
from repro.service.verify import verify_layouts
from repro.tsp.solve import get_effort

#: Drain sentinel; anything unique works, ``None`` would be ambiguous.
_SENTINEL = object()

#: Kill wake-up token (see :meth:`AlignmentService.kill`): dropped on the
#: floor by the worker loop, which re-checks the kill flag per item.
_KILL = object()


class _WedgeToken:
    """Control token that wedges the worker loop: alive, not progressing.

    The moral equivalent of a shard stuck in a pathological solve — the
    thread keeps running (``/healthz`` stays green) but the heartbeat
    goes stale and queued work stops draining, which is exactly the
    signature the shard supervisor's wedge detector keys on.  The wedge
    releases when its duration elapses or the service is killed.
    """

    def __init__(self, seconds: float):
        self.seconds = seconds


def fallback_method(method: str) -> str:
    """The aligner an open breaker routes to.

    The greedy aligner is the designated fallback (cheap, never touches
    the executor-heavy TSP path); when greedy *itself* is the broken
    aligner, the only rung left is the identity layout.
    """
    return "original" if method in ("greedy", "original") else "greedy"


@dataclass(frozen=True)
class AlignmentRequest:
    """One parsed, validated alignment request."""

    source: str
    method: str = "tsp"
    model: str = "alpha21164"
    effort: str = "default"
    seed: int = 0
    inputs: tuple[int, ...] = ()
    #: Serialized training profile (JSON text); ``None`` = profile by
    #: running the program on ``inputs``.
    profile_json: str | None = None
    deadline_ms: float | None = None
    #: Also certify Held–Karp floors and include them in verification.
    bound: bool = False


def parse_request(
    payload, *, default_deadline_ms: float | None = None
) -> AlignmentRequest:
    """Validate a JSON request body into an :class:`AlignmentRequest`.

    Every malformation raises :class:`~repro.errors.UsageError` (the
    400-equivalent) naming the offending field — bad input is the
    client's problem and must never read as a server failure.
    """
    if not isinstance(payload, dict):
        raise UsageError("request body must be a JSON object")
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise UsageError("request needs a non-empty 'source' program")
    try:
        method = normalize_method(str(payload.get("method", "tsp")))
    except UnknownNameError as exc:
        raise UsageError(f"unknown method: {exc}") from None
    try:
        model = get_model(str(payload.get("model", "alpha21164"))).name
        effort = get_effort(str(payload.get("effort", "default"))).name
    except UnknownNameError as exc:
        raise UsageError(str(exc)) from None
    try:
        seed = int(payload.get("seed", 0))
    except (TypeError, ValueError):
        raise UsageError(
            f"'seed' must be an integer, got {payload.get('seed')!r}"
        ) from None
    raw_inputs = payload.get("inputs", [])
    if not isinstance(raw_inputs, (list, tuple)):
        raise UsageError("'inputs' must be a list of integers")
    try:
        inputs = tuple(int(x) for x in raw_inputs)
    except (TypeError, ValueError):
        raise UsageError("'inputs' must be a list of integers") from None
    profile_json = payload.get("profile")
    if profile_json is not None and not isinstance(profile_json, str):
        raise UsageError(
            "'profile' must be the profile JSON as a string "
            "(ProgramProfile.to_json output)"
        )
    deadline = payload.get("deadline_ms", default_deadline_ms)
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise UsageError(
                f"'deadline_ms' must be a number, got {deadline!r}"
            ) from None
        if deadline <= 0:
            raise UsageError("'deadline_ms' must be positive")
    return AlignmentRequest(
        source=source,
        method=method,
        model=model,
        effort=effort,
        seed=seed,
        inputs=inputs,
        profile_json=profile_json,
        deadline_ms=deadline,
        bound=bool(payload.get("bound", False)),
    )


@dataclass
class ServiceConfig:
    """Operator knobs for one service instance."""

    #: Bounded queue capacity; requests beyond it are shed (429).
    capacity: int = 16
    #: Worker processes per align pass (``None`` = ``$REPRO_JOBS``).
    jobs: int | None = None
    #: Supervision policy (``None`` = env defaults per align call).
    policy: RetryPolicy | None = None
    #: Deadline applied to requests that do not carry their own.
    default_deadline_ms: float | None = None
    #: Consecutive infrastructure failures that open a breaker.
    breaker_threshold: int = 3
    #: Fallback-served requests before an open breaker probes.
    breaker_cooldown: int = 5
    #: Run the layout verifier on every response.
    verify: bool = True
    #: Write-ahead request journal path; ``None`` = no durability (and no
    #: idempotent coalescing — dedup semantics exist only when the journal
    #: gives duplicate payloads a persistent identity).
    journal_path: str | None = None
    #: Size (bytes) past which the journal compacts itself down to its
    #: live records; ``None`` = never compact (the pre-compaction
    #: behaviour: the journal grows without bound across restarts).
    journal_compact_bytes: int | None = None
    #: Shared lock serializing pipeline (align/bound) calls across
    #: services in one process.  The shard supervisor sets this when
    #: shards run with ``jobs > 1``: the process pool and artifact
    #: caches are module-global, so concurrent multi-worker align calls
    #: from several shard threads must take turns.  ``None`` (the
    #: default, and always the right choice for ``jobs=1``) runs
    #: lock-free.
    pipeline_lock: "threading.Lock | None" = None
    #: Label for this service's fault-site consultations (``"shard-N"``
    #: under the shard supervisor); ``""`` keeps the default ``"main"``.
    #: Only fault-space discovery (:func:`repro.faults.record_sites`)
    #: reads it.
    fault_scope: str = ""


class PendingRequest:
    """Caller-side handle for one admitted request."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._response: dict | None = None
        self._error: BaseException | None = None

    def resolve(self, response: dict) -> None:
        self._response = response
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict:
        """Block for the response; re-raises the worker's typed failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} did not complete in {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


@dataclass
class ServiceStats:
    """Mutable response accounting (admission stats live on the gate)."""

    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    breaker_fallbacks: int = 0
    #: Requests answered without new work: journal replay or an identical
    #: payload already cached/in flight (idempotency-key coalescing).
    deduped: int = 0
    #: Completed journal entries re-verified and served after a restart.
    recovered: int = 0
    latencies_ms: list[float] = field(default_factory=list)


class AlignmentService:
    """The long-running alignment service (transport-agnostic core)."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        # Captured in the constructing thread — the one where the CLI
        # started the trace — and installed into every service thread.
        self._tracer = obs.tracer()
        self.gate = AdmissionGate(self.config.capacity)
        self.stats = ServiceStats()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._drained = False
        self.journal: RequestJournal | None = (
            RequestJournal(
                self.config.journal_path,
                compact_bytes=self.config.journal_compact_bytes,
            )
            if self.config.journal_path
            else None
        )
        #: Idempotency-key → completed response (exactly-once cache).
        self._dedup: dict[str, dict] = {}
        #: Idempotency-key → the in-flight handle duplicates coalesce onto.
        self._inflight: dict[str, PendingRequest] = {}
        #: True from start() until journal replay finishes (``/readyz``
        #: reports ``replaying`` and 503s while this holds).
        self._recovering = False
        #: Set once replay finishes (immediately when no journal):
        #: submit() waits on it so an early request can never race the
        #: replay into re-solving work the journal already holds.
        self._recovery_done = threading.Event()
        #: Summary of the last journal replay (``/counters`` exposes it).
        self._recovery: dict | None = None
        #: Chaos/kill state (see :meth:`kill`): once set, the worker loop
        #: exits at the next item boundary, stranding queued work — the
        #: in-process equivalent of SIGKILLing a shard.
        self._killed = False
        #: Liveness heartbeat: bumped every time the worker dequeues or
        #: finishes an item.  A busy worker whose heartbeat goes stale is
        #: *wedged* — the shard supervisor's restart trigger.
        self._last_beat = time.monotonic()
        self._busy = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AlignmentService":
        if self._worker is not None:
            return self
        # Flag recovery *before* the worker exists so /readyz can never
        # race a green "ready" between thread start and replay.
        self._recovering = self.journal is not None
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-worker", daemon=True
        )
        self._worker.start()
        return self

    @property
    def healthy(self) -> bool:
        """The worker loop is alive (or exited via a clean drain)."""
        if self._drained:
            return True
        return self._worker is not None and self._worker.is_alive()

    @property
    def killed(self) -> bool:
        return self._killed

    @property
    def busy(self) -> bool:
        """The worker is mid-item (processing or wedged)."""
        return self._busy

    def heartbeat_age_s(self) -> float:
        """Seconds since the worker last made visible progress."""
        return time.monotonic() - self._last_beat

    def kill(self) -> None:
        """Die abruptly: the in-process equivalent of SIGKILL on a shard.

        The worker loop exits at its next item boundary without draining
        — queued requests strand, in-flight handles never resolve, and
        the journal keeps only what was already fsynced.  Exists for the
        shard supervisor's ``shard_death`` chaos and for tests; a killed
        service reports ``healthy == False`` and refuses new submissions,
        exactly like a dead process behind a load balancer.
        """
        self._killed = True
        try:
            # Wake a worker blocked on an empty queue; if the queue is
            # full the worker is busy and will see the flag on its own.
            self.gate._queue.put_nowait(_KILL)
        except queue.Full:
            pass

    def wedge(self, seconds: float) -> None:
        """Chaos hook: enqueue a wedge token (see :class:`_WedgeToken`)."""
        self.gate.put_control(_WedgeToken(seconds))

    @property
    def recovering(self) -> bool:
        """Journal replay is still running; the service is not yet ready."""
        return self._recovering

    @property
    def ready(self) -> bool:
        """Admitting new work: started, replay done, not draining/drained."""
        return (
            self._worker is not None
            and self._worker.is_alive()
            and not self._recovering
            and not self.gate.draining
            and not self._drained
        )

    def begin_drain(self) -> None:
        """Stop admitting (idempotent, fast, signal-handler safe)."""
        self.gate.begin_drain()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful drain: stop admitting, finish every admitted request,
        stop the worker, release the process pool.  Returns True when the
        worker exited within ``timeout``."""
        obs.install_tracer(self._tracer)
        if self._drained:
            return True
        self.gate.begin_drain()
        if self._worker is None:
            self._drained = True
            return True
        self.gate.put_control(_SENTINEL)
        self._worker.join(timeout)
        finished = not self._worker.is_alive()
        if finished:
            self._drained = True
            shutdown_pool()
            obs.count("service.drained")
        return finished

    # -- submission ----------------------------------------------------------

    def submit(self, payload) -> PendingRequest:
        """Admit one request; raises typed admission failures.

        The returned handle resolves when the worker finishes the
        request (or fails it with a typed error).

        With a journal configured the request is first resolved against
        its content-addressed idempotency key: a payload identical to a
        completed one is answered from the exactly-once cache, and one
        identical to an in-flight request returns *that* request's
        handle — both count ``service.deduped``, neither does new work
        or re-enters the admission gate.  A genuinely new request is
        journaled (``admitted``) before it is queued, so a crash after
        this point can re-enqueue it instead of losing it.
        """
        obs.install_tracer(self._tracer)
        if self._worker is None or not self._worker.is_alive():
            raise ServiceUnavailableError("service worker is not running")
        # Admitting before replay finishes could re-solve a request the
        # journal already holds, so wait out the replay (finite: it only
        # reads the journal and re-verifies).  /readyz reports the
        # replaying state; direct submitters just block briefly.
        while not self._recovery_done.wait(timeout=0.1):
            if self._worker is None or not self._worker.is_alive():
                raise ServiceUnavailableError(
                    "service worker died during journal replay"
                )
        key: str | None = None
        if self.journal is not None:
            key = request_key(payload)
            with self._lock:
                cached = self._dedup.get(key)
                if cached is not None:
                    self.stats.deduped += 1
                    obs.count("service.deduped")
                    pending = PendingRequest(next(self._ids))
                    pending.resolve(dict(cached))
                    return pending
                waiting = self._inflight.get(key)
                if waiting is not None:
                    self.stats.deduped += 1
                    obs.count("service.deduped")
                    return waiting
                pending = PendingRequest(next(self._ids))
                self._inflight[key] = pending
            self.journal.admitted(
                key, payload if isinstance(payload, dict) else {"raw": payload}
            )
        else:
            pending = PendingRequest(next(self._ids))
        ctx = contextvars.copy_context()
        try:
            self.gate.submit(
                (pending, payload, ctx, key),
                deadline_ms=self._payload_deadline(payload),
            )
        except Exception as exc:
            if key is not None:
                # The journal must not replay a request the gate refused
                # (the client saw 429/503 and owns the retry).
                with self._lock:
                    self._inflight.pop(key, None)
                self.journal.failed(key, exc)
            raise
        return pending

    def align(self, payload, timeout: float | None = None) -> dict:
        """Submit and wait — the convenience path for tests and the CLI."""
        return self.submit(payload).result(timeout)

    def _payload_deadline(self, payload) -> float | None:
        """The request's deadline, for the gate's queue-wait estimate.

        Best-effort and forgiving: a malformed deadline returns ``None``
        here (the gate admits) and is rejected with a typed 400 by
        ``parse_request`` on the worker — admission must never throw a
        different error than the worker would.
        """
        if not isinstance(payload, dict):
            return self.config.default_deadline_ms
        raw = payload.get("deadline_ms", self.config.default_deadline_ms)
        if raw is None:
            return None
        try:
            deadline = float(raw)
        except (TypeError, ValueError):
            return None
        return deadline if deadline > 0 else None

    # -- the worker ----------------------------------------------------------

    def breaker(self, method: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = self._breakers[method] = CircuitBreaker(
                    method,
                    failure_threshold=self.config.breaker_threshold,
                    cooldown_requests=self.config.breaker_cooldown,
                )
            return breaker

    def _worker_loop(self) -> None:
        obs.install_tracer(self._tracer)
        if self.config.fault_scope:
            faults.set_scope(self.config.fault_scope)
        try:
            if self.journal is not None:
                self._recover()
        finally:
            # Even a failed replay must not wedge /readyz at 503 forever:
            # the journal is an availability feature, never a jailer.
            self._recovering = False
            self._recovery_done.set()
        while not self._killed:
            item = self.gate.next_item()
            if self._killed or item is _SENTINEL:
                return
            if item is _KILL:
                continue  # stale wake-up from an un-killed race; ignore
            self._last_beat = time.monotonic()
            if isinstance(item, _WedgeToken):
                self._busy = True
                start = time.monotonic()
                while (not self._killed
                       and time.monotonic() - start < item.seconds):
                    time.sleep(0.005)
                self._busy = False
                self._last_beat = time.monotonic()
                continue
            self._busy = True
            try:
                self._resolve(item)
            finally:
                self._busy = False
                self._last_beat = time.monotonic()

    def _resolve(self, item) -> None:
        """Process one queued request and settle its handle, journal, and
        idempotency caches.  Runs only on the worker thread."""
        pending, payload, ctx, key = item
        started = time.monotonic()
        try:
            # Re-enter the submitter's context so its fault plan and
            # trace scope apply to the work done on its behalf.
            response = ctx.run(self._process, pending, payload)
        except BaseException as exc:  # noqa: BLE001 — the loop survives
            # everything; the error re-raises in the caller's thread.
            self.stats.failed += 1
            obs.count("service.failed")
            if key is not None and self.journal is not None:
                self.journal.failed(key, exc)
                with self._lock:
                    self._inflight.pop(key, None)
            pending.fail(exc)
        else:
            if key is not None and self.journal is not None:
                if response.get("status") == "ok":
                    # Terminal record first, cache second: a crash between
                    # the two re-serves from the journal, never re-solves.
                    self.journal.completed(key, response)
                    with self._lock:
                        self._dedup[key] = response
                        self._inflight.pop(key, None)
                else:
                    # Quarantined responses are terminal (the evidence is
                    # in the record) but never cached: a retry deserves a
                    # fresh attempt, not replayed violations.
                    self.journal.failed(
                        key,
                        "quarantined: "
                        + "; ".join(response.get("violations", [])),
                    )
                    with self._lock:
                        self._inflight.pop(key, None)
            pending.resolve(response)
        finally:
            # Feed the gate's queue-wait estimate with the *observed*
            # wall time — failures included, they occupy the worker too.
            self.gate.observe_service_time(
                (time.monotonic() - started) * 1000.0
            )

    # -- crash recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal on startup: serve completed entries from the
        record (after re-verification), re-enqueue orphaned admissions.

        Runs on the worker thread before the drain loop, so the HTTP tier
        can already answer ``/readyz`` with ``recovering: true`` while
        replay makes progress.
        """
        assert self.journal is not None
        start = time.monotonic()
        with obs.span("service:recover") as sp:
            replay = self.journal.load()
            reverify_failed = 0
            if replay.interior_corrupt:
                # Mid-file damage: each lost line was a previously-durable
                # record the replay could not serve — rejected evidence,
                # same counter as a completion that fails re-verification.
                obs.count(
                    "service.replay_rejected", len(replay.interior_corrupt)
                )
            orphans = dict(replay.orphans)
            for key, response in replay.completed.items():
                payload = replay.payloads.get(key, {})
                violations = self._verify_replayed(payload, response)
                if violations is None or violations:
                    # A replayed layout that cannot be re-proved against
                    # the Held–Karp floor is never served from the
                    # journal: fall back to re-solving it.
                    reverify_failed += 1
                    obs.count("service.replay_rejected")
                    orphans[key] = payload
                    continue
                with self._lock:
                    self._dedup[key] = {**response, "served_from": "journal"}
                self.stats.recovered += 1
                obs.count("service.recovered")
            requeued = 0
            abandoned = 0
            for key, payload in orphans.items():
                if self.gate.draining or self._killed:
                    # SIGTERM (or a shard kill) landed mid-replay: abandon
                    # the rest cleanly.  Un-requeued orphans stay exactly
                    # as they are in the journal — admitted, no terminal
                    # record — so the *next* start recovers them; drain
                    # only has to finish what was already re-enqueued.
                    abandoned += 1
                    continue
                pending = PendingRequest(next(self._ids))
                with self._lock:
                    self._inflight[key] = pending
                item = (pending, payload, contextvars.copy_context(), key)
                # requeue() bypasses admission accounting (these requests
                # were admitted in a previous life); a full queue falls
                # back to processing the orphan inline, right now.
                if not self.gate.requeue(item):
                    self._resolve(item)
                requeued += 1
            replay_ms = round((time.monotonic() - start) * 1000.0, 3)
            sp["replayed"] = len(replay.completed)
            sp["requeued"] = requeued
            sp["rejected"] = reverify_failed
            self._recovery = {
                "replayed_completed": self.stats.recovered,
                "reverify_failed": reverify_failed,
                "reenqueued": requeued,
                "abandoned": abandoned,
                "failed_terminal": len(replay.failed),
                "corrupt_lines": len(replay.corrupt_lines),
                "interior_corrupt": len(replay.interior_corrupt),
                "torn_tail": replay.torn_tail,
                "replay_ms": replay_ms,
            }
            if abandoned:
                obs.count("service.replay_abandoned", abandoned)

    def _verify_replayed(self, payload, response) -> list[str] | None:
        """Re-prove a journaled response before it may be served again.

        Recomputes the request's program, profile, and Held–Karp floors
        from scratch and runs the full response verifier over the
        recorded layouts and costs — the journal is treated as untrusted
        bytes, exactly like a solver's output.  Returns the violation
        list (empty = serve), or ``None`` when the record cannot even be
        reconstructed (missing payload, unparseable program).
        """
        if response.get("status") != "ok":
            return None
        try:
            request = parse_request(
                payload, default_deadline_ms=self.config.default_deadline_ms
            )
            module = compile_source(request.source)
            program = module.program
            validate_program(program)
            model = get_model(request.model)
            if request.profile_json is not None:
                profile = ProgramProfile.from_json(request.profile_json)
                profile.check_against(program)
            else:
                _, profile = run_and_profile(module, list(request.inputs))
            raw = response.get("layouts")
            if not isinstance(raw, dict):
                return None
            layouts = ProgramLayout()
            for name, order in raw.items():
                layouts[str(name)] = Layout(tuple(int(b) for b in order))
            pipeline_guard = (
                self.config.pipeline_lock
                if self.config.pipeline_lock is not None
                else contextlib.nullcontext()
            )
            with pipeline_guard:
                floors = lower_bound_program(
                    program, profile, model=model, jobs=self.config.jobs
                ).per_procedure
            costs = {
                str(name): float(cost)
                for name, cost in (response.get("costs") or {}).items()
            }
            return verify_layouts(
                program, layouts, profile, model, costs=costs, bounds=floors
            )
        except Exception:  # noqa: BLE001 — an unverifiable record is
            # rejected (re-solved), never a startup crash.
            return None

    def _process(self, pending: PendingRequest, payload) -> dict:
        obs.install_tracer(self._tracer)
        start = time.monotonic()
        with obs.span("service:request", id=pending.request_id) as sp:
            request = parse_request(
                payload, default_deadline_ms=self.config.default_deadline_ms
            )
            sp["method"] = request.method

            module = compile_source(request.source)
            program = module.program
            try:
                validate_program(program)
            except CFGError as exc:
                raise UsageError(
                    f"invalid control-flow graph: {exc}"
                ) from None
            model = get_model(request.model)
            if request.profile_json is not None:
                profile = ProgramProfile.from_json(request.profile_json)
                profile.check_against(program)
            else:
                _, profile = run_and_profile(module, list(request.inputs))

            breaker = self.breaker(request.method)
            route = breaker.route()
            if route == ROUTE_PROBE and faults.breaker_probe_fails():
                breaker.record(route, failed=True)
                route = ROUTE_FALLBACK
            method_used = (
                fallback_method(request.method)
                if route == ROUTE_FALLBACK
                else request.method
            )
            sp["route"] = route

            plan = plan_deadline(
                request.deadline_ms,
                len(program.procedures),
                self.config.policy,
            )
            # With several shard workers in one process, multi-worker
            # align calls share the module-global pool and caches and
            # must take turns; jobs=1 shards pass a null context and run
            # fully in parallel.
            pipeline_guard = (
                self.config.pipeline_lock
                if self.config.pipeline_lock is not None
                else contextlib.nullcontext()
            )
            report = AlignmentReport()
            with pipeline_guard:
                layouts = align_program(
                    program,
                    profile,
                    method=method_used,
                    model=model,
                    effort=request.effort,
                    seed=request.seed,
                    budget=plan.budget,
                    jobs=self.config.jobs,
                    policy=plan.policy,
                    report=report,
                )
            infrastructure_failed = (
                report.worker_crashes > 0
                or report.timeouts > 0
                or bool(report.quarantined)
            )
            breaker.record(route, failed=infrastructure_failed)

            penalty = evaluate_program(program, layouts, profile, model)
            bounds = None
            if request.bound:
                with pipeline_guard:
                    bounds = lower_bound_program(
                        program,
                        profile,
                        model=model,
                        upper_bounds=dict(report.costs),
                        budget=plan.budget,
                        jobs=self.config.jobs,
                        policy=plan.policy,
                    ).per_procedure

            degraded = dict(report.degraded)
            if route == ROUTE_FALLBACK:
                self.stats.breaker_fallbacks += 1
                for proc in program:
                    degraded.setdefault(proc.name, "breaker_fallback")

            violations: list[str] = []
            if self.config.verify:
                violations = verify_layouts(
                    program,
                    layouts,
                    profile,
                    model,
                    costs=dict(report.costs),
                    bounds=bounds,
                )
            elapsed_ms = (time.monotonic() - start) * 1000.0
            sp["degraded"] = len(degraded)
            sp["violations"] = len(violations)
            self.stats.latencies_ms.append(elapsed_ms)

            base = {
                "id": pending.request_id,
                "method": request.method,
                "served_by": method_used,
                "breaker": breaker.snapshot(),
                "degraded": degraded,
                "quarantined": dict(report.quarantined),
                "retried": report.retried,
                "worker_crashes": report.worker_crashes,
                "timeouts": report.timeouts,
                "deadline_ms": request.deadline_ms,
                "elapsed_ms": round(elapsed_ms, 3),
            }
            if violations:
                # Never serve a layout that failed verification: the
                # response carries the evidence instead of the layouts.
                self.stats.quarantined += 1
                obs.count("service.quarantined")
                return {
                    **base,
                    "status": "quarantined",
                    "verified": False,
                    "violations": violations,
                }
            self.stats.completed += 1
            obs.count("service.completed")
            return {
                **base,
                "status": "ok",
                "verified": bool(self.config.verify),
                "layouts": {
                    name: list(layout.order)
                    for name, layout in layouts.layouts.items()
                },
                "costs": dict(report.costs),
                "penalty": {
                    "total": penalty.total,
                    "redirect": penalty.breakdown.redirect,
                    "mispredict": penalty.breakdown.mispredict,
                    "jump": penalty.breakdown.jump,
                },
                "bounds": bounds,
            }

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-friendly view of service state (the ``/counters``
        endpoint and the bench sweep read this)."""
        return {
            "gate": self.gate.stats(),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "quarantined": self.stats.quarantined,
            "breaker_fallbacks": self.stats.breaker_fallbacks,
            "deduped": self.stats.deduped,
            "recovered": self.stats.recovered,
            "journal": self.journal.snapshot() if self.journal else None,
            "recovery": self._recovery,
            "recovering": self._recovering,
            "drained": self._drained,
            "counters": {
                name: value
                for name, value in self._tracer.counters(
                    stable_only=True
                ).items()
                if name.startswith("service.")
            },
        }
