"""The alignment service core: request lifecycle and the worker loop.

One :class:`AlignmentService` owns a bounded
:class:`~repro.service.admission.AdmissionGate`, a single worker thread
that drains it, per-aligner
:class:`~repro.service.breaker.CircuitBreaker`\\ s, and the verification
gate every response passes before it is served.  The HTTP tier
(:mod:`repro.service.http_server`) and tests talk to the same object;
nothing below this layer knows it is inside a server.

Request lifecycle (see ``docs/architecture.md``)::

    submit ─▶ admission (shed/503) ─▶ queue ─▶ worker:
        parse → compile → profile → breaker route → deadline plan
        → align (supervised pipeline) → breaker record → evaluate
        → verify → respond (or quarantine)

Thread/context notes — the two stdlib traps this layer exists to absorb:

* ``ContextVar`` state is **per-thread**: the HTTP handler threads and
  the worker thread would each mint a fresh sink-less tracer and a
  fault-plan-free context.  Every entry point therefore installs the
  service's captured tracer (:func:`repro.obs.install_tracer`), and each
  request carries a ``contextvars.copy_context()`` snapshot from its
  submitting thread, which the worker re-enters — so a caller's
  ``inject_faults`` plan and trace scope follow the request across the
  thread hop.
* The worker thread is the only consumer of the process pool, so
  pipeline state (pool, caches, store) needs no additional locking.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro import faults, obs
from repro.budget import RetryPolicy
from repro.cfg import CFGError, validate_program
from repro.core import align_program, evaluate_program, lower_bound_program
from repro.core.align import AlignmentReport
from repro.errors import (
    ServiceUnavailableError,
    UnknownNameError,
    UsageError,
)
from repro.lang import compile_source, run_and_profile
from repro.machine.models import get_model
from repro.pipeline.executor import shutdown_pool
from repro.pipeline.registry import normalize_method
from repro.profiles.edge_profile import ProgramProfile
from repro.service.admission import AdmissionGate
from repro.service.breaker import (
    ROUTE_FALLBACK,
    ROUTE_PROBE,
    CircuitBreaker,
)
from repro.service.deadline import plan_deadline
from repro.service.verify import verify_layouts
from repro.tsp.solve import get_effort

#: Drain sentinel; anything unique works, ``None`` would be ambiguous.
_SENTINEL = object()


def fallback_method(method: str) -> str:
    """The aligner an open breaker routes to.

    The greedy aligner is the designated fallback (cheap, never touches
    the executor-heavy TSP path); when greedy *itself* is the broken
    aligner, the only rung left is the identity layout.
    """
    return "original" if method in ("greedy", "original") else "greedy"


@dataclass(frozen=True)
class AlignmentRequest:
    """One parsed, validated alignment request."""

    source: str
    method: str = "tsp"
    model: str = "alpha21164"
    effort: str = "default"
    seed: int = 0
    inputs: tuple[int, ...] = ()
    #: Serialized training profile (JSON text); ``None`` = profile by
    #: running the program on ``inputs``.
    profile_json: str | None = None
    deadline_ms: float | None = None
    #: Also certify Held–Karp floors and include them in verification.
    bound: bool = False


def parse_request(
    payload, *, default_deadline_ms: float | None = None
) -> AlignmentRequest:
    """Validate a JSON request body into an :class:`AlignmentRequest`.

    Every malformation raises :class:`~repro.errors.UsageError` (the
    400-equivalent) naming the offending field — bad input is the
    client's problem and must never read as a server failure.
    """
    if not isinstance(payload, dict):
        raise UsageError("request body must be a JSON object")
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise UsageError("request needs a non-empty 'source' program")
    try:
        method = normalize_method(str(payload.get("method", "tsp")))
    except UnknownNameError as exc:
        raise UsageError(f"unknown method: {exc}") from None
    try:
        model = get_model(str(payload.get("model", "alpha21164"))).name
        effort = get_effort(str(payload.get("effort", "default"))).name
    except UnknownNameError as exc:
        raise UsageError(str(exc)) from None
    try:
        seed = int(payload.get("seed", 0))
    except (TypeError, ValueError):
        raise UsageError(
            f"'seed' must be an integer, got {payload.get('seed')!r}"
        ) from None
    raw_inputs = payload.get("inputs", [])
    if not isinstance(raw_inputs, (list, tuple)):
        raise UsageError("'inputs' must be a list of integers")
    try:
        inputs = tuple(int(x) for x in raw_inputs)
    except (TypeError, ValueError):
        raise UsageError("'inputs' must be a list of integers") from None
    profile_json = payload.get("profile")
    if profile_json is not None and not isinstance(profile_json, str):
        raise UsageError(
            "'profile' must be the profile JSON as a string "
            "(ProgramProfile.to_json output)"
        )
    deadline = payload.get("deadline_ms", default_deadline_ms)
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise UsageError(
                f"'deadline_ms' must be a number, got {deadline!r}"
            ) from None
        if deadline <= 0:
            raise UsageError("'deadline_ms' must be positive")
    return AlignmentRequest(
        source=source,
        method=method,
        model=model,
        effort=effort,
        seed=seed,
        inputs=inputs,
        profile_json=profile_json,
        deadline_ms=deadline,
        bound=bool(payload.get("bound", False)),
    )


@dataclass
class ServiceConfig:
    """Operator knobs for one service instance."""

    #: Bounded queue capacity; requests beyond it are shed (429).
    capacity: int = 16
    #: Worker processes per align pass (``None`` = ``$REPRO_JOBS``).
    jobs: int | None = None
    #: Supervision policy (``None`` = env defaults per align call).
    policy: RetryPolicy | None = None
    #: Deadline applied to requests that do not carry their own.
    default_deadline_ms: float | None = None
    #: Consecutive infrastructure failures that open a breaker.
    breaker_threshold: int = 3
    #: Fallback-served requests before an open breaker probes.
    breaker_cooldown: int = 5
    #: Run the layout verifier on every response.
    verify: bool = True


class PendingRequest:
    """Caller-side handle for one admitted request."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._response: dict | None = None
        self._error: BaseException | None = None

    def resolve(self, response: dict) -> None:
        self._response = response
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict:
        """Block for the response; re-raises the worker's typed failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} did not complete in {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


@dataclass
class ServiceStats:
    """Mutable response accounting (admission stats live on the gate)."""

    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    breaker_fallbacks: int = 0
    latencies_ms: list[float] = field(default_factory=list)


class AlignmentService:
    """The long-running alignment service (transport-agnostic core)."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        # Captured in the constructing thread — the one where the CLI
        # started the trace — and installed into every service thread.
        self._tracer = obs.tracer()
        self.gate = AdmissionGate(self.config.capacity)
        self.stats = ServiceStats()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._drained = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AlignmentService":
        if self._worker is not None:
            return self
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-worker", daemon=True
        )
        self._worker.start()
        return self

    @property
    def healthy(self) -> bool:
        """The worker loop is alive (or exited via a clean drain)."""
        if self._drained:
            return True
        return self._worker is not None and self._worker.is_alive()

    @property
    def ready(self) -> bool:
        """Admitting new work: started, not draining, not drained."""
        return (
            self._worker is not None
            and self._worker.is_alive()
            and not self.gate.draining
            and not self._drained
        )

    def begin_drain(self) -> None:
        """Stop admitting (idempotent, fast, signal-handler safe)."""
        self.gate.begin_drain()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful drain: stop admitting, finish every admitted request,
        stop the worker, release the process pool.  Returns True when the
        worker exited within ``timeout``."""
        obs.install_tracer(self._tracer)
        if self._drained:
            return True
        self.gate.begin_drain()
        if self._worker is None:
            self._drained = True
            return True
        self.gate.put_control(_SENTINEL)
        self._worker.join(timeout)
        finished = not self._worker.is_alive()
        if finished:
            self._drained = True
            shutdown_pool()
            obs.count("service.drained")
        return finished

    # -- submission ----------------------------------------------------------

    def submit(self, payload) -> PendingRequest:
        """Admit one request; raises typed admission failures.

        The returned handle resolves when the worker finishes the
        request (or fails it with a typed error).
        """
        obs.install_tracer(self._tracer)
        if self._worker is None or not self._worker.is_alive():
            raise ServiceUnavailableError("service worker is not running")
        pending = PendingRequest(next(self._ids))
        ctx = contextvars.copy_context()
        self.gate.submit((pending, payload, ctx))
        return pending

    def align(self, payload, timeout: float | None = None) -> dict:
        """Submit and wait — the convenience path for tests and the CLI."""
        return self.submit(payload).result(timeout)

    # -- the worker ----------------------------------------------------------

    def breaker(self, method: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = self._breakers[method] = CircuitBreaker(
                    method,
                    failure_threshold=self.config.breaker_threshold,
                    cooldown_requests=self.config.breaker_cooldown,
                )
            return breaker

    def _worker_loop(self) -> None:
        obs.install_tracer(self._tracer)
        while True:
            item = self.gate.next_item()
            if item is _SENTINEL:
                return
            pending, payload, ctx = item
            try:
                # Re-enter the submitter's context so its fault plan and
                # trace scope apply to the work done on its behalf.
                response = ctx.run(self._process, pending, payload)
            except BaseException as exc:  # noqa: BLE001 — the loop survives
                # everything; the error re-raises in the caller's thread.
                self.stats.failed += 1
                obs.count("service.failed")
                pending.fail(exc)
            else:
                pending.resolve(response)

    def _process(self, pending: PendingRequest, payload) -> dict:
        obs.install_tracer(self._tracer)
        start = time.monotonic()
        with obs.span("service:request", id=pending.request_id) as sp:
            request = parse_request(
                payload, default_deadline_ms=self.config.default_deadline_ms
            )
            sp["method"] = request.method

            module = compile_source(request.source)
            program = module.program
            try:
                validate_program(program)
            except CFGError as exc:
                raise UsageError(
                    f"invalid control-flow graph: {exc}"
                ) from None
            model = get_model(request.model)
            if request.profile_json is not None:
                profile = ProgramProfile.from_json(request.profile_json)
                profile.check_against(program)
            else:
                _, profile = run_and_profile(module, list(request.inputs))

            breaker = self.breaker(request.method)
            route = breaker.route()
            if route == ROUTE_PROBE and faults.breaker_probe_fails():
                breaker.record(route, failed=True)
                route = ROUTE_FALLBACK
            method_used = (
                fallback_method(request.method)
                if route == ROUTE_FALLBACK
                else request.method
            )
            sp["route"] = route

            plan = plan_deadline(
                request.deadline_ms,
                len(program.procedures),
                self.config.policy,
            )
            report = AlignmentReport()
            layouts = align_program(
                program,
                profile,
                method=method_used,
                model=model,
                effort=request.effort,
                seed=request.seed,
                budget=plan.budget,
                jobs=self.config.jobs,
                policy=plan.policy,
                report=report,
            )
            infrastructure_failed = (
                report.worker_crashes > 0
                or report.timeouts > 0
                or bool(report.quarantined)
            )
            breaker.record(route, failed=infrastructure_failed)

            penalty = evaluate_program(program, layouts, profile, model)
            bounds = None
            if request.bound:
                bounds = lower_bound_program(
                    program,
                    profile,
                    model=model,
                    upper_bounds=dict(report.costs),
                    budget=plan.budget,
                    jobs=self.config.jobs,
                    policy=plan.policy,
                ).per_procedure

            degraded = dict(report.degraded)
            if route == ROUTE_FALLBACK:
                self.stats.breaker_fallbacks += 1
                for proc in program:
                    degraded.setdefault(proc.name, "breaker_fallback")

            violations: list[str] = []
            if self.config.verify:
                violations = verify_layouts(
                    program,
                    layouts,
                    profile,
                    model,
                    costs=dict(report.costs),
                    bounds=bounds,
                )
            elapsed_ms = (time.monotonic() - start) * 1000.0
            sp["degraded"] = len(degraded)
            sp["violations"] = len(violations)
            self.stats.latencies_ms.append(elapsed_ms)

            base = {
                "id": pending.request_id,
                "method": request.method,
                "served_by": method_used,
                "breaker": breaker.snapshot(),
                "degraded": degraded,
                "quarantined": dict(report.quarantined),
                "retried": report.retried,
                "worker_crashes": report.worker_crashes,
                "timeouts": report.timeouts,
                "deadline_ms": request.deadline_ms,
                "elapsed_ms": round(elapsed_ms, 3),
            }
            if violations:
                # Never serve a layout that failed verification: the
                # response carries the evidence instead of the layouts.
                self.stats.quarantined += 1
                obs.count("service.quarantined")
                return {
                    **base,
                    "status": "quarantined",
                    "verified": False,
                    "violations": violations,
                }
            self.stats.completed += 1
            obs.count("service.completed")
            return {
                **base,
                "status": "ok",
                "verified": bool(self.config.verify),
                "layouts": {
                    name: list(layout.order)
                    for name, layout in layouts.layouts.items()
                },
                "costs": dict(report.costs),
                "penalty": {
                    "total": penalty.total,
                    "redirect": penalty.breakdown.redirect,
                    "mispredict": penalty.breakdown.mispredict,
                    "jump": penalty.breakdown.jump,
                },
                "bounds": bounds,
            }

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-friendly view of service state (the ``/counters``
        endpoint and the bench sweep read this)."""
        return {
            "gate": self.gate.stats(),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "quarantined": self.stats.quarantined,
            "breaker_fallbacks": self.stats.breaker_fallbacks,
            "drained": self._drained,
            "counters": {
                name: value
                for name, value in self._tracer.counters(
                    stable_only=True
                ).items()
                if name.startswith("service.")
            },
        }
