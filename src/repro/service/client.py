"""Minimal stdlib HTTP client for the alignment service.

Used by ``repro request``, the CI smoke job, and the bench sweep.  The
primitive layer is deliberately dumb: JSON in, ``(status, payload)``
out, no retries.  On top of it, :class:`RetryPolicy` +
:func:`request_with_retry` give callers the one retry loop worth
standardizing: deterministic capped exponential backoff over the
service's *retryable* answers (429 shed, 503 drain/replay, transport
failures — exactly the states a restarting server passes through), with
a typed give-up.  A ``Retry-After`` header on a 429/503 — the admission
gate's own drain estimate — replaces the schedule's next delay, still
capped at ``max_delay_s``.  Retrying is safe because the server coalesces
duplicates by content-addressed idempotency key: a retried payload maps
to the same key, so the worst case is a journal/cache hit, never double
work.
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime

from repro.errors import ServiceRetryExhaustedError

#: HTTP statuses a retry can fix: shed (429) and not-ready (503).  Any
#: other status is the service's final, typed answer.
RETRYABLE_STATUSES = frozenset({429, 503})


def _parse_retry_after(header) -> float | None:
    """A ``Retry-After`` header as non-negative seconds, or ``None``.

    Accepts RFC 9110's two forms — delay-seconds and an HTTP-date (the
    delta to now, floored at zero for dates already past) — and treats
    everything else (garbage text, NaN/inf, negative numbers, non-string
    junk) as absent.  Never raises: a malformed header from a proxy must
    not kill a retry loop mid-flight.
    """
    if header is None or not isinstance(header, str):
        return None
    text = header.strip()
    if not text:
        return None
    try:
        hint = float(text)
    except (ValueError, OverflowError):
        hint = None
    if hint is not None:
        return hint if math.isfinite(hint) and hint >= 0 else None
    try:
        when = parsedate_to_datetime(text)
    except (ValueError, TypeError, IndexError, OverflowError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    try:
        delta = (when - datetime.now(timezone.utc)).total_seconds()
    except (OverflowError, OSError):
        return None
    return max(0.0, delta)


def _decode(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except ValueError:
        return {"error": body.decode("utf-8", errors="replace")}
    return payload if isinstance(payload, dict) else {"error": repr(payload)}


def post_json_full(
    url: str, payload: dict, *, timeout: float = 600.0
) -> tuple[int, dict, dict]:
    """POST ``payload`` as JSON; returns ``(status, body, headers)``.

    HTTP error statuses (4xx/5xx) return normally — the status code *is*
    the service's typed answer.  Transport failures (connection refused,
    reset) raise ``urllib.error.URLError``/``OSError``.  Header names in
    the returned dict are lower-cased.
    """
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                _decode(response.read()),
                {k.lower(): v for k, v in response.headers.items()},
            )
    except urllib.error.HTTPError as exc:
        return (
            exc.code,
            _decode(exc.read()),
            {k.lower(): v for k, v in (exc.headers or {}).items()},
        )


def post_json(
    url: str, payload: dict, *, timeout: float = 600.0
) -> tuple[int, dict]:
    """POST ``payload`` as JSON; returns ``(status, decoded body)``."""
    status, body, _headers = post_json_full(url, payload, timeout=timeout)
    return status, body


def get_json(url: str, *, timeout: float = 10.0) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, _decode(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, _decode(exc.read())


def request_alignment(
    base_url: str, payload: dict, *, timeout: float = 600.0
) -> tuple[int, dict]:
    """POST one alignment request to ``base_url``'s ``/align`` endpoint."""
    return post_json(
        base_url.rstrip("/") + "/align", payload, timeout=timeout
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff for alignment requests.

    No jitter by design: the repo's reproducibility bar extends to its
    failure handling, so two identical runs retry at identical offsets.
    Delays follow ``base_delay_s * multiplier**attempt`` capped at
    ``max_delay_s``; ``attempts`` counts tries, not retries (``attempts=1``
    means no retry at all).
    """

    attempts: int = 5
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")

    def delay_s(self, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (1-based; attempt 0 is
        immediate)."""
        if attempt <= 0:
            return 0.0
        return min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )

    def honor_retry_after(self, header: str | None, attempt: int) -> float:
        """Backoff before ``attempt``, honoring a server ``Retry-After``.

        RFC 9110 allows both forms of the header — delay-seconds and an
        HTTP-date — and a retry loop must survive *any* spelling a proxy
        or a confused server emits.  A usable hint (a finite non-negative
        number, or a date that parses to a non-negative delta from now)
        replaces the schedule's delay but stays capped at ``max_delay_s``
        — a hostile server must never stretch the deterministic schedule.
        Anything else — garbage text, NaN/inf, negative values, dates in
        the past, non-string junk — falls back to :meth:`delay_s`; this
        method never raises mid-retry-loop.
        """
        hint = _parse_retry_after(header)
        if hint is not None:
            return min(hint, self.max_delay_s)
        return self.delay_s(attempt)


def request_with_retry(
    base_url: str,
    payload: dict,
    *,
    policy: RetryPolicy | None = None,
    timeout: float = 600.0,
    sleep=time.sleep,
) -> tuple[int, dict]:
    """POST ``payload`` to ``/align``, retrying retryable outcomes.

    Retries 429/503 answers and transport failures (connection refused or
    reset — what a client sees across a server restart); the same payload
    is resent verbatim, so the server derives the same idempotency key
    and a request completed before the crash is answered from the journal
    instead of re-solved.  Returns the first non-retryable
    ``(status, body)``; raises
    :class:`~repro.errors.ServiceRetryExhaustedError` once the policy's
    attempts are spent.
    """
    policy = policy or RetryPolicy()
    url = base_url.rstrip("/") + "/align"
    last_status: int | None = None
    last_error: BaseException | None = None
    retry_after: str | None = None
    for attempt in range(policy.attempts):
        if attempt:
            sleep(policy.honor_retry_after(retry_after, attempt))
        try:
            status, body, headers = post_json_full(
                url, payload, timeout=timeout
            )
        except (urllib.error.URLError, OSError) as exc:
            last_status, last_error, retry_after = None, exc, None
            continue
        if status not in RETRYABLE_STATUSES:
            return status, body
        last_status, last_error = status, None
        retry_after = headers.get("retry-after")
    detail = (
        f"status {last_status}" if last_status is not None
        else f"transport failure ({last_error})"
    )
    raise ServiceRetryExhaustedError(
        f"request abandoned after {policy.attempts} attempt(s); "
        f"last outcome: {detail}",
        attempts=policy.attempts,
        last_status=last_status,
        last_error=last_error,
    )


def wait_ready(
    base_url: str, *, attempts: int = 100, delay_s: float = 0.1
) -> bool:
    """Poll ``/readyz`` until the service admits work (or give up)."""
    url = base_url.rstrip("/") + "/readyz"
    for _ in range(attempts):
        try:
            status, _payload = get_json(url, timeout=2.0)
        except (urllib.error.URLError, OSError):
            status = 0
        if status == 200:
            return True
        time.sleep(delay_s)
    return False
