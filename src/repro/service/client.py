"""Minimal stdlib HTTP client for the alignment service.

Used by ``repro request``, the CI smoke job, and the bench sweep.  Kept
deliberately dumb: JSON in, ``(status, payload)`` out, no retries — the
service's 429 contract means back-off policy belongs to the caller.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


def _decode(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except ValueError:
        return {"error": body.decode("utf-8", errors="replace")}
    return payload if isinstance(payload, dict) else {"error": repr(payload)}


def post_json(
    url: str, payload: dict, *, timeout: float = 600.0
) -> tuple[int, dict]:
    """POST ``payload`` as JSON; returns ``(status, decoded body)``.

    HTTP error statuses (4xx/5xx) return normally — the status code *is*
    the service's typed answer.  Transport failures (connection refused,
    reset) raise ``urllib.error.URLError``/``OSError``.
    """
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, _decode(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, _decode(exc.read())


def get_json(url: str, *, timeout: float = 10.0) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, _decode(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, _decode(exc.read())


def request_alignment(
    base_url: str, payload: dict, *, timeout: float = 600.0
) -> tuple[int, dict]:
    """POST one alignment request to ``base_url``'s ``/align`` endpoint."""
    return post_json(
        base_url.rstrip("/") + "/align", payload, timeout=timeout
    )


def wait_ready(
    base_url: str, *, attempts: int = 100, delay_s: float = 0.1
) -> bool:
    """Poll ``/readyz`` until the service admits work (or give up)."""
    url = base_url.rstrip("/") + "/readyz"
    for _ in range(attempts):
        try:
            status, _payload = get_json(url, timeout=2.0)
        except (urllib.error.URLError, OSError):
            status = 0
        if status == 200:
            return True
        time.sleep(delay_s)
    return False
