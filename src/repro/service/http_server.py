"""The HTTP front end: stdlib server, typed status mapping, drain on SIGTERM.

Endpoints::

    GET  /healthz    200 while the worker loop lives (green through drain)
    GET  /readyz     200 while admitting; 503 during journal replay
                     (``recovering: true``) and once drain begins; the
                     body also reports ``durability`` ("on"/"off"/null)
    GET  /counters   service snapshot (admission, breakers, journal,
                     recovery, counters)
    POST /align      one alignment request (JSON body) → JSON response

Status mapping — the service's error taxonomy *is* the status code::

    ServiceOverloadError            429  (shed: back off and retry)
    ServiceUnavailableError         503  (draining / worker down)
    ShardFailoverError              503  (no live shard; tier healing)
    UsageError / LangError /
      ProfileValidationError /
      ProfileMismatchError          400  (the request is wrong)
    any other ReproError            500  (ours; typed, but a failure)

429/503 responses carry a ``Retry-After`` header: the admission gate's
own drain estimate when the shed error provides one, else a 1-second
floor.  :class:`~repro.service.client.RetryPolicy` honors it under its
deterministic cap.

The same server fronts either one :class:`AlignmentService` or a
:class:`~repro.service.shard.ShardSupervisor` — both expose
``submit``/``healthy``/``ready``/``recovering``/``journal``/
``snapshot``/``begin_drain``/``drain``, which is all this module uses.

Graceful drain: SIGTERM (and SIGINT) stops admission *first* — new
requests get 503 while in-flight handlers keep their connections — then
the accept loop shuts down, queued work finishes, pending handlers
respond, and the process exits 0.  ``daemon_threads`` is off so no
handler is killed mid-response.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    ProfileMismatchError,
    ReproError,
    ServiceOverloadError,
    ServiceUnavailableError,
    ShardFailoverError,
    UsageError,
)
from repro.lang import LangError
from repro.service.core import AlignmentService

#: Ceiling on how long one POST handler waits for its result.  Generous —
#: a request's own deadline degrades it long before this; the ceiling
#: only bounds the damage of a wedged worker.
DEFAULT_REQUEST_TIMEOUT_S = 600.0


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, ServiceOverloadError):
        return 429
    if isinstance(exc, (ServiceUnavailableError, ShardFailoverError)):
        return 503
    if isinstance(exc, (UsageError, LangError, ProfileMismatchError)):
        # ProfileValidationError subclasses ProfileMismatchError: both a
        # malformed profile and a mismatched one are the client's input.
        return 400
    return 500


def _retry_after_header(exc: BaseException | None) -> str:
    """``Retry-After`` value for a 429/503: the gate's own drain estimate
    when the shed error carries one, else a 1-second floor (the header is
    integer seconds, and "0" invites a busy-loop)."""
    hint = getattr(exc, "retry_after_s", None)
    if not isinstance(hint, (int, float)) or hint <= 0:
        return "1"
    return str(max(1, int(round(hint))))


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """One request per connection (HTTP/1.0): simple and drain-friendly."""

    server: "AlignmentHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the trace/counters carry the signal; stderr stays clean

    def _send(
        self, code: int, payload: dict, *, retry_after: str | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is None and code in (429, 503):
            retry_after = _retry_after_header(None)
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:
            pass  # client went away; nothing to salvage

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        service = self.server.service
        if self.path == "/healthz":
            if service.healthy:
                self._send(200, {"status": "ok"})
            else:
                self._send(500, {"status": "worker dead"})
        elif self.path == "/readyz":
            journal = service.journal
            body = {
                "ready": service.ready,
                "recovering": service.recovering,
                # null = no journal configured; "off" = a disk fault
                # flipped the journal into degraded-durability mode.
                "durability": (
                    None if journal is None
                    else ("off" if journal.degraded else "on")
                ),
            }
            self._send(200 if service.ready else 503, body)
        elif self.path == "/counters":
            self._send(200, service.snapshot())
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/align":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        try:
            payload = json.loads(self.rfile.read(length) or b"")
        except ValueError:
            self._send(
                400, {"status": "error", "error": "request body is not JSON"}
            )
            return
        service = self.server.service
        try:
            pending = service.submit(payload)
            response = pending.result(self.server.request_timeout_s)
        except TimeoutError as exc:
            self._send(500, {"status": "error", "error": str(exc)})
        except BaseException as exc:  # noqa: BLE001 — typed mapping below
            status = _status_for(exc)
            self._send(
                status,
                {
                    "status": "error",
                    "error": str(exc),
                    "type": type(exc).__name__,
                },
                retry_after=(
                    _retry_after_header(exc)
                    if status in (429, 503) else None
                ),
            )
        else:
            self._send(200, response)


class AlignmentHTTPServer(ThreadingHTTPServer):
    """Threaded accept loop over one :class:`AlignmentService`."""

    # In-flight handlers must finish their responses through a drain.
    daemon_threads = False
    block_on_close = True
    # The admission gate is the intended back-pressure mechanism; the
    # listen backlog must be deep enough that a burst reaches it and is
    # shed with a typed 429 instead of a kernel connection reset.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: "AlignmentService | object",
        *,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    ):
        # ``service`` may also be a ShardSupervisor — anything exposing
        # the submit/healthy/ready/recovering/journal/snapshot surface.
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.request_timeout_s = request_timeout_s


def serve(
    service: "AlignmentService | object",
    *,
    host: str = "127.0.0.1",
    port: int = 8421,
    install_signals: bool = True,
    announce=print,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the process exit status: 0 after a clean drain (every
    admitted request completed), 1 if the worker failed to drain.
    ``port=0`` binds an ephemeral port; the announce line (stdout by
    default) carries the real one, which is how the smoke test finds it.
    """
    server = AlignmentHTTPServer((host, port), service)
    service.start()
    draining = threading.Event()

    def trigger_drain(signum=None, frame=None) -> None:
        if draining.is_set():
            return
        draining.set()
        # Order matters: close admission first so late requests get 503
        # instead of queueing behind the drain, then stop the accept loop
        # from a helper thread (shutdown() deadlocks the serving thread).
        service.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, trigger_drain)
        signal.signal(signal.SIGINT, trigger_drain)

    bound_host, bound_port = server.server_address[:2]
    config = service.config
    capacity = getattr(config, "capacity", None)
    if capacity is None:
        # A shard tier: per-shard capacity times the shard count.
        shards = getattr(config, "shards", 1)
        capacity = f"{shards}x{config.service.capacity}"
    announce(
        f"repro service listening on http://{bound_host}:{bound_port} "
        f"(capacity {capacity})",
    )
    try:
        server.serve_forever()
    finally:
        service.begin_drain()
        # Finish every admitted request before closing: pending handler
        # threads are blocked on their results and server_close() joins
        # them, so the drain must complete first or nobody ever answers.
        drained = service.drain()
        server.server_close()
    if not drained:
        print("error: service worker failed to drain", file=sys.stderr)
        return 1
    return 0
