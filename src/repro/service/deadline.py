"""Per-request deadlines → the pipeline's existing budget machinery.

A service deadline is a *latency* promise, and the pipeline already
knows how to trade quality for latency: per-procedure
:class:`~repro.budget.Budget` countdowns degrade the TSP aligner down
its ladder, and the executor's ``task_timeout_ms`` reclaims attempts
that stop responding entirely.  This module is just the conversion —
no new enforcement mechanism, so a deadline can never produce a failure
mode the batch pipeline has not already survived.

The split is conservative:

* ``SOLVE_FRACTION`` of the deadline goes to solving; the rest is
  headroom for compilation, evaluation, and verification.
* The solve share divides across procedures with
  :meth:`Budget.split` — shares never overlap, so the sum of the
  parts respects the whole even run back to back.
* The executor's outer guard is ``TIMEOUT_GRACE ×`` the cooperative
  share: generous enough that the ladder (which checks its own timer)
  almost always degrades first, tight enough that a hung worker cannot
  eat the whole deadline.
"""

from __future__ import annotations

import dataclasses

from repro.budget import DEFAULT_RETRY_POLICY, Budget, RetryPolicy

#: Fraction of the request deadline handed to the solvers.
SOLVE_FRACTION = 0.8
#: Floor on any per-procedure share — a share below this degrades every
#: solve to the cheapest rung, which is the correct behaviour for an
#: absurd deadline, but zero would also starve the fallback rungs' own
#: bookkeeping.
MIN_SHARE_MS = 5.0
#: Outer (executor) deadline as a multiple of the cooperative share.
TIMEOUT_GRACE = 4.0


@dataclasses.dataclass(frozen=True)
class DeadlinePlan:
    """How one request's deadline maps onto pipeline knobs."""

    deadline_ms: float | None
    #: Per-procedure cooperative solver budget (``None`` = unlimited).
    budget: Budget | None
    #: Executor policy with the outer per-attempt guard applied.
    policy: RetryPolicy | None
    #: The cooperative share each procedure received, for diagnostics.
    share_ms: float | None = None


def plan_deadline(
    deadline_ms: float | None,
    procedures: int,
    policy: RetryPolicy | None = None,
) -> DeadlinePlan:
    """Derive the per-procedure budget and retry policy for one request.

    ``deadline_ms=None`` means no deadline: the caller's policy passes
    through untouched.  Otherwise the solve fraction of the deadline is
    split across ``procedures`` and the policy's ``task_timeout_ms`` is
    tightened to the graced share (never loosened — an operator-set
    tighter guard wins).
    """
    if deadline_ms is None:
        return DeadlinePlan(None, None, policy)
    if deadline_ms <= 0:
        raise ValueError("deadline_ms must be positive")
    n = max(1, procedures)
    share = max(
        MIN_SHARE_MS,
        Budget(wall_ms=deadline_ms * SOLVE_FRACTION).split(n).wall_ms,
    )
    budget = Budget(wall_ms=share)
    outer = share * TIMEOUT_GRACE
    base = policy if policy is not None else DEFAULT_RETRY_POLICY
    if base.task_timeout_ms is None or outer < base.task_timeout_ms:
        base = dataclasses.replace(base, task_timeout_ms=outer)
    return DeadlinePlan(deadline_ms, budget, base, share_ms=share)
