"""Fault-injection harness.

Lets tests (and chaos-style experiments) make the pipeline's failure paths
*happen on demand*: solvers time out, degradation rungs break, VM runs
exceed their step limits, checkpoint writes corrupt on the Nth call,
workers crash mid-task, store entries tear on disk.  The production code
consults this module at the same points where the real failures occur, so
a test that survives injected faults exercises exactly the code that must
survive real ones.

Usage::

    from repro.faults import inject_faults

    with inject_faults(solver_timeout=True) as plan:
        case = run_case("com", "in")      # every tsp solve degrades
    assert plan.trips("solver") > 0

Site trigger values are ``False``/``None`` (never fire), ``True`` (fire on
every call), an integer ``n`` (fire on the n-th call only, 1-based —
"corrupt the 3rd checkpoint write"), or a string ``"%k"`` (fire on every
k-th call — "crash every 5th worker dispatch").  Plans nest; the innermost
context wins.  State lives in a :class:`contextvars.ContextVar`, so plans
stay scoped under threads and async tests.

Sites fall into two groups:

* **pipeline sites** (``solver_timeout`` … ``task_timeout``) sabotage the
  alignment computation itself.  The artifact cache and store refuse to
  *serve* artifacts while any of these is armed, so injected failures
  reach the code under test instead of being papered over by a clean
  cached result.
* **store sites** (``store_corrupt``, ``store_io_error``) sabotage the
  on-disk artifact store.  A plan arming *only* store sites leaves the
  store live — it has to, for the injected corruption to reach it.
* **service sites** (``service_overload``, ``breaker_probe_fail``,
  ``journal_torn_tail``, ``journal_io_error``) sabotage the alignment
  service's admission gate, circuit-breaker probes, and write-ahead
  request journal.  Like store sites they leave caches live: the service
  must absorb them without changing what an admitted request computes.

Chaos mode: setting ``REPRO_CHAOS`` (e.g.
``REPRO_CHAOS="worker_crash=%7,store_corrupt=1"``) arms a process-wide
plan consulted *only* by the supervised executor, the on-disk store, and
the alignment service — the subsystems whose whole contract is that
sabotage is invisible in the output.  CI runs the full test suite this
way.
"""

from __future__ import annotations

import contextlib
import os
from contextvars import ContextVar
from dataclasses import dataclass, field, fields

from repro.errors import (
    ArtifactStoreError,
    DegradationError,
    JournalError,
    SolverBudgetExceeded,
    TaskTimeoutError,
)

Trigger = "bool | int | str | None"

CHAOS_ENV = "REPRO_CHAOS"

#: Sites that sabotage the on-disk artifact store rather than the
#: alignment computation.  Plans arming only these keep caches enabled.
STORE_SITES = frozenset({"store_corrupt", "store_io_error"})

#: Sites that sabotage the serving layer (admission, breaker probes, the
#: write-ahead request journal) rather than the alignment computation.
#: Like store sites, they leave the caches live — the service must absorb
#: them without changing what an admitted request computes.
SERVICE_SITES = frozenset({
    "service_overload",
    "breaker_probe_fail",
    "journal_torn_tail",
    "journal_io_error",
    "shard_death",
    "shard_wedge",
})


@dataclass
class FaultPlan:
    """One set of armed faults plus per-site call/trip counters."""

    #: Heuristic DTSP solves raise :class:`SolverBudgetExceeded`.
    solver_timeout: bool | int | str | None = False
    #: The construction-tour fallback rung raises :class:`DegradationError`.
    construction_failure: bool | int | str | None = False
    #: The greedy-alignment fallback rung raises :class:`DegradationError`.
    greedy_failure: bool | int | str | None = False
    #: Lower-bound computations raise :class:`SolverBudgetExceeded`.
    bound_timeout: bool | int | str | None = False
    #: Override the VM's ``max_blocks`` so runs trip the runaway guard.
    vm_max_blocks: int | None = None
    #: Corrupt the n-th checkpoint line written (``True`` = every line).
    checkpoint_corrupt_on: bool | int | str | None = False
    #: The n-th supervised task dispatch dies: a real ``os._exit`` in pool
    #: workers (breaking the pool), :class:`WorkerCrashError` in-process.
    worker_crash: bool | int | str | None = False
    #: The n-th supervised task dispatch times out before running.
    task_timeout: bool | int | str | None = False
    #: Torn write: the n-th store entry written is truncated on disk.
    store_corrupt: bool | int | str | None = False
    #: The n-th store read/write raises an I/O error inside the store.
    store_io_error: bool | int | str | None = False
    #: The n-th admission decision sheds the request even with queue room.
    service_overload: bool | int | str | None = False
    #: The n-th half-open breaker probe fails, re-opening the breaker.
    breaker_probe_fail: bool | int | str | None = False
    #: Torn write: the n-th journal record appended is truncated on disk,
    #: as a SIGKILL/power loss mid-append would leave it.
    journal_torn_tail: bool | int | str | None = False
    #: The n-th journal append raises an I/O error; the journal must
    #: absorb it into degraded-durability mode, never kill the server.
    journal_io_error: bool | int | str | None = False
    #: The n-th request routed by the shard supervisor kills its target
    #: shard right after the hand-off — a worker loop dying mid-queue,
    #: as SIGKILL on a shard process would.  The supervisor's health
    #: probes must detect it, restart the shard with journal recovery,
    #: and fail over the stranded in-flight work.
    shard_death: bool | int | str | None = False
    #: The n-th routed request wedges its target shard: the worker loop
    #: stops making progress without dying, the straggler shape hedged
    #: requests and the wedge detector exist for.
    shard_wedge: bool | int | str | None = False

    _calls: dict[str, int] = field(default_factory=dict)
    _trips: dict[str, int] = field(default_factory=dict)

    def calls(self, site: str) -> int:
        return self._calls.get(site, 0)

    def trips(self, site: str) -> int:
        return self._trips.get(site, 0)

    def fires(self, site: str, trigger: bool | int | str | None) -> bool:
        """Count one call at ``site`` and decide whether the fault fires."""
        call = self._calls.get(site, 0) + 1
        self._calls[site] = call
        fired = trigger is True or (
            isinstance(trigger, int) and not isinstance(trigger, bool)
            and call == trigger
        ) or (
            isinstance(trigger, str) and trigger.startswith("%")
            and trigger[1:].isdigit() and int(trigger[1:]) > 0
            and call % int(trigger[1:]) == 0
        )
        if fired:
            self._trips[site] = self._trips.get(site, 0) + 1
        return fired

    def arms_pipeline_sites(self) -> bool:
        """True when any non-store site is armed — the condition under
        which the artifact cache and store must not serve artifacts."""
        for f in fields(self):
            if (f.name.startswith("_") or f.name in STORE_SITES
                    or f.name in SERVICE_SITES):
                continue
            if getattr(self, f.name) not in (False, None):
                return True
        return False

    def spec(self) -> dict:
        """The plan's trigger configuration, without counter state — what a
        parallel executor ships to worker processes so injected faults keep
        firing inside per-procedure solves."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not f.name.startswith("_")
        }

    def counters(self) -> tuple[dict[str, int], dict[str, int]]:
        """Snapshot of the (calls, trips) counters, for merging."""
        return dict(self._calls), dict(self._trips)

    def merge_counts(
        self, calls: "dict[str, int]", trips: "dict[str, int]"
    ) -> None:
        """Fold a worker plan's counters into this one, so assertions like
        ``plan.trips("solver") > 0`` hold regardless of worker count."""
        for site, n in calls.items():
            self._calls[site] = self._calls.get(site, 0) + n
        for site, n in trips.items():
            self._trips[site] = self._trips.get(site, 0) + n


_ACTIVE: ContextVar[FaultPlan | None] = ContextVar("repro_faults", default=None)


def active() -> FaultPlan | None:
    """The innermost armed plan, or ``None`` outside any context."""
    return _ACTIVE.get()


@contextlib.contextmanager
def inject_faults(**kwargs):
    """Arm a :class:`FaultPlan` for the duration of the ``with`` block."""
    plan = FaultPlan(**kwargs)
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


# -- chaos mode (environment-armed, executor/store scope only) ----------------

_CHAOS: FaultPlan | None = None
_CHAOS_RAW: str | None = None


def _parse_trigger(raw: str) -> bool | int | str:
    raw = raw.strip()
    if raw.lower() in ("true", "1") or raw == "":
        # "site=1" in the env means "always" — a 1-shot trigger from the
        # environment is near-useless across a whole process.
        return True
    if raw.startswith("%"):
        return raw
    try:
        return int(raw)
    except ValueError:
        return True


def chaos_plan() -> FaultPlan | None:
    """The process-wide chaos plan parsed from ``$REPRO_CHAOS``, or ``None``.

    Only the supervised executor (``worker_crash`` / ``task_timeout``) and
    the on-disk store (``store_corrupt`` / ``store_io_error``) consult this
    plan — subsystems built to absorb sabotage without changing results —
    so arming it must keep the full test suite green.  Unknown site names
    are ignored (forward compatibility), and the plan re-parses when the
    variable changes (tests).
    """
    global _CHAOS, _CHAOS_RAW
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if raw != _CHAOS_RAW:
        _CHAOS_RAW = raw
        if not raw:
            _CHAOS = None
        else:
            known = {f.name for f in fields(FaultPlan)
                     if not f.name.startswith("_")}
            kwargs = {}
            for item in raw.split(","):
                if "=" not in item:
                    continue
                site, _, trigger = item.partition("=")
                if site.strip() in known:
                    kwargs[site.strip()] = _parse_trigger(trigger)
            _CHAOS = FaultPlan(**kwargs) if kwargs else None
    return _CHAOS


def _plans_for(site_group: str) -> list[FaultPlan]:
    """The plans a hook should consult: the context plan, then (for
    executor/store/service sites only) the chaos plan."""
    plans = []
    plan = active()
    if plan is not None:
        plans.append(plan)
    if site_group in ("executor", "store", "service"):
        chaos = chaos_plan()
        if chaos is not None and chaos is not plan:
            plans.append(chaos)
    return plans


# -- hooks called by production code ------------------------------------------


def check_solver_timeout() -> None:
    """Called at the top of every heuristic DTSP solve."""
    plan = active()
    if plan is not None and plan.fires("solver", plan.solver_timeout):
        raise SolverBudgetExceeded(
            "fault injection: solver timed out", where="fault:solver"
        )


def check_construction_failure() -> None:
    plan = active()
    if plan is not None and plan.fires(
        "construction", plan.construction_failure
    ):
        raise DegradationError("fault injection: construction rung failed")


def check_greedy_failure() -> None:
    plan = active()
    if plan is not None and plan.fires("greedy", plan.greedy_failure):
        raise DegradationError("fault injection: greedy rung failed")


def check_bound_timeout() -> None:
    plan = active()
    if plan is not None and plan.fires("bound", plan.bound_timeout):
        raise SolverBudgetExceeded(
            "fault injection: lower bound timed out", where="fault:bound"
        )


def vm_block_limit(default: int) -> int:
    """The VM's effective ``max_blocks``: the armed override, if tighter."""
    plan = active()
    if plan is not None and plan.vm_max_blocks is not None:
        plan.fires("vm", True)
        return min(default, plan.vm_max_blocks)
    return default


def corrupt_checkpoint_line(line: str) -> str:
    """Return ``line`` mangled when the checkpoint fault fires (a torn
    write: the tail of the record is lost)."""
    plan = active()
    if plan is not None and plan.fires("checkpoint", plan.checkpoint_corrupt_on):
        return line[: max(1, len(line) // 2)]
    return line


def _dispatch_site_fires(site: str, first_dispatch: bool) -> bool:
    """Shared logic for the supervisor's parent-side dispatch sites.

    Scheduled triggers (integer / ``"%k"``) are consulted only on a task's
    *first* dispatch — never on retries or requeues — so the sabotage
    schedule is a pure function of task order: deterministic for any
    worker count, and a retry always gets a clean dispatch (sabotage tests
    recovery, not quarantine).  ``True`` stays unrelenting: it fires on
    every dispatch, retries included, which is how tests drive the
    quarantine path itself.
    """
    for plan in _plans_for("executor"):
        trigger = getattr(plan, site)
        if trigger is not True and not first_dispatch:
            continue
        if plan.fires(site, trigger):
            return True
    return False


def worker_crash_fires(first_dispatch: bool = True) -> bool:
    """Consulted by the supervised executor, in the *parent*, per task
    dispatch (see :func:`_dispatch_site_fires` for the schedule rules)."""
    return _dispatch_site_fires("worker_crash", first_dispatch)


def task_timeout_fires(first_dispatch: bool = True) -> bool:
    """Consulted by the supervised executor per task dispatch: a fired
    trigger simulates an attempt exceeding its outer deadline."""
    return _dispatch_site_fires("task_timeout", first_dispatch)


def corrupt_store_bytes(data: bytes) -> bytes:
    """Return ``data`` truncated when the store-corruption fault fires —
    the moral equivalent of a process killed mid-write."""
    for plan in _plans_for("store"):
        if plan.fires("store_corrupt", plan.store_corrupt):
            return data[: max(1, len(data) // 2)]
    return data


def check_store_io() -> None:
    """Called at the top of every store read/write; a fired trigger raises
    the :class:`ArtifactStoreError` the store must absorb as a miss."""
    for plan in _plans_for("store"):
        if plan.fires("store_io", plan.store_io_error):
            raise ArtifactStoreError("fault injection: store I/O error")


def simulated_task_timeout_error() -> TaskTimeoutError:
    return TaskTimeoutError(
        "fault injection: task exceeded its deadline", timeout_ms=0.0
    )


def service_overload_fires() -> bool:
    """Consulted by the service's admission gate per submitted request: a
    fired trigger sheds the request as if the queue were full, so chaos
    plans exercise the 429 path without needing a real traffic storm."""
    for plan in _plans_for("service"):
        if plan.fires("service_overload", plan.service_overload):
            return True
    return False


def breaker_probe_fails() -> bool:
    """Consulted by a half-open circuit breaker when it admits a probe: a
    fired trigger fails the probe, re-opening the breaker."""
    for plan in _plans_for("service"):
        if plan.fires("breaker_probe", plan.breaker_probe_fail):
            return True
    return False


def corrupt_journal_line(line: str) -> str:
    """Return ``line`` truncated when the journal torn-tail fault fires —
    what a SIGKILL between ``write`` and the final newline leaves behind."""
    for plan in _plans_for("service"):
        if plan.fires("journal_torn", plan.journal_torn_tail):
            return line[: max(1, len(line) // 2)]
    return line


def check_journal_io() -> None:
    """Called at the top of every journal append; a fired trigger raises
    the :class:`JournalError` the journal must absorb into
    degraded-durability mode."""
    for plan in _plans_for("service"):
        if plan.fires("journal_io", plan.journal_io_error):
            raise JournalError("fault injection: journal I/O error")


def shard_death_fires() -> bool:
    """Consulted by the shard supervisor once per routed request: a fired
    trigger kills the request's target shard immediately after the
    hand-off, so the stranded work exercises probe-detect → restart →
    journal recovery → failover."""
    for plan in _plans_for("service"):
        if plan.fires("shard_death", plan.shard_death):
            return True
    return False


def shard_wedge_fires() -> bool:
    """Consulted by the shard supervisor once per routed request: a fired
    trigger wedges the target shard (alive but making no progress), the
    straggler shape the wedge detector and hedged requests must cover."""
    for plan in _plans_for("service"):
        if plan.fires("shard_wedge", plan.shard_wedge):
            return True
    return False
