"""Fault-injection harness.

Lets tests (and chaos-style experiments) make the pipeline's failure paths
*happen on demand*: solvers time out, degradation rungs break, VM runs
exceed their step limits, checkpoint writes corrupt on the Nth call.  The
production code consults this module at the same points where the real
failures occur, so a test that survives injected faults exercises exactly
the code that must survive real ones.

Usage::

    from repro.faults import inject_faults

    with inject_faults(solver_timeout=True) as plan:
        case = run_case("com", "in")      # every tsp solve degrades
    assert plan.trips("solver") > 0

Site trigger values are ``False``/``None`` (never fire), ``True`` (fire on
every call), or an integer ``n`` (fire on the n-th call only, 1-based —
"corrupt the 3rd checkpoint write").  Plans nest; the innermost context
wins.  State lives in a :class:`contextvars.ContextVar`, so plans stay
scoped under threads and async tests.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.errors import DegradationError, SolverBudgetExceeded

Trigger = "bool | int | None"


@dataclass
class FaultPlan:
    """One set of armed faults plus per-site call/trip counters."""

    #: Heuristic DTSP solves raise :class:`SolverBudgetExceeded`.
    solver_timeout: bool | int | None = False
    #: The construction-tour fallback rung raises :class:`DegradationError`.
    construction_failure: bool | int | None = False
    #: The greedy-alignment fallback rung raises :class:`DegradationError`.
    greedy_failure: bool | int | None = False
    #: Lower-bound computations raise :class:`SolverBudgetExceeded`.
    bound_timeout: bool | int | None = False
    #: Override the VM's ``max_blocks`` so runs trip the runaway guard.
    vm_max_blocks: int | None = None
    #: Corrupt the n-th checkpoint line written (``True`` = every line).
    checkpoint_corrupt_on: bool | int | None = False

    _calls: dict[str, int] = field(default_factory=dict)
    _trips: dict[str, int] = field(default_factory=dict)

    def calls(self, site: str) -> int:
        return self._calls.get(site, 0)

    def trips(self, site: str) -> int:
        return self._trips.get(site, 0)

    def fires(self, site: str, trigger: bool | int | None) -> bool:
        """Count one call at ``site`` and decide whether the fault fires."""
        call = self._calls.get(site, 0) + 1
        self._calls[site] = call
        fired = trigger is True or (
            isinstance(trigger, int) and not isinstance(trigger, bool)
            and call == trigger
        )
        if fired:
            self._trips[site] = self._trips.get(site, 0) + 1
        return fired

    def spec(self) -> dict:
        """The plan's trigger configuration, without counter state — what a
        parallel executor ships to worker processes so injected faults keep
        firing inside per-procedure solves."""
        return {
            "solver_timeout": self.solver_timeout,
            "construction_failure": self.construction_failure,
            "greedy_failure": self.greedy_failure,
            "bound_timeout": self.bound_timeout,
            "vm_max_blocks": self.vm_max_blocks,
            "checkpoint_corrupt_on": self.checkpoint_corrupt_on,
        }

    def counters(self) -> tuple[dict[str, int], dict[str, int]]:
        """Snapshot of the (calls, trips) counters, for merging."""
        return dict(self._calls), dict(self._trips)

    def merge_counts(
        self, calls: "dict[str, int]", trips: "dict[str, int]"
    ) -> None:
        """Fold a worker plan's counters into this one, so assertions like
        ``plan.trips("solver") > 0`` hold regardless of worker count."""
        for site, n in calls.items():
            self._calls[site] = self._calls.get(site, 0) + n
        for site, n in trips.items():
            self._trips[site] = self._trips.get(site, 0) + n


_ACTIVE: ContextVar[FaultPlan | None] = ContextVar("repro_faults", default=None)


def active() -> FaultPlan | None:
    """The innermost armed plan, or ``None`` outside any context."""
    return _ACTIVE.get()


@contextlib.contextmanager
def inject_faults(**kwargs):
    """Arm a :class:`FaultPlan` for the duration of the ``with`` block."""
    plan = FaultPlan(**kwargs)
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


# -- hooks called by production code ------------------------------------------


def check_solver_timeout() -> None:
    """Called at the top of every heuristic DTSP solve."""
    plan = active()
    if plan is not None and plan.fires("solver", plan.solver_timeout):
        raise SolverBudgetExceeded(
            "fault injection: solver timed out", where="fault:solver"
        )


def check_construction_failure() -> None:
    plan = active()
    if plan is not None and plan.fires(
        "construction", plan.construction_failure
    ):
        raise DegradationError("fault injection: construction rung failed")


def check_greedy_failure() -> None:
    plan = active()
    if plan is not None and plan.fires("greedy", plan.greedy_failure):
        raise DegradationError("fault injection: greedy rung failed")


def check_bound_timeout() -> None:
    plan = active()
    if plan is not None and plan.fires("bound", plan.bound_timeout):
        raise SolverBudgetExceeded(
            "fault injection: lower bound timed out", where="fault:bound"
        )


def vm_block_limit(default: int) -> int:
    """The VM's effective ``max_blocks``: the armed override, if tighter."""
    plan = active()
    if plan is not None and plan.vm_max_blocks is not None:
        plan.fires("vm", True)
        return min(default, plan.vm_max_blocks)
    return default


def corrupt_checkpoint_line(line: str) -> str:
    """Return ``line`` mangled when the checkpoint fault fires (a torn
    write: the tail of the record is lost)."""
    plan = active()
    if plan is not None and plan.fires("checkpoint", plan.checkpoint_corrupt_on):
        return line[: max(1, len(line) // 2)]
    return line
