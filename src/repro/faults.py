"""Fault-injection harness.

Lets tests (and chaos-style experiments) make the pipeline's failure paths
*happen on demand*: solvers time out, degradation rungs break, VM runs
exceed their step limits, checkpoint writes corrupt on the Nth call,
workers crash mid-task, store entries tear on disk.  The production code
consults this module at the same points where the real failures occur, so
a test that survives injected faults exercises exactly the code that must
survive real ones.

Usage::

    from repro.faults import inject_faults

    with inject_faults(solver_timeout=True) as plan:
        case = run_case("com", "in")      # every tsp solve degrades
    assert plan.trips("solver") > 0

Site trigger values are ``False``/``None`` (never fire), ``True`` (fire on
every call), an integer ``n`` (fire on the n-th call only, 1-based —
"corrupt the 3rd checkpoint write"), a string ``"%k"`` (fire on every
k-th call — "crash every 5th worker dispatch"), or a tuple/list of
integers (fire on exactly those calls — what a pairwise chaos schedule
compiles to; the env form is ``"@3+7"``).  Plans nest; the innermost
context wins.  State lives in a :class:`contextvars.ContextVar`, so plans
stay scoped under threads and async tests.

Sites fall into two groups:

* **pipeline sites** (``solver_timeout`` … ``task_timeout``) sabotage the
  alignment computation itself.  The artifact cache and store refuse to
  *serve* artifacts while any of these is armed, so injected failures
  reach the code under test instead of being papered over by a clean
  cached result.
* **store sites** (``store_corrupt``, ``store_io_error``) sabotage the
  on-disk artifact store.  A plan arming *only* store sites leaves the
  store live — it has to, for the injected corruption to reach it.
* **service sites** (``service_overload``, ``breaker_probe_fail``,
  ``journal_torn_tail``, ``journal_io_error``, ``journal_enospc``,
  ``fsync_stall``, ``torn_write_mid_file``, ``clock_skew``, plus the
  shard sites) sabotage the alignment service's admission gate,
  circuit-breaker probes, write-ahead request journal, and the tier's
  clocks and disks.  Like store sites they leave caches live: the service
  must absorb them without changing what an admitted request computes.

Chaos mode: setting ``REPRO_CHAOS`` (e.g.
``REPRO_CHAOS="worker_crash=%7,store_corrupt=1"``) arms a process-wide
plan consulted *only* by the supervised executor, the on-disk store, and
the alignment service — the subsystems whose whole contract is that
sabotage is invisible in the output.  CI runs the full test suite this
way.  :func:`chaos_override` lets the fault-space explorer
(:mod:`repro.chaos`) install that process-wide plan programmatically —
including ``None`` to neutralize the environment during a deterministic
replay.

Record mode: :func:`record_sites` arms a :class:`SiteRecorder` that
counts every *consultation* of every fault site (whether or not any plan
fires), tagged with the current :func:`fault_scope` label.  This is how
the explorer's discovery pass enumerates the reachable injection space —
site name × call index × shard/worker context — without perturbing the
workload.
"""

from __future__ import annotations

import contextlib
import errno as _errno
import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field, fields

from repro.errors import (
    ArtifactStoreError,
    DegradationError,
    JournalError,
    SolverBudgetExceeded,
    TaskTimeoutError,
)

Trigger = "bool | int | str | None"

CHAOS_ENV = "REPRO_CHAOS"

#: Sites that sabotage the on-disk artifact store rather than the
#: alignment computation.  Plans arming only these keep caches enabled.
STORE_SITES = frozenset({"store_corrupt", "store_io_error", "store_enospc"})

#: Sites that sabotage the serving layer (admission, breaker probes, the
#: write-ahead request journal, shard placement, clocks and disks) rather
#: than the alignment computation.  Like store sites, they leave the
#: caches live — the service must absorb them without changing what an
#: admitted request computes.
SERVICE_SITES = frozenset({
    "service_overload",
    "breaker_probe_fail",
    "journal_torn_tail",
    "journal_io_error",
    "journal_enospc",
    "fsync_stall",
    "torn_write_mid_file",
    "clock_skew",
    "shard_death",
    "shard_wedge",
})

#: Injected slow-disk latency per fired ``fsync_stall`` (seconds).
FSYNC_STALL_S = 0.05

#: Injected wall-clock skew per fired ``clock_skew`` (seconds): large
#: enough to blow any lock-staleness window or queue-deadline estimate,
#: small enough that nothing overflows.
CLOCK_SKEW_S = 120.0


@dataclass
class FaultPlan:
    """One set of armed faults plus per-site call/trip counters."""

    #: Heuristic DTSP solves raise :class:`SolverBudgetExceeded`.
    solver_timeout: bool | int | str | None = False
    #: The construction-tour fallback rung raises :class:`DegradationError`.
    construction_failure: bool | int | str | None = False
    #: The greedy-alignment fallback rung raises :class:`DegradationError`.
    greedy_failure: bool | int | str | None = False
    #: Lower-bound computations raise :class:`SolverBudgetExceeded`.
    bound_timeout: bool | int | str | None = False
    #: Override the VM's ``max_blocks`` so runs trip the runaway guard.
    vm_max_blocks: int | None = None
    #: Corrupt the n-th checkpoint line written (``True`` = every line).
    checkpoint_corrupt_on: bool | int | str | None = False
    #: The n-th supervised task dispatch dies: a real ``os._exit`` in pool
    #: workers (breaking the pool), :class:`WorkerCrashError` in-process.
    worker_crash: bool | int | str | None = False
    #: The n-th supervised task dispatch times out before running.
    task_timeout: bool | int | str | None = False
    #: Torn write: the n-th store entry written is truncated on disk.
    store_corrupt: bool | int | str | None = False
    #: The n-th store read/write raises an I/O error inside the store.
    store_io_error: bool | int | str | None = False
    #: The n-th admission decision sheds the request even with queue room.
    service_overload: bool | int | str | None = False
    #: The n-th half-open breaker probe fails, re-opening the breaker.
    breaker_probe_fail: bool | int | str | None = False
    #: Torn write: the n-th journal record appended is truncated on disk,
    #: as a SIGKILL/power loss mid-append would leave it.
    journal_torn_tail: bool | int | str | None = False
    #: The n-th journal append raises an I/O error; the journal must
    #: absorb it into degraded-durability mode, never kill the server.
    journal_io_error: bool | int | str | None = False
    #: Disk full mid-append: the n-th journal append writes *half* the
    #: record (no newline) and then fails — the realistic ENOSPC shape.
    #: The journal must degrade, and the next recovery must read the
    #: partial record as a torn tail.
    journal_enospc: bool | int | str | None = False
    #: Slow disk: the n-th journal fsync stalls for
    #: :data:`FSYNC_STALL_S` before returning.  Nothing may break —
    #: latency grows, the EWMA wait estimate rises, accounting closes.
    fsync_stall: bool | int | str | None = False
    #: Bit rot / misdirected write: after the n-th journal append
    #: succeeds, one byte in the *middle* of the file is overwritten —
    #: corruption at an arbitrary offset, not just the final record.
    #: Recovery must demote the damaged record to an orphan, never abort
    #: or silently serve it.
    torn_write_mid_file: bool | int | str | None = False
    #: Wall-clock skew: the n-th consultation of a wall-clock comparison
    #: (store entry-lock staleness, the gate's EWMA service-time feed)
    #: sees the clock :data:`CLOCK_SKEW_S` in the future.
    clock_skew: bool | int | str | None = False
    #: Disk full in the artifact store: the n-th store *write* raises
    #: ``OSError(ENOSPC)``; the store must degrade to sticky read-only
    #: mode instead of propagating into the solve path.
    store_enospc: bool | int | str | None = False
    #: The n-th request routed by the shard supervisor kills its target
    #: shard right after the hand-off — a worker loop dying mid-queue,
    #: as SIGKILL on a shard process would.  The supervisor's health
    #: probes must detect it, restart the shard with journal recovery,
    #: and fail over the stranded in-flight work.
    shard_death: bool | int | str | None = False
    #: The n-th routed request wedges its target shard: the worker loop
    #: stops making progress without dying, the straggler shape hedged
    #: requests and the wedge detector exist for.
    shard_wedge: bool | int | str | None = False

    _calls: dict[str, int] = field(default_factory=dict)
    _trips: dict[str, int] = field(default_factory=dict)
    #: Counter guard: one plan may be consulted from the submitting
    #: thread, the service worker thread, and the shard probe thread at
    #: once (the explorer installs a single plan as both the context and
    #: the chaos-override plan), so the call/trip counters take a lock.
    _guard: threading.Lock = field(default_factory=threading.Lock)

    def calls(self, site: str) -> int:
        with self._guard:
            return self._calls.get(site, 0)

    def trips(self, site: str) -> int:
        with self._guard:
            return self._trips.get(site, 0)

    def fires(self, site: str, trigger) -> bool:
        """Count one call at ``site`` and decide whether the fault fires."""
        with self._guard:
            call = self._calls.get(site, 0) + 1
            self._calls[site] = call
            fired = trigger is True or (
                isinstance(trigger, int) and not isinstance(trigger, bool)
                and call == trigger
            ) or (
                isinstance(trigger, (tuple, list, set, frozenset))
                and call in trigger
            ) or (
                isinstance(trigger, str) and trigger.startswith("%")
                and trigger[1:].isdigit() and int(trigger[1:]) > 0
                and call % int(trigger[1:]) == 0
            )
            if fired:
                self._trips[site] = self._trips.get(site, 0) + 1
            return fired

    def arms_pipeline_sites(self) -> bool:
        """True when any non-store site is armed — the condition under
        which the artifact cache and store must not serve artifacts."""
        for f in fields(self):
            if (f.name.startswith("_") or f.name in STORE_SITES
                    or f.name in SERVICE_SITES):
                continue
            if getattr(self, f.name) not in (False, None):
                return True
        return False

    def spec(self) -> dict:
        """The plan's trigger configuration, without counter state — what a
        parallel executor ships to worker processes so injected faults keep
        firing inside per-procedure solves."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not f.name.startswith("_")
        }

    def counters(self) -> tuple[dict[str, int], dict[str, int]]:
        """Snapshot of the (calls, trips) counters, for merging."""
        with self._guard:
            return dict(self._calls), dict(self._trips)

    def merge_counts(
        self, calls: "dict[str, int]", trips: "dict[str, int]"
    ) -> None:
        """Fold a worker plan's counters into this one, so assertions like
        ``plan.trips("solver") > 0`` hold regardless of worker count."""
        with self._guard:
            for site, n in calls.items():
                self._calls[site] = self._calls.get(site, 0) + n
            for site, n in trips.items():
                self._trips[site] = self._trips.get(site, 0) + n


_ACTIVE: ContextVar[FaultPlan | None] = ContextVar("repro_faults", default=None)


def active() -> FaultPlan | None:
    """The innermost armed plan, or ``None`` outside any context."""
    return _ACTIVE.get()


@contextlib.contextmanager
def inject_faults(**kwargs):
    """Arm a :class:`FaultPlan` for the duration of the ``with`` block."""
    plan = FaultPlan(**kwargs)
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def install_plan(plan: FaultPlan):
    """Arm an *existing* plan for the ``with`` block.

    :func:`inject_faults` always builds a fresh plan; the chaos explorer
    instead shares one counted plan between the submitting context (so
    pipeline sites fire inside ``ctx.run``) and :func:`chaos_override`
    (so journal/store/shard hooks on other threads see the same
    schedule and the same call counters).
    """
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


# -- chaos mode (environment-armed, executor/store scope only) ----------------

_CHAOS: FaultPlan | None = None
_CHAOS_RAW: str | None = None
_CHAOS_OVERRIDE: list[FaultPlan | None] = []


@contextlib.contextmanager
def chaos_override(plan: FaultPlan | None):
    """Install ``plan`` as the process-wide chaos plan, shadowing whatever
    ``$REPRO_CHAOS`` says, for the duration of the ``with`` block.

    This is how the chaos explorer reaches fault sites consulted on
    threads it never enters (the service worker thread journals its own
    completions, so a :func:`inject_faults` context set on the client
    thread cannot arm those appends) and how it *neutralizes* an
    environment chaos plan during a deterministic replay: installing
    ``None`` makes :func:`chaos_plan` return nothing even when the
    variable is armed, which keeps exploration reproducible under the CI
    chaos job.  Overrides nest; the innermost wins.
    """
    _CHAOS_OVERRIDE.append(plan)
    try:
        yield plan
    finally:
        _CHAOS_OVERRIDE.pop()


def _parse_trigger(raw: str) -> bool | int | str:
    raw = raw.strip()
    if raw.lower() in ("true", "1") or raw == "":
        # "site=1" in the env means "always" — a 1-shot trigger from the
        # environment is near-useless across a whole process.
        return True
    if raw.startswith("%"):
        return raw
    if raw.startswith("@"):
        # "@3+7": fire on exactly calls 3 and 7 — the env spelling of the
        # multi-index triggers pairwise chaos schedules compile to.
        try:
            picks = tuple(
                int(part) for part in raw[1:].split("+") if part.strip()
            )
        except ValueError:
            return True
        return picks if picks else True
    try:
        return int(raw)
    except ValueError:
        return True


def chaos_plan() -> FaultPlan | None:
    """The process-wide chaos plan parsed from ``$REPRO_CHAOS``, or ``None``.

    Only the supervised executor (``worker_crash`` / ``task_timeout``) and
    the on-disk store (``store_corrupt`` / ``store_io_error``) consult this
    plan — subsystems built to absorb sabotage without changing results —
    so arming it must keep the full test suite green.  Unknown site names
    are ignored (forward compatibility), and the plan re-parses when the
    variable changes (tests).
    """
    global _CHAOS, _CHAOS_RAW
    if _CHAOS_OVERRIDE:
        return _CHAOS_OVERRIDE[-1]
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if raw != _CHAOS_RAW:
        _CHAOS_RAW = raw
        if not raw:
            _CHAOS = None
        else:
            known = {f.name for f in fields(FaultPlan)
                     if not f.name.startswith("_")}
            kwargs = {}
            for item in raw.split(","):
                if "=" not in item:
                    continue
                site, _, trigger = item.partition("=")
                if site.strip() in known:
                    kwargs[site.strip()] = _parse_trigger(trigger)
            _CHAOS = FaultPlan(**kwargs) if kwargs else None
    return _CHAOS


def _plans_for(site_group: str) -> list[FaultPlan]:
    """The plans a hook should consult: the context plan, then (for
    executor/store/service sites only) the chaos plan."""
    plans = []
    plan = active()
    if plan is not None:
        plans.append(plan)
    if site_group in ("executor", "store", "service"):
        chaos = chaos_plan()
        if chaos is not None and chaos is not plan:
            plans.append(chaos)
    return plans


# -- record mode (fault-space discovery) ---------------------------------------

_SCOPE: ContextVar[str] = ContextVar("repro_fault_scope", default="main")


def fault_scope() -> str:
    """The label of the execution context consulting fault hooks: ``"main"``
    by default, ``"shard-N"`` inside a shard's service worker thread."""
    return _SCOPE.get()


def set_scope(scope: str) -> None:
    """Label the current thread's fault-site consultations (worker loops
    call this once at start-up so record mode can attribute sites)."""
    _SCOPE.set(scope or "main")


class SiteRecorder:
    """Counts every *consultation* of every fault site, fault-free.

    Armed by :func:`record_sites` during a discovery pass: each hook calls
    :func:`_observe` whether or not any plan is installed, so after the
    workload runs the recorder holds the full reachable fault space —
    site name × number of consultations × scope — which is exactly the
    space of schedulable ``(site, call_index)`` injection points.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}

    def observe(self, site: str) -> None:
        key = (site, _SCOPE.get())
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1

    def counts(self) -> dict[tuple[str, str], int]:
        """Snapshot: ``{(site, scope): consultations}``."""
        with self._lock:
            return dict(self._counts)

    def total(self, site: str) -> int:
        """Consultations of ``site`` summed across scopes — the number of
        distinct call indices a schedule may target."""
        with self._lock:
            return sum(
                n for (s, _scope), n in self._counts.items() if s == site
            )

    def sites(self) -> list[str]:
        with self._lock:
            return sorted({site for site, _scope in self._counts})


_RECORDER: SiteRecorder | None = None
_RECORDER_LOCK = threading.Lock()


@contextlib.contextmanager
def record_sites():
    """Arm record mode for the ``with`` block; yields the recorder."""
    global _RECORDER
    recorder = SiteRecorder()
    with _RECORDER_LOCK:
        previous, _RECORDER = _RECORDER, recorder
    try:
        yield recorder
    finally:
        with _RECORDER_LOCK:
            _RECORDER = previous


def _observe(site: str) -> None:
    recorder = _RECORDER
    if recorder is not None:
        recorder.observe(site)


# -- hooks called by production code ------------------------------------------


def check_solver_timeout() -> None:
    """Called at the top of every heuristic DTSP solve."""
    _observe("solver_timeout")
    plan = active()
    if plan is not None and plan.fires("solver", plan.solver_timeout):
        raise SolverBudgetExceeded(
            "fault injection: solver timed out", where="fault:solver"
        )


def check_construction_failure() -> None:
    _observe("construction_failure")
    plan = active()
    if plan is not None and plan.fires(
        "construction", plan.construction_failure
    ):
        raise DegradationError("fault injection: construction rung failed")


def check_greedy_failure() -> None:
    _observe("greedy_failure")
    plan = active()
    if plan is not None and plan.fires("greedy", plan.greedy_failure):
        raise DegradationError("fault injection: greedy rung failed")


def check_bound_timeout() -> None:
    _observe("bound_timeout")
    plan = active()
    if plan is not None and plan.fires("bound", plan.bound_timeout):
        raise SolverBudgetExceeded(
            "fault injection: lower bound timed out", where="fault:bound"
        )


def vm_block_limit(default: int) -> int:
    """The VM's effective ``max_blocks``: the armed override, if tighter."""
    plan = active()
    if plan is not None and plan.vm_max_blocks is not None:
        plan.fires("vm", True)
        return min(default, plan.vm_max_blocks)
    return default


def corrupt_checkpoint_line(line: str) -> str:
    """Return ``line`` mangled when the checkpoint fault fires (a torn
    write: the tail of the record is lost)."""
    _observe("checkpoint_corrupt_on")
    plan = active()
    if plan is not None and plan.fires("checkpoint", plan.checkpoint_corrupt_on):
        return line[: max(1, len(line) // 2)]
    return line


def _dispatch_site_fires(site: str, first_dispatch: bool) -> bool:
    """Shared logic for the supervisor's parent-side dispatch sites.

    Scheduled triggers (integer / ``"%k"``) are consulted only on a task's
    *first* dispatch — never on retries or requeues — so the sabotage
    schedule is a pure function of task order: deterministic for any
    worker count, and a retry always gets a clean dispatch (sabotage tests
    recovery, not quarantine).  ``True`` stays unrelenting: it fires on
    every dispatch, retries included, which is how tests drive the
    quarantine path itself.
    """
    if first_dispatch:
        # Recorded only for first dispatches, so the recorder's count for
        # the site equals the number of schedulable trigger indices.
        _observe(site)
    for plan in _plans_for("executor"):
        trigger = getattr(plan, site)
        if trigger is not True and not first_dispatch:
            continue
        if plan.fires(site, trigger):
            return True
    return False


def worker_crash_fires(first_dispatch: bool = True) -> bool:
    """Consulted by the supervised executor, in the *parent*, per task
    dispatch (see :func:`_dispatch_site_fires` for the schedule rules)."""
    return _dispatch_site_fires("worker_crash", first_dispatch)


def task_timeout_fires(first_dispatch: bool = True) -> bool:
    """Consulted by the supervised executor per task dispatch: a fired
    trigger simulates an attempt exceeding its outer deadline."""
    return _dispatch_site_fires("task_timeout", first_dispatch)


def corrupt_store_bytes(data: bytes) -> bytes:
    """Return ``data`` truncated when the store-corruption fault fires —
    the moral equivalent of a process killed mid-write."""
    _observe("store_corrupt")
    for plan in _plans_for("store"):
        if plan.fires("store_corrupt", plan.store_corrupt):
            return data[: max(1, len(data) // 2)]
    return data


def check_store_io() -> None:
    """Called at the top of every store read/write; a fired trigger raises
    the :class:`ArtifactStoreError` the store must absorb as a miss."""
    _observe("store_io_error")
    for plan in _plans_for("store"):
        if plan.fires("store_io", plan.store_io_error):
            raise ArtifactStoreError("fault injection: store I/O error")


def check_store_enospc() -> None:
    """Called before every store *write*; a fired trigger raises the
    ``OSError`` a full disk raises, which the store must absorb by
    degrading itself to sticky read-only mode — never by letting the
    error reach the solve path."""
    _observe("store_enospc")
    for plan in _plans_for("store"):
        if plan.fires("store_enospc", plan.store_enospc):
            raise OSError(
                _errno.ENOSPC, "fault injection: no space left on device"
            )


def simulated_task_timeout_error() -> TaskTimeoutError:
    return TaskTimeoutError(
        "fault injection: task exceeded its deadline", timeout_ms=0.0
    )


def service_overload_fires() -> bool:
    """Consulted by the service's admission gate per submitted request: a
    fired trigger sheds the request as if the queue were full, so chaos
    plans exercise the 429 path without needing a real traffic storm."""
    _observe("service_overload")
    for plan in _plans_for("service"):
        if plan.fires("service_overload", plan.service_overload):
            return True
    return False


def breaker_probe_fails() -> bool:
    """Consulted by a half-open circuit breaker when it admits a probe: a
    fired trigger fails the probe, re-opening the breaker."""
    _observe("breaker_probe_fail")
    for plan in _plans_for("service"):
        if plan.fires("breaker_probe", plan.breaker_probe_fail):
            return True
    return False


def corrupt_journal_line(line: str) -> str:
    """Return ``line`` truncated when the journal torn-tail fault fires —
    what a SIGKILL between ``write`` and the final newline leaves behind."""
    _observe("journal_torn_tail")
    for plan in _plans_for("service"):
        if plan.fires("journal_torn", plan.journal_torn_tail):
            return line[: max(1, len(line) // 2)]
    return line


def check_journal_io() -> None:
    """Called at the top of every journal append; a fired trigger raises
    the :class:`JournalError` the journal must absorb into
    degraded-durability mode."""
    _observe("journal_io_error")
    for plan in _plans_for("service"):
        if plan.fires("journal_io", plan.journal_io_error):
            raise JournalError("fault injection: journal I/O error")


def journal_enospc_fires() -> bool:
    """Consulted per journal append, *before* the line is written: a fired
    trigger simulates the disk filling mid-append — half the record lands
    with no trailing newline, then the write fails and the journal must
    degrade.  The partial record is exactly the torn tail the next
    recovery's replay already tolerates."""
    _observe("journal_enospc")
    for plan in _plans_for("service"):
        if plan.fires("journal_enospc", plan.journal_enospc):
            return True
    return False


def fsync_stall_s() -> float:
    """Consulted per journal fsync: the injected slow-disk latency, in
    seconds, for this flush — ``0.0`` unless the ``fsync_stall`` site
    fires.  Models a saturated device: durability holds but every
    admission pays the stall on the critical path."""
    _observe("fsync_stall")
    for plan in _plans_for("service"):
        if plan.fires("fsync_stall", plan.fsync_stall):
            return FSYNC_STALL_S
    return 0.0


def torn_write_mid_file_fires() -> bool:
    """Consulted after each successful journal append: a fired trigger
    zeroes one byte in the *middle* of the file — corruption of an
    interior, previously-durable record, which recovery must demote to an
    orphan rather than serve or abort on."""
    _observe("torn_write_mid_file")
    for plan in _plans_for("service"):
        if plan.fires("torn_write", plan.torn_write_mid_file):
            return True
    return False


def clock_skew_s() -> float:
    """Consulted wherever production code compares wall-clock readings
    across writers (entry-lock staleness): the injected forward skew in
    seconds for this reading, ``0.0`` unless ``clock_skew`` fires."""
    _observe("clock_skew")
    for plan in _plans_for("service"):
        if plan.fires("clock_skew", plan.clock_skew):
            return CLOCK_SKEW_S
    return 0.0


def clock_skew_ms() -> float:
    """:func:`clock_skew_s` for millisecond-domain consumers (the EWMA
    queue-wait estimator feeding deadline shedding)."""
    return clock_skew_s() * 1000.0


def shard_death_fires() -> bool:
    """Consulted by the shard supervisor once per routed request: a fired
    trigger kills the request's target shard immediately after the
    hand-off, so the stranded work exercises probe-detect → restart →
    journal recovery → failover."""
    _observe("shard_death")
    for plan in _plans_for("service"):
        if plan.fires("shard_death", plan.shard_death):
            return True
    return False


def shard_wedge_fires() -> bool:
    """Consulted by the shard supervisor once per routed request: a fired
    trigger wedges the target shard (alive but making no progress), the
    straggler shape the wedge detector and hedged requests must cover."""
    _observe("shard_wedge")
    for plan in _plans_for("service"):
        if plan.fires("shard_wedge", plan.shard_wedge):
            return True
    return False
