"""Machine penalty models (the paper's Table 3).

Control penalties are classified as *misfetch* (target address not known in
time to redirect fetch: 1 cycle on the Alpha 21164) and *mispredict* (wrong
conditional direction: 5 cycles on the 21164).  A :class:`PenaltyModel`
captures, per terminator kind, the cycle cost of each of the four
prediction/outcome combinations:

* ``p_tt`` — predicted taken, actually taken (correctly predicted redirect:
  pays the misfetch),
* ``p_tn`` — predicted taken, actually not taken (mispredict),
* ``p_nt`` — predicted not taken, actually taken (mispredict),
* ``p_nn`` — predicted not taken, actually not taken (clean fall-through).

The model must satisfy the paper's §2.2 assumption: penalty cycles at the end
of block B depend only on which block succeeds B in the layout (BTFNT-style
direction-dependent predictors are out of scope, as in the paper).
"""

from __future__ import annotations

from repro.errors import UnknownNameError

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchPenalties:
    """Penalty cycles for the four prediction/outcome combinations."""

    p_tt: float
    p_tn: float
    p_nt: float
    p_nn: float = 0.0

    def cost(self, *, predicted_taken: bool, taken: bool) -> float:
        if predicted_taken:
            return self.p_tt if taken else self.p_tn
        return self.p_nt if taken else self.p_nn


@dataclass(frozen=True)
class PenaltyModel:
    """A complete machine control-penalty model.

    ``unconditional`` is the per-execution cost of an unconditional jump the
    layout had to keep or insert (Table 3 charges 2 on the 21164: one cycle
    for the jump instruction itself plus the one-cycle misfetch).  A block
    whose single successor is its layout successor pays nothing (the jump is
    deleted).
    """

    name: str
    conditional: BranchPenalties
    multiway: BranchPenalties
    unconditional: float
    #: Descriptive pipeline parameters (used in reports, not in costs).
    misfetch_cycles: float = 0.0
    mispredict_cycles: float = 0.0
    #: Cycles stalled per instruction-cache miss in the timing simulator.
    icache_miss_cycles: float = 8.0

    @classmethod
    def from_pipeline(
        cls,
        name: str,
        *,
        misfetch: float,
        mispredict: float,
        multiway_redirect: float | None = None,
        icache_miss_cycles: float = 8.0,
    ) -> "PenaltyModel":
        """Build a Table 3-shaped model from pipeline parameters.

        Conditional branches: a correctly predicted taken branch pays the
        misfetch; a mispredict pays the full mispredict penalty either way; a
        correctly predicted fall-through is free.  Register (multiway)
        branches pay ``multiway_redirect`` whenever the executed target is
        not the correctly-predicted layout successor (Table 3 charges 3 on
        the 21164).  Unconditional jumps cost one issue cycle plus the
        misfetch.
        """
        if multiway_redirect is None:
            multiway_redirect = mispredict
        return cls(
            name=name,
            conditional=BranchPenalties(
                p_tt=misfetch, p_tn=mispredict, p_nt=mispredict, p_nn=0.0
            ),
            multiway=BranchPenalties(
                p_tt=multiway_redirect,
                p_tn=multiway_redirect,
                p_nt=multiway_redirect,
                p_nn=0.0,
            ),
            unconditional=1.0 + misfetch,
            misfetch_cycles=misfetch,
            mispredict_cycles=mispredict,
            icache_miss_cycles=icache_miss_cycles,
        )


#: The paper's machine: Digital Alpha 21164 (Figure 1 / Table 3).
#: Misfetch = 1 cycle, conditional mispredict = 5 cycles, register branch to
#: any block other than a correctly-predicted layout successor = 3 cycles,
#: kept-or-inserted unconditional jump = 2 cycles.
ALPHA_21164 = PenaltyModel.from_pipeline(
    "alpha21164", misfetch=1.0, mispredict=5.0, multiway_redirect=3.0
)

#: A shorter-pipeline machine in the spirit of the Alpha 21064 (4-cycle
#: mispredict), used by the machine-model ablation (bench A3).
ALPHA_21064 = PenaltyModel.from_pipeline(
    "alpha21064", misfetch=1.0, mispredict=4.0, multiway_redirect=3.0
)

#: A deep-pipeline model (aggressive frequency, longer resolution latency);
#: control penalties dominate more heavily, amplifying alignment benefit.
DEEP_PIPE = PenaltyModel.from_pipeline(
    "deep-pipe", misfetch=2.0, mispredict=12.0, multiway_redirect=8.0
)

#: A frequency-only pseudo-model: every redirected or mispredicted control
#: transfer costs 1.  Under this model edge costs reduce to (total out-flow
#: minus flow to the layout successor), which is what frequency-only greedy
#: heuristics implicitly optimize — used by the cost-model ablation (A1).
UNIT_COST = PenaltyModel(
    name="unit-cost",
    conditional=BranchPenalties(p_tt=1.0, p_tn=1.0, p_nt=1.0, p_nn=0.0),
    multiway=BranchPenalties(p_tt=1.0, p_tn=1.0, p_nt=1.0, p_nn=0.0),
    unconditional=1.0,
    misfetch_cycles=1.0,
    mispredict_cycles=1.0,
)

STANDARD_MODELS: dict[str, PenaltyModel] = {
    model.name: model
    for model in (ALPHA_21164, ALPHA_21064, DEEP_PIPE, UNIT_COST)
}


def get_model(name: str) -> PenaltyModel:
    """Look up a standard model by name."""
    try:
        return STANDARD_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_MODELS))
        raise UnknownNameError(
            f"unknown machine model {name!r} (known: {known})"
        ) from None
