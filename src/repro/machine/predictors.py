"""Branch predictors.

The paper's alignment cost model assumes *static* prediction: "the processor
always predicts the most common CFG successor of a basic block" (§3.3).
:class:`StaticPredictor` implements exactly that, trained on a profile.

The dynamic predictors (2-bit bimodal table, branch target buffer) implement
the paper's §6 future-work suggestion — "a trace-driven simulation of the
branch prediction hardware in the target machine" — and back the A4 ablation
bench.  They operate on per-procedure transition streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph
from repro.profiles.edge_profile import EdgeProfile


@dataclass
class StaticPredictor:
    """Profile-trained static most-likely-successor prediction.

    ``predictions[block_id]`` is the predicted successor block of each block
    that executed in training.  Blocks never seen in training predict their
    first CFG successor (the frontend's fall-through arm), matching what a
    compiler emits when it has no information.
    """

    predictions: dict[int, int] = field(default_factory=dict)

    @classmethod
    def train(cls, cfg: ControlFlowGraph, profile: EdgeProfile) -> "StaticPredictor":
        predictions: dict[int, int] = {}
        for block in cfg:
            successors = block.successors
            if not successors:
                continue
            predicted = profile.most_frequent_successor(block.block_id)
            if predicted is None or predicted not in successors:
                predicted = successors[0]
            predictions[block.block_id] = predicted
        return cls(predictions)

    def predict(self, block_id: int) -> int | None:
        return self.predictions.get(block_id)


class BimodalPredictor:
    """Per-site 2-bit saturating-counter direction predictor (Smith 1981).

    Keyed by block id (a perfect, alias-free table; aliasing is a
    second-order effect the paper also sets aside, §6 footnote).  The counter
    predicts taken when >= 2.  ``predict``/``update`` work in terms of the
    *taken* arm of a conditional, i.e. target slot 0.
    """

    def __init__(self, initial: int = 2):
        if not 0 <= initial <= 3:
            raise ValueError("2-bit counter initial value must be in [0, 3]")
        self._initial = initial
        self._counters: dict[int, int] = {}

    def predict_taken(self, site: int) -> bool:
        return self._counters.get(site, self._initial) >= 2

    def update(self, site: int, taken: bool) -> None:
        counter = self._counters.get(site, self._initial)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[site] = counter


class BranchTargetBuffer:
    """A direct-mapped branch target buffer (Lee & Smith 1984).

    Caches the last target of redirecting CTIs; a redirect whose target is
    found in the BTB avoids the misfetch penalty.  Indexed by block id modulo
    the number of entries, with tag checking, so capacity aliasing is
    modeled.
    """

    def __init__(self, entries: int = 256):
        if entries <= 0:
            raise ValueError("BTB needs at least one entry")
        self.entries = entries
        self._slots: dict[int, tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, site: int, actual_target: int) -> bool:
        """True (hit) when the BTB would have supplied ``actual_target``."""
        index = site % self.entries
        slot = self._slots.get(index)
        hit = slot is not None and slot == (site, actual_target)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self._slots[index] = (site, actual_target)
        return hit
