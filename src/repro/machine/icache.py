"""Instruction-cache simulation.

The paper found (§4.1, via IPROBE) that "good branch alignments also appear
to be good for caching" — layout benefits the penalty model does not see.
Our timing simulator reproduces that mechanism by replaying the laid-out
fetch address stream through a cache model: layouts that keep hot blocks
contiguous touch fewer lines and conflict less.

Addresses are in bytes; every instruction word is ``WORD_BYTES`` long (4, as
on the Alpha).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WORD_BYTES = 4


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DirectMappedICache:
    """A direct-mapped instruction cache with tag checking.

    One access per cache *line* touched by a fetch range (sequential words
    within a line hit together, as a real fetch unit would)."""

    def __init__(self, size_bytes: int = 8192, line_bytes: int = 32):
        if not _is_power_of_two(size_bytes) or not _is_power_of_two(line_bytes):
            raise ValueError("cache and line sizes must be powers of two")
        if line_bytes > size_bytes:
            raise ValueError("line larger than cache")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self._tags: list[int | None] = [None] * self.num_lines
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags = [None] * self.num_lines
        self.stats = CacheStats()

    def fetch(self, address: int, words: int) -> int:
        """Fetch ``words`` instruction words starting at ``address``; returns
        the number of line misses incurred."""
        if words <= 0:
            return 0
        first_line = address // self.line_bytes
        last_line = (address + words * WORD_BYTES - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            index = line % self.num_lines
            if self._tags[index] != line:
                self._tags[index] = line
                misses += 1
        self.stats.accesses += last_line - first_line + 1
        self.stats.misses += misses
        return misses

    def replay(self, addresses: np.ndarray, words: np.ndarray) -> int:
        """Batch-:meth:`fetch` a whole address stream, vectorized.

        Exactly equivalent to calling ``fetch(a, w)`` per event (same
        stats, same final tags — pinned by a differential test), but
        computed with array ops:

        * the per-event line ranges are expanded into one flat line
          sequence with repeat/cumsum arithmetic;
        * consecutive duplicate lines are compressed away (a re-access of
          the line just fetched is a guaranteed hit and cannot change any
          tag, so this preserves exactness while shrinking the sequence —
          fall-through fetch streams are mostly such runs);
        * a stable argsort groups the sequence by cache slot, within which
          an access misses iff its line differs from the *previous* access
          to the same slot (the group's first access compares against the
          tag the cache held on entry).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        words = np.asarray(words, dtype=np.int64)
        live = words > 0
        if not live.all():
            addresses, words = addresses[live], words[live]
        if addresses.size == 0:
            return 0
        # Line sizes are powers of two, so address//line_bytes is a shift.
        shift = self.line_bytes.bit_length() - 1
        first = addresses >> shift
        count = ((addresses + words * WORD_BYTES - 1) >> shift) - first + 1
        total = int(count.sum())
        self.stats.accesses += total
        starts = np.cumsum(count) - count
        # One repeat instead of two: repeat(first) - repeat(starts) is
        # repeat(first - starts); the ramp is added in place.
        lines = np.repeat(first - starts, count)
        lines += np.arange(total, dtype=np.int64)
        if lines.size > 1:
            keep = np.empty(lines.size, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            lines = lines[keep]
        # Slots fit in uint16 (cache geometry is power-of-two, lines are
        # few), where numpy's stable argsort is an O(n) radix sort instead
        # of a mergesort over int64 keys.
        slots = (lines & (self.num_lines - 1)).astype(np.uint16)
        order = np.argsort(slots, kind="stable")
        slot_seq = slots[order]
        line_seq = lines[order]
        tags = np.array(
            [-1 if t is None else t for t in self._tags], dtype=np.int64
        )
        # There are at most num_lines slot groups, so group boundaries are
        # manipulated as short index arrays, not full-length boolean masks.
        diff = line_seq[1:] != line_seq[:-1]
        starts_idx = np.flatnonzero(slot_seq[1:] != slot_seq[:-1]) + 1
        # Count misses without materializing the "previous access" array:
        # start from the adjacent-difference count, then swap each group's
        # first comparison (meaningless across the boundary) for the real
        # one against the tag the cache held on entry.
        misses = int(np.count_nonzero(diff))
        misses -= int(np.count_nonzero(diff[starts_idx - 1]))
        misses += int(
            np.count_nonzero(line_seq[starts_idx] != tags[slot_seq[starts_idx]])
        )
        misses += int(line_seq[0] != tags[slot_seq[0]])
        self.stats.misses += misses
        ends_idx = np.concatenate((starts_idx - 1, [slot_seq.size - 1]))
        tags[slot_seq[ends_idx]] = line_seq[ends_idx]
        self._tags = [None if t < 0 else int(t) for t in tags.tolist()]
        return misses


class SetAssociativeICache:
    """An LRU set-associative cache, for the fully/highly-associative
    comparisons in the McFarling-style cache analyses."""

    def __init__(
        self, size_bytes: int = 8192, line_bytes: int = 32, ways: int = 4
    ):
        if not _is_power_of_two(size_bytes) or not _is_power_of_two(line_bytes):
            raise ValueError("cache and line sizes must be powers of two")
        if ways <= 0 or size_bytes % (line_bytes * ways) != 0:
            raise ValueError("inconsistent cache geometry")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def fetch(self, address: int, words: int) -> int:
        if words <= 0:
            return 0
        first_line = address // self.line_bytes
        last_line = (address + words * WORD_BYTES - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            cache_set = self._sets[line % self.num_sets]
            if line in cache_set:
                cache_set.remove(line)
            else:
                misses += 1
                if len(cache_set) >= self.ways:
                    cache_set.pop(0)
            cache_set.append(line)
        self.stats.accesses += last_line - first_line + 1
        self.stats.misses += misses
        return misses
