"""Instruction-cache simulation.

The paper found (§4.1, via IPROBE) that "good branch alignments also appear
to be good for caching" — layout benefits the penalty model does not see.
Our timing simulator reproduces that mechanism by replaying the laid-out
fetch address stream through a cache model: layouts that keep hot blocks
contiguous touch fewer lines and conflict less.

Addresses are in bytes; every instruction word is ``WORD_BYTES`` long (4, as
on the Alpha).
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BYTES = 4


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DirectMappedICache:
    """A direct-mapped instruction cache with tag checking.

    One access per cache *line* touched by a fetch range (sequential words
    within a line hit together, as a real fetch unit would)."""

    def __init__(self, size_bytes: int = 8192, line_bytes: int = 32):
        if not _is_power_of_two(size_bytes) or not _is_power_of_two(line_bytes):
            raise ValueError("cache and line sizes must be powers of two")
        if line_bytes > size_bytes:
            raise ValueError("line larger than cache")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self._tags: list[int | None] = [None] * self.num_lines
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags = [None] * self.num_lines
        self.stats = CacheStats()

    def fetch(self, address: int, words: int) -> int:
        """Fetch ``words`` instruction words starting at ``address``; returns
        the number of line misses incurred."""
        if words <= 0:
            return 0
        first_line = address // self.line_bytes
        last_line = (address + words * WORD_BYTES - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            index = line % self.num_lines
            if self._tags[index] != line:
                self._tags[index] = line
                misses += 1
        self.stats.accesses += last_line - first_line + 1
        self.stats.misses += misses
        return misses


class SetAssociativeICache:
    """An LRU set-associative cache, for the fully/highly-associative
    comparisons in the McFarling-style cache analyses."""

    def __init__(
        self, size_bytes: int = 8192, line_bytes: int = 32, ways: int = 4
    ):
        if not _is_power_of_two(size_bytes) or not _is_power_of_two(line_bytes):
            raise ValueError("cache and line sizes must be powers of two")
        if ways <= 0 or size_bytes % (line_bytes * ways) != 0:
            raise ValueError("inconsistent cache geometry")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def fetch(self, address: int, words: int) -> int:
        if words <= 0:
            return 0
        first_line = address // self.line_bytes
        last_line = (address + words * WORD_BYTES - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            cache_set = self._sets[line % self.num_sets]
            if line in cache_set:
                cache_set.remove(line)
            else:
                misses += 1
                if len(cache_set) >= self.ways:
                    cache_set.pop(0)
            cache_set.append(line)
        self.stats.accesses += last_line - first_line + 1
        self.stats.misses += misses
        return misses
