"""Dynamic branch-prediction replay (the paper's §6 future work).

The paper's cost model assumes static prediction and notes that "we could
perform a trace-driven simulation of the branch prediction hardware in the
target machine to derive more accurate frequencies of correct and incorrect
predictions".  This module is that simulation: it replays a run's recorded
branch transitions through a 2-bit bimodal direction predictor and a
direct-mapped branch target buffer, charging penalties against a given
layout.  The A4 ablation bench uses it to measure how much of the static-
model benefit survives dynamic-prediction hardware.

Simplifications (documented, second-order): no predictor aliasing between
procedures (tables are keyed by procedure + block), and returns/calls are
not charged (as in the main model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import Program
from repro.core.layout import ProgramLayout
from repro.core.materialize import MaterializedProgram, PhysicalKind
from repro.machine.models import PenaltyModel
from repro.machine.predictors import BimodalPredictor, BranchTargetBuffer


@dataclass
class DynamicPenaltyResult:
    """Penalty cycles under dynamic prediction, with predictor stats."""

    mispredict_cycles: float = 0.0
    misfetch_cycles: float = 0.0
    jump_cycles: float = 0.0
    conditional_executions: int = 0
    conditional_mispredicts: int = 0
    btb_hits: int = 0
    btb_misses: int = 0

    @property
    def total(self) -> float:
        return self.mispredict_cycles + self.misfetch_cycles + self.jump_cycles

    @property
    def mispredict_rate(self) -> float:
        if not self.conditional_executions:
            return 0.0
        return self.conditional_mispredicts / self.conditional_executions


def simulate_dynamic_penalties(
    program: Program,
    layouts: ProgramLayout,
    materialized: MaterializedProgram,
    transition_log: dict[str, list[tuple[int, int]]],
    model: PenaltyModel,
    *,
    btb_entries: int = 256,
) -> DynamicPenaltyResult:
    """Replay recorded transitions through dynamic prediction hardware.

    ``transition_log`` comes from a :class:`~repro.profiles.trace.TraceBuilder`
    built with ``keep_transitions=True``.
    """
    result = DynamicPenaltyResult()
    bimodal = BimodalPredictor()
    btb = BranchTargetBuffer(btb_entries)
    site_base: dict[str, int] = {}
    next_base = 0
    for proc in program:
        site_base[proc.name] = next_base
        next_base += max(proc.cfg.block_ids, default=0) + 1

    for proc_name, transitions in transition_log.items():
        physical_proc = materialized[proc_name]
        base = site_base.get(proc_name, 0)
        for src, dst in transitions:
            block = physical_proc.block_for(src)
            site = base + src
            kind = block.kind
            if kind is PhysicalKind.FALLTHROUGH:
                continue
            if kind is PhysicalKind.JUMP:
                # Unconditional: direction is known; misfetch unless the BTB
                # supplies the target.  The jump's issue cycle counts as
                # layout overhead, as in Table 3.
                hit = btb.lookup(site, dst)
                result.jump_cycles += 1.0
                if not hit:
                    result.misfetch_cycles += model.misfetch_cycles
                continue
            if kind is PhysicalKind.REGISTER:
                hit = btb.lookup(site, dst)
                if not hit:
                    result.misfetch_cycles += model.multiway.p_nt
                continue
            if kind is PhysicalKind.COND:
                taken_target = block.branch_target
                via_fixup = block.fixup_target == dst
                taken = dst == taken_target
                result.conditional_executions += 1
                predicted_taken = bimodal.predict_taken(site)
                bimodal.update(site, taken)
                if predicted_taken != taken:
                    result.conditional_mispredicts += 1
                    result.mispredict_cycles += model.mispredict_cycles
                elif taken:
                    hit = btb.lookup(site, dst)
                    if not hit:
                        result.misfetch_cycles += model.misfetch_cycles
                if via_fixup:
                    fixup = physical_proc.fixup_after(src)
                    if fixup is not None:
                        fixup_site = base + src + next_base  # distinct key
                        hit = btb.lookup(fixup_site, dst)
                        result.jump_cycles += 1.0
                        if not hit:
                            result.misfetch_cycles += model.misfetch_cycles
            # RETURN blocks: not charged (return-address stacks hide them).

    result.btb_hits = btb.hits
    result.btb_misses = btb.misses
    return result
