"""Trace-driven execution-time simulation.

This is the repo's substitute for the paper's AlphaStation wall-clock runs
(§3, §4).  Simulated time decomposes as:

    cycles = instruction issue cycles            (1 per executed word,
                                                  including CTIs and fixups)
           + control stall cycles                (misfetch / mispredict
                                                  stalls under the penalty
                                                  model — the paper's
                                                  "control penalties" minus
                                                  the jump issue cycles,
                                                  which are already in the
                                                  first term)
           + instruction-cache miss stalls       (direct-mapped I-cache over
                                                  the laid-out fetch stream)

The third term is deliberately *not* part of the alignment cost model —
reproducing the paper's finding that layouts shift cache behaviour in ways
the control-penalty model does not see ("good branch alignments also appear
to be good for caching", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cfg.graph import Program
from repro.core.costmodel import successor_counts, terminator_cost
from repro.core.evaluate import train_predictors
from repro.core.layout import ProgramLayout
from repro.core.materialize import MaterializedProgram, materialize_program
from repro.machine.icache import DirectMappedICache
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from typing import Iterable

from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.trace import CompactTrace


@dataclass
class TimingBreakdown:
    """Simulated cycles by mechanism."""

    instruction_cycles: float = 0.0
    control_stall_cycles: float = 0.0
    icache_stall_cycles: float = 0.0
    icache_accesses: int = 0
    icache_misses: int = 0

    @property
    def total_cycles(self) -> float:
        return (
            self.instruction_cycles
            + self.control_stall_cycles
            + self.icache_stall_cycles
        )


def _stall_model(model: PenaltyModel) -> PenaltyModel:
    """The penalty model with the unconditional-jump *issue* cycle removed
    (it is counted in instruction cycles during timing simulation)."""
    return replace(model, unconditional=max(model.unconditional - 1.0, 0.0))


def simulate_timing(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    trace: Iterable[tuple[str, int]],
    model: PenaltyModel,
    *,
    predictors: dict[str, StaticPredictor] | None = None,
    icache: DirectMappedICache | None = None,
    materialized: MaterializedProgram | None = None,
) -> TimingBreakdown:
    """Simulate one run's execution time under a layout.

    ``profile`` and ``trace`` describe the *testing* run being timed;
    ``predictors`` (trained on the *training* profile) define both the
    static predictions and the fixup directions baked into the binary.
    """
    if predictors is None:
        predictors = train_predictors(program, profile)
    if materialized is None:
        materialized = materialize_program(program, layouts, predictors)
    if icache is None:
        icache = DirectMappedICache()

    breakdown = TimingBreakdown()
    stall_model = _stall_model(model)

    for proc in program:
        edge_profile = profile.procedures.get(proc.name)
        if edge_profile is None:
            continue
        physical = materialized[proc.name]
        blocks = proc.cfg
        # Instruction issue cycles: executed words per block visit, plus
        # one word per execution of each fixup jump.
        visits: dict[int, int] = {}
        for (src, dst), count in edge_profile.counts.items():
            visits[dst] = visits.get(dst, 0) + count
        entry_visits = profile.call_counts.get(proc.name, 0)
        visits[blocks.entry] = visits.get(blocks.entry, 0) + entry_visits
        for block_id, count in visits.items():
            breakdown.instruction_cycles += count * physical.block_for(block_id).words
        for block_id in blocks.block_ids:
            physical_block = physical.block_for(block_id)
            if physical_block.fixup_target is not None:
                breakdown.instruction_cycles += edge_profile.count(
                    block_id, physical_block.fixup_target
                )
        # Control stalls (analytic — exact for static prediction).
        successor_map = layouts[proc.name].successor_map()
        predictor = predictors[proc.name]
        for block in blocks:
            counts = successor_counts(edge_profile.counts, block)
            if not counts:
                continue
            breakdown.control_stall_cycles += terminator_cost(
                block,
                counts,
                predictor.predict(block.block_id),
                successor_map[block.block_id],
                stall_model,
            ).total

    # Instruction-cache replay over the flat fetch stream.  Fixup jumps are
    # fetched inline: when block b1 is followed (same procedure) by its
    # fixup's target, the fall-through ran through the fixup block first.
    stream = None
    if isinstance(trace, CompactTrace) and type(icache) is DirectMappedICache:
        stream = _fetch_stream(materialized, trace)
    if stream is not None:
        icache.replay(*stream)
    else:
        last: tuple[str, int] | None = None
        for proc_name, block_id in trace:
            physical = materialized[proc_name]
            if last is not None and last[0] == proc_name:
                previous = physical.block_for(last[1])
                if previous.fixup_target == block_id:
                    fixup = physical.fixup_after(last[1])
                    if fixup is not None:
                        icache.fetch(fixup.address, fixup.words)
            physical_block = physical.block_for(block_id)
            icache.fetch(physical_block.address, physical_block.words)
            last = (proc_name, block_id)

    breakdown.icache_accesses = icache.stats.accesses
    breakdown.icache_misses = icache.stats.misses
    breakdown.icache_stall_cycles = icache.stats.misses * model.icache_miss_cycles
    return breakdown


def _fetch_stream(
    materialized: MaterializedProgram, trace: CompactTrace
) -> tuple[np.ndarray, np.ndarray] | None:
    """The trace's fetch stream as (addresses, words) arrays.

    Builds flat per-(procedure, block) lookup tables — address, words, and
    the inline-fixup triple — then resolves every trace event with one
    gather, splicing fixup fetches in front of the event that revealed
    them (same semantics as the scalar loop in :func:`simulate_timing`).
    Returns ``None`` when a trace event falls outside the tables (the
    scalar path then reports the usual ``KeyError``).
    """
    if trace.block_ids.size == 0:
        empty = trace.block_ids.astype(np.int64)
        return empty, empty
    procs = [materialized[name] for name in trace.proc_names]
    sizes = np.array(
        [max(p._by_source, default=-1) + 1 for p in procs], dtype=np.int64
    )
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    total = int(offsets[-1])
    # The event -> table-slot mapping depends only on the trace and the
    # per-procedure block-id ranges — not on the layout — so it is shared
    # by every method timed over the same trace.  Memoize it on the trace.
    cache_key = sizes.tobytes()
    cached = getattr(trace, "_fetch_gid_cache", None)
    if cached is not None and cached[0] == cache_key:
        _, block_ids, gids, same_proc = cached
    else:
        proc_indices = trace.proc_indices.astype(np.int64)
        block_ids = trace.block_ids.astype(np.int64)
        if not np.all(block_ids < sizes[proc_indices]):
            return None
        gids = offsets[proc_indices] + block_ids
        same_proc = proc_indices[1:] == proc_indices[:-1]
        trace._fetch_gid_cache = (cache_key, block_ids, gids, same_proc)
    table_addr = np.zeros(total, dtype=np.int64)
    table_words = np.zeros(total, dtype=np.int64)
    table_fix_target = np.full(total, -1, dtype=np.int64)
    table_fix_addr = np.zeros(total, dtype=np.int64)
    table_fix_words = np.zeros(total, dtype=np.int64)
    known = np.zeros(total, dtype=bool)
    for index, proc in enumerate(procs):
        base = int(offsets[index])
        for block_id, block in proc._by_source.items():
            at = base + block_id
            known[at] = True
            table_addr[at] = block.address
            table_words[at] = block.words
            if block.fixup_target is not None:
                fixup = proc.fixup_after(block_id)
                if fixup is not None:
                    table_fix_target[at] = block.fixup_target
                    table_fix_addr[at] = fixup.address
                    table_fix_words[at] = fixup.words
    # Dense block numbering (the common case) makes the per-event known
    # check a free table-level reduction instead of a million-row gather.
    if not known.all() and not known[gids].all():
        return None
    # A fixup is fetched between events i and i+1 when both are in the same
    # procedure and event i's fixup jumps to event i+1's block.
    prev_gids = gids[:-1]
    inline = same_proc & (table_fix_target[prev_gids] == block_ids[1:])
    fixup_count = int(np.count_nonzero(inline))
    if not fixup_count:
        return table_addr[gids], table_words[gids]
    n = gids.size
    event_pos = np.arange(n, dtype=np.int64)
    event_pos[1:] += np.cumsum(inline)
    addresses = np.empty(n + fixup_count, dtype=np.int64)
    words = np.empty(n + fixup_count, dtype=np.int64)
    addresses[event_pos] = table_addr[gids]
    words[event_pos] = table_words[gids]
    fix_pos = event_pos[1:][inline] - 1
    fix_gids = prev_gids[inline]
    addresses[fix_pos] = table_fix_addr[fix_gids]
    words[fix_pos] = table_fix_words[fix_gids]
    return addresses, words
