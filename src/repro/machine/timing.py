"""Trace-driven execution-time simulation.

This is the repo's substitute for the paper's AlphaStation wall-clock runs
(§3, §4).  Simulated time decomposes as:

    cycles = instruction issue cycles            (1 per executed word,
                                                  including CTIs and fixups)
           + control stall cycles                (misfetch / mispredict
                                                  stalls under the penalty
                                                  model — the paper's
                                                  "control penalties" minus
                                                  the jump issue cycles,
                                                  which are already in the
                                                  first term)
           + instruction-cache miss stalls       (direct-mapped I-cache over
                                                  the laid-out fetch stream)

The third term is deliberately *not* part of the alignment cost model —
reproducing the paper's finding that layouts shift cache behaviour in ways
the control-penalty model does not see ("good branch alignments also appear
to be good for caching", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cfg.graph import Program
from repro.core.costmodel import successor_counts, terminator_cost
from repro.core.evaluate import train_predictors
from repro.core.layout import ProgramLayout
from repro.core.materialize import MaterializedProgram, materialize_program
from repro.machine.icache import DirectMappedICache
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from typing import Iterable

from repro.profiles.edge_profile import ProgramProfile


@dataclass
class TimingBreakdown:
    """Simulated cycles by mechanism."""

    instruction_cycles: float = 0.0
    control_stall_cycles: float = 0.0
    icache_stall_cycles: float = 0.0
    icache_accesses: int = 0
    icache_misses: int = 0

    @property
    def total_cycles(self) -> float:
        return (
            self.instruction_cycles
            + self.control_stall_cycles
            + self.icache_stall_cycles
        )


def _stall_model(model: PenaltyModel) -> PenaltyModel:
    """The penalty model with the unconditional-jump *issue* cycle removed
    (it is counted in instruction cycles during timing simulation)."""
    return replace(model, unconditional=max(model.unconditional - 1.0, 0.0))


def simulate_timing(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    trace: Iterable[tuple[str, int]],
    model: PenaltyModel,
    *,
    predictors: dict[str, StaticPredictor] | None = None,
    icache: DirectMappedICache | None = None,
    materialized: MaterializedProgram | None = None,
) -> TimingBreakdown:
    """Simulate one run's execution time under a layout.

    ``profile`` and ``trace`` describe the *testing* run being timed;
    ``predictors`` (trained on the *training* profile) define both the
    static predictions and the fixup directions baked into the binary.
    """
    if predictors is None:
        predictors = train_predictors(program, profile)
    if materialized is None:
        materialized = materialize_program(program, layouts, predictors)
    if icache is None:
        icache = DirectMappedICache()

    breakdown = TimingBreakdown()
    stall_model = _stall_model(model)

    for proc in program:
        edge_profile = profile.procedures.get(proc.name)
        if edge_profile is None:
            continue
        physical = materialized[proc.name]
        blocks = proc.cfg
        # Instruction issue cycles: executed words per block visit, plus
        # one word per execution of each fixup jump.
        visits: dict[int, int] = {}
        for (src, dst), count in edge_profile.counts.items():
            visits[dst] = visits.get(dst, 0) + count
        entry_visits = profile.call_counts.get(proc.name, 0)
        visits[blocks.entry] = visits.get(blocks.entry, 0) + entry_visits
        for block_id, count in visits.items():
            breakdown.instruction_cycles += count * physical.block_for(block_id).words
        for block_id in blocks.block_ids:
            physical_block = physical.block_for(block_id)
            if physical_block.fixup_target is not None:
                breakdown.instruction_cycles += edge_profile.count(
                    block_id, physical_block.fixup_target
                )
        # Control stalls (analytic — exact for static prediction).
        successor_map = layouts[proc.name].successor_map()
        predictor = predictors[proc.name]
        for block in blocks:
            counts = successor_counts(edge_profile.counts, block)
            if not counts:
                continue
            breakdown.control_stall_cycles += terminator_cost(
                block,
                counts,
                predictor.predict(block.block_id),
                successor_map[block.block_id],
                stall_model,
            ).total

    # Instruction-cache replay over the flat fetch stream.  Fixup jumps are
    # fetched inline: when block b1 is followed (same procedure) by its
    # fixup's target, the fall-through ran through the fixup block first.
    last: tuple[str, int] | None = None
    for proc_name, block_id in trace:
        physical = materialized[proc_name]
        if last is not None and last[0] == proc_name:
            previous = physical.block_for(last[1])
            if previous.fixup_target == block_id:
                fixup = physical.fixup_after(last[1])
                if fixup is not None:
                    icache.fetch(fixup.address, fixup.words)
        physical_block = physical.block_for(block_id)
        icache.fetch(physical_block.address, physical_block.words)
        last = (proc_name, block_id)

    breakdown.icache_accesses = icache.stats.accesses
    breakdown.icache_misses = icache.stats.misses
    breakdown.icache_stall_cycles = icache.stats.misses * model.icache_miss_cycles
    return breakdown
