"""Trace-replay penalty counting under static prediction.

An *independent* implementation of the control-penalty accounting: instead
of the §2.2 closed-form sums (:mod:`repro.core.evaluate`), this walks the
recorded per-procedure transitions one by one against the materialized
layout, charging Table 3 penalties per event.  For a static predictor the
two must agree exactly — the test suite uses that equality to cross-check
the entire model (cost formula, fixup attribution, materialization
decisions) against a straight-line reading of the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import Program
from repro.core.materialize import MaterializedProgram, PhysicalKind
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor


@dataclass
class ReplayPenalties:
    """Penalty cycles accumulated by replaying transitions."""

    redirect: float = 0.0
    mispredict: float = 0.0
    jump: float = 0.0
    events: int = 0

    @property
    def total(self) -> float:
        return self.redirect + self.mispredict + self.jump


def replay_static_penalties(
    program: Program,
    materialized: MaterializedProgram,
    predictors: dict[str, StaticPredictor],
    transition_log: dict[str, list[tuple[int, int]]],
    model: PenaltyModel,
) -> ReplayPenalties:
    """Charge Table 3 penalties event by event.

    ``transition_log`` comes from a ``TraceBuilder(keep_transitions=True)``
    run; every (src, dst) is one executed CFG edge.
    """
    result = ReplayPenalties()
    for proc_name, transitions in transition_log.items():
        physical_proc = materialized[proc_name]
        predictor = predictors[proc_name]
        for src, dst in transitions:
            result.events += 1
            block = physical_proc.block_for(src)
            kind = block.kind
            if kind is PhysicalKind.FALLTHROUGH:
                continue  # Table 3: "no branch" — 0 cycles
            if kind is PhysicalKind.JUMP:
                # Kept/inserted unconditional jump: 2 cycles on the 21164.
                result.jump += model.unconditional
                continue
            if kind is PhysicalKind.REGISTER:
                predicted = predictor.predict(src)
                follows = _register_follows(physical_proc, block, dst)
                correct = dst == predicted
                if correct and follows:
                    penalty = model.multiway.p_nn
                elif correct:
                    penalty = model.multiway.p_tt
                elif follows:
                    penalty = model.multiway.p_tn
                else:
                    penalty = model.multiway.p_nt
                if correct:
                    result.redirect += penalty
                else:
                    result.mispredict += penalty
                continue
            if kind is PhysicalKind.COND:
                predicted = predictor.predict(src)
                taken = dst == block.branch_target
                via_fixup = block.fixup_target is not None and dst == block.fixup_target
                predicted_taken = predicted == block.branch_target
                penalty = model.conditional.cost(
                    predicted_taken=predicted_taken, taken=taken
                )
                if dst == predicted:
                    result.redirect += penalty
                else:
                    result.mispredict += penalty
                if via_fixup:
                    # The fall-through ran into the inserted fixup jump.
                    result.jump += model.unconditional
            # RETURN blocks never appear as transition sources.
    return result


def _register_follows(physical_proc, block, dst: int) -> bool:
    """Is ``dst`` the physical layout successor of a register block?"""
    blocks = physical_proc.blocks
    index = blocks.index(block)
    if index + 1 >= len(blocks):
        return False
    following = blocks[index + 1]
    return following.source == dst
