"""Machine models: penalty tables, predictors, caches."""

from repro.machine.icache import (
    CacheStats,
    DirectMappedICache,
    SetAssociativeICache,
    WORD_BYTES,
)
from repro.machine.models import (
    ALPHA_21064,
    ALPHA_21164,
    DEEP_PIPE,
    STANDARD_MODELS,
    UNIT_COST,
    BranchPenalties,
    PenaltyModel,
    get_model,
)
from repro.machine.predictors import (
    BimodalPredictor,
    BranchTargetBuffer,
    StaticPredictor,
)

# NOTE: repro.machine.timing is intentionally not re-exported here: it sits
# above repro.core in the dependency order (it consumes layouts), so pulling
# it into this package's import would create a cycle.  Import it as
# ``from repro.machine.timing import simulate_timing``.

__all__ = [
    "ALPHA_21064",
    "ALPHA_21164",
    "BimodalPredictor",
    "BranchPenalties",
    "BranchTargetBuffer",
    "CacheStats",
    "DEEP_PIPE",
    "DirectMappedICache",
    "PenaltyModel",
    "STANDARD_MODELS",
    "SetAssociativeICache",
    "StaticPredictor",
    "UNIT_COST",
    "WORD_BYTES",
    "get_model",
]
