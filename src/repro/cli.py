"""Command-line interface.

    repro compile FILE [--dot DIR] [--simplify]
    repro run FILE [--inputs 1,2,3 | --input-file F] [--profile-out P.json]
    repro align FILE [--inputs ... | --input-file F | --profile P.json]
                 [--method tsp] [--model alpha21164] [--effort default]
                 [--bound] [--cross-profile Q.json] [--jobs N]
                 [--retries N] [--task-timeout-ms MS] [--store PATH]
    repro suite CASE [CASE ...] [--train DATASET] [--budget-ms MS]
                 [--checkpoint P.jsonl [--resume]] [--jobs N]
                 [--retries N] [--task-timeout-ms MS] [--store PATH]
    repro serve [--host H] [--port P] [--capacity N] [--deadline-ms MS]
                 [--breaker-threshold N] [--breaker-cooldown N] [--jobs N]
    repro request FILE [--url URL] [--method tsp] [--deadline-ms MS]
                 [--profile P.json | --inputs ...] [--bound] [--json]
    repro trace summarize T.jsonl
    repro trace validate T.jsonl

``repro suite com.in`` runs one benchmark case of the paper's evaluation
(``repro suite all`` runs every case; ``--budget-ms`` bounds each
procedure's solver, ``--checkpoint``/``--resume`` persist completed cases
across interrupted runs, and ``--jobs N`` solves procedures in N worker
processes without changing a byte of the output); ``repro align`` is the
end-user path: compile, profile (or load a saved profile), align, and
report penalties per method against the certified lower bound.

``--trace PATH`` (or ``$REPRO_TRACE``) on ``align``/``suite`` writes a
JSONL observability trace — spans and counters from every pipeline layer,
merged across worker processes — which ``repro trace summarize`` renders
as per-stage timing, span-tree, and counter tables.

Exit codes: 0 success, 1 runtime failure (compile/profile/solver), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.cfg import CFGError, cfg_to_dot, simplify_procedure, validate_program
from repro.cfg.graph import Program
from repro.core import (
    align_program,
    evaluate_program,
    lower_bound_program,
    train_predictors,
)
from repro.core.align import ALIGN_METHODS
from repro.core.exttsp import exttsp_program_score
from repro.errors import ProfileValidationError, ReproError, UsageError
from repro.experiments.report import format_table
from repro.lang import LangError, compile_source, run_and_profile
from repro.machine.models import STANDARD_MODELS, get_model
from repro.profiles.edge_profile import ProgramProfile
from repro.tsp.solve import EFFORTS


def _read_source(path: str) -> str:
    return pathlib.Path(path).read_text()


def _parse_inputs(args) -> list[int]:
    if getattr(args, "inputs", None):
        try:
            return [int(x) for x in args.inputs.replace(",", " ").split()]
        except ValueError:
            raise UsageError(
                f"--inputs must be comma/space separated integers, "
                f"got {args.inputs!r}"
            ) from None
    if getattr(args, "input_file", None):
        try:
            text = pathlib.Path(args.input_file).read_text()
        except OSError as exc:
            raise UsageError(f"--input-file: {exc}") from None
        try:
            return [int(x) for x in text.split()]
        except ValueError as exc:
            raise UsageError(
                f"--input-file {args.input_file}: expected "
                f"whitespace-separated integers ({exc})"
            ) from None
    return []


def _validated_program(module) -> Program:
    """Validate CFG invariants before anything downstream consumes the
    program; a malformed CFG is a usage error (exit 2) naming the offending
    procedure, never a raw traceback."""
    program = module.program
    try:
        validate_program(program)
    except CFGError as exc:
        raise UsageError(f"invalid control-flow graph: {exc}") from None
    return program


def _supervision_policy(args):
    """Build the executor's retry policy from CLI flags (``None`` defers
    to ``$REPRO_RETRIES`` / ``$REPRO_TASK_TIMEOUT_MS``)."""
    from repro.pipeline.executor import resolve_policy

    retries = getattr(args, "retries", None)
    if retries is not None and retries < 0:
        raise UsageError(f"--retries must be >= 0, got {retries}")
    timeout = getattr(args, "task_timeout_ms", None)
    if timeout is not None and timeout <= 0:
        raise UsageError(
            f"--task-timeout-ms must be a positive number of milliseconds, "
            f"got {timeout}"
        )
    if retries is None and timeout is None:
        return None
    return resolve_policy(retries=retries, task_timeout_ms=timeout)


def _install_store(args) -> None:
    """Install the on-disk artifact store named by ``--store`` (an
    explicit flag wins over ``$REPRO_STORE``; no flag defers to the
    environment)."""
    from repro.pipeline.artifacts import resolve_store_path, set_default_store

    if getattr(args, "store", None) is None:
        return
    set_default_store(resolve_store_path(args.store))


def _install_trace(args, argv: list[str] | None) -> None:
    """Start a JSONL trace if ``--trace`` (or ``$REPRO_TRACE``) asks for
    one.  ``main`` finalizes it — counters flush on exit, success or not."""
    from repro import obs

    label = " ".join(["repro", *(argv if argv is not None else sys.argv[1:])])
    obs.start_trace(getattr(args, "trace", None), label=label)


def cmd_compile(args) -> int:
    module = compile_source(_read_source(args.file))
    program = _validated_program(module)
    rows = []
    for proc in program:
        cfg = proc.cfg
        if args.simplify:
            simplified, result = simplify_procedure(proc)
            cfg = simplified.cfg
            note = (f"-{result.merged_blocks + result.pruned_blocks} blocks"
                    if result.merged_blocks or result.pruned_blocks else "")
        else:
            note = ""
        rows.append([
            proc.name, len(cfg), len(proc.branch_sites()),
            cfg.total_body_words(), note,
        ])
        if args.dot:
            out = pathlib.Path(args.dot)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{proc.name}.dot").write_text(
                cfg_to_dot(cfg, name=proc.name)
            )
    print(format_table(
        ["procedure", "blocks", "branch sites", "body words", "simplify"],
        rows,
    ))
    if args.dot:
        print(f"wrote DOT files to {args.dot}/")
    return 0


def cmd_run(args) -> int:
    module = compile_source(_read_source(args.file))
    result, profile = run_and_profile(module, _parse_inputs(args))
    print(f"returned: {result.returned}")
    if result.outputs:
        shown = ", ".join(str(v) for v in result.outputs[:20])
        suffix = " ..." if len(result.outputs) > 20 else ""
        print(f"outputs:  {shown}{suffix}")
    print(f"blocks executed: {result.blocks_executed}")
    print(f"instructions executed: {result.instructions_executed}")
    print(f"branches executed: {profile.executed_branches(module.program)}")
    if args.profile_out:
        pathlib.Path(args.profile_out).write_text(profile.to_json())
        print(f"profile written to {args.profile_out}")
    return 0


def _load_profile(args, module) -> ProgramProfile:
    if args.profile:
        profile = ProgramProfile.from_json(
            pathlib.Path(args.profile).read_text()
        )
        profile.check_against(module.program)
        return profile
    _, profile = run_and_profile(module, _parse_inputs(args))
    return profile


def cmd_align(args) -> int:
    policy = _supervision_policy(args)
    _install_store(args)
    module = compile_source(_read_source(args.file))
    program = _validated_program(module)
    model = get_model(args.model)
    training = _load_profile(args, module)
    testing = training
    predictors = train_predictors(program, training)
    if args.cross_profile:
        testing = ProgramProfile.from_json(
            pathlib.Path(args.cross_profile).read_text()
        )
        testing.check_against(program)

    methods = [args.method] if args.method != "all" else list(ALIGN_METHODS)
    if "original" not in methods:
        methods.insert(0, "original")
    rows = []
    baseline = None
    score_baseline = None
    for method in methods:
        layouts = align_program(
            program, training, method=method, model=model,
            effort=args.effort, jobs=args.jobs, policy=policy,
        )
        penalty = evaluate_program(
            program, layouts, testing, model, predictors=predictors
        )
        score = exttsp_program_score(program, layouts, testing)
        if baseline is None:
            baseline = penalty.total or 1.0
            score_baseline = score or 1.0
        rows.append([
            method, penalty.total, penalty.total / baseline,
            score, score / score_baseline,
            penalty.breakdown.redirect, penalty.breakdown.mispredict,
            penalty.breakdown.jump,
        ])
    if args.bound:
        bound = lower_bound_program(
            program, training, model=model, jobs=args.jobs, policy=policy
        )
        rows.append(["(lower bound)", bound.total, bound.total / baseline,
                     "", "", "", "", ""])
    print(format_table(
        ["method", "penalty cycles", "normalized", "ext-tsp score",
         "norm", "redirect", "mispredict", "jump"],
        rows,
        title=f"branch alignment under {model.name}"
        + (" (cross-validated)" if args.cross_profile else ""),
    ))
    if args.details:
        from repro.core.report import describe_program

        method = methods[-1]
        layouts = align_program(
            program, training, method=method, model=model,
            effort=args.effort, jobs=args.jobs, policy=policy,
        )
        for name, report in describe_program(
            program, layouts, testing, model
        ).items():
            print()
            print(format_table(
                ["pos", "block", "was", "ends with", "penalty", "note"],
                report.rows(),
                title=(
                    f"{name} [{method}]: {report.blocks_moved} blocks moved, "
                    f"{report.jumps_deleted} jumps deleted, "
                    f"{report.jumps_inserted} inserted, "
                    f"{report.fixups} fixups"
                ),
            ))
    return 0


def _suite_specs(args) -> list[tuple[str, str, str | None]]:
    """Parse and validate the suite CASE arguments up front, so an unknown
    benchmark or data set fails fast instead of becoming a skipped row."""
    from repro.workloads.suite import all_cases, get_benchmark

    if args.cases == ["all"]:
        return [(bm, ds, None) for bm, ds in all_cases()]
    specs: list[tuple[str, str, str | None]] = []
    for case in args.cases:
        if "." not in case:
            raise UsageError(
                f"CASE must look like 'com.in' (or 'all'), got {case!r}"
            )
        benchmark, dataset = case.split(".", 1)
        spec = get_benchmark(benchmark)
        for ds in (dataset, args.train):
            if ds is not None and ds not in spec.dataset_names():
                spec.inputs(ds)  # raises UnknownNameError with known names
        specs.append((benchmark, dataset, args.train))
    return specs


def cmd_suite(args) -> int:
    from repro.budget import Budget
    from repro.experiments import ExperimentCheckpoint, run_cases

    specs = _suite_specs(args)
    policy = _supervision_policy(args)
    _install_store(args)
    if args.resume and not args.checkpoint:
        raise UsageError("--resume requires --checkpoint")
    budget = None
    if args.budget_ms is not None:
        if args.budget_ms <= 0:
            raise UsageError(
                f"--budget-ms must be a positive number of milliseconds, "
                f"got {args.budget_ms}"
            )
        budget = Budget(wall_ms=args.budget_ms)
    checkpoint = (
        ExperimentCheckpoint(args.checkpoint, resume=args.resume)
        if args.checkpoint
        else None
    )

    result = run_cases(
        specs, budget=budget, checkpoint=checkpoint, jobs=args.jobs,
        policy=policy,
    )
    for case in result.cases:
        rows = []
        for method, outcome in case.methods.items():
            rows.append([
                method, outcome.penalty, case.normalized_penalty(method),
                outcome.exttsp, case.normalized_exttsp(method),
                outcome.cycles, case.normalized_cycles(method),
                outcome.timing.icache_misses,
                outcome.degraded_summary or "-",
                outcome.retried or "-",
                len(outcome.quarantined) or "-",
            ])
        rows.append(["(lower bound)", case.lower_bound, case.normalized_bound,
                     "", "", "", "", "", "", "", ""])
        title = f"{case.label} (trained on {case.train_dataset})"
        print(format_table(
            ["method", "penalty", "norm", "ext-tsp", "norm", "sim cycles",
             "norm", "i$ misses", "degraded", "retried", "quarantined"],
            rows, title=title,
        ))
        for line in sorted(
            {w for outcome in case.methods.values() for w in outcome.warnings}
        ):
            print(f"warning: {line}")
        for method, outcome in case.methods.items():
            for proc, error in sorted(outcome.quarantined.items()):
                print(
                    f"quarantined: {case.label} {proc} [{method}]: {error}",
                    file=sys.stderr,
                )
    for skip in result.skipped:
        print(
            f"skipped: {skip.label} after {skip.attempts} attempts "
            f"({skip.error})",
            file=sys.stderr,
        )
    if checkpoint is not None:
        print(
            f"checkpoint {args.checkpoint}: {result.from_checkpoint} case(s) "
            f"resumed, {result.computed} computed"
        )
    return 0 if result.cases else 1


def cmd_serve(args) -> int:
    from repro.service import AlignmentService, ServiceConfig, serve
    from repro.service.shard import ShardSupervisor, ShardTierConfig

    policy = _supervision_policy(args)
    _install_store(args)
    if args.capacity < 1:
        raise UsageError(f"--capacity must be >= 1, got {args.capacity}")
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise UsageError(
            f"--deadline-ms must be a positive number of milliseconds, "
            f"got {args.deadline_ms}"
        )
    if args.breaker_threshold < 1:
        raise UsageError(
            f"--breaker-threshold must be >= 1, got {args.breaker_threshold}"
        )
    if args.breaker_cooldown < 1:
        raise UsageError(
            f"--breaker-cooldown must be >= 1, got {args.breaker_cooldown}"
        )
    if args.shards < 1:
        raise UsageError(f"--shards must be >= 1, got {args.shards}")
    if args.hedge_after_ms is not None and args.hedge_after_ms < 0:
        raise UsageError(
            f"--hedge-after-ms must be >= 0, got {args.hedge_after_ms}"
        )
    if args.journal_compact_bytes is not None and args.journal_compact_bytes < 1:
        raise UsageError(
            f"--journal-compact-bytes must be >= 1, "
            f"got {args.journal_compact_bytes}"
        )
    service_config = ServiceConfig(
        capacity=args.capacity,
        jobs=args.jobs,
        policy=policy,
        default_deadline_ms=args.deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        verify=not args.no_verify,
        journal_path=args.journal,
        journal_compact_bytes=args.journal_compact_bytes,
    )
    if args.shards == 1 and args.journal_dir is None:
        service = AlignmentService(service_config)
        return serve(service, host=args.host, port=args.port)
    # Shard tier: sharding needs one journal per shard, so the single
    # --journal path cannot express durability for shards > 1.
    if args.journal is not None and args.shards > 1:
        raise UsageError(
            "--journal names one file but each shard needs its own "
            "journal; use --journal-dir with --shards"
        )
    tier = ShardSupervisor(ShardTierConfig(
        shards=args.shards,
        journal_dir=args.journal_dir,
        journal_compact_bytes=args.journal_compact_bytes,
        hedge_after_ms=args.hedge_after_ms,
        service=service_config,
    ))
    return serve(tier, host=args.host, port=args.port)


def cmd_request(args) -> int:
    import urllib.error

    from repro.errors import ServiceRetryExhaustedError
    from repro.service.client import (
        RetryPolicy as ClientRetryPolicy,
        request_alignment,
        request_with_retry,
    )

    payload: dict = {
        "source": _read_source(args.file),
        "method": args.method,
        "model": args.model,
        "effort": args.effort,
        "seed": args.seed,
    }
    inputs = _parse_inputs(args)
    if inputs:
        payload["inputs"] = inputs
    if args.profile:
        payload["profile"] = pathlib.Path(args.profile).read_text()
    if args.deadline_ms is not None:
        if args.deadline_ms <= 0:
            raise UsageError(
                f"--deadline-ms must be a positive number of milliseconds, "
                f"got {args.deadline_ms}"
            )
        payload["deadline_ms"] = args.deadline_ms
    if args.bound:
        payload["bound"] = True

    if args.retries < 0:
        raise UsageError(f"--retries must be >= 0, got {args.retries}")
    if args.retry_delay_ms < 0:
        raise UsageError(
            f"--retry-delay-ms must be >= 0, got {args.retry_delay_ms}"
        )
    try:
        if args.retries:
            # Retries ride the server's idempotency keys: resending the
            # same payload across a restart is answered from the journal,
            # never solved twice.
            status, response = request_with_retry(
                args.url,
                payload,
                policy=ClientRetryPolicy(
                    attempts=args.retries + 1,
                    base_delay_s=args.retry_delay_ms / 1000.0,
                ),
                timeout=args.timeout,
            )
        else:
            status, response = request_alignment(
                args.url, payload, timeout=args.timeout
            )
    except ServiceRetryExhaustedError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response, indent=1, sort_keys=True))
    elif status == 200 and response.get("status") == "ok":
        penalty = response.get("penalty", {})
        degraded = response.get("degraded", {})
        rows = [[
            response.get("served_by"),
            penalty.get("total"),
            response.get("retried", 0) or "-",
            len(response.get("quarantined", {})) or "-",
            ("yes" if response.get("verified") else "no"),
        ]]
        print(format_table(
            ["served by", "penalty cycles", "retried", "quarantined",
             "verified"],
            rows,
            title=f"request {response.get('id')} "
                  f"({len(response.get('layouts', {}))} procedure(s), "
                  f"{response.get('elapsed_ms')} ms)",
        ))
        for proc, rung in sorted(degraded.items()):
            print(f"degraded: {proc}: {rung}")
    else:
        detail = response.get("error") or response.get("violations") or response
        print(
            f"error: service returned {status} "
            f"({response.get('status', 'error')}): {detail}",
            file=sys.stderr,
        )
    if status == 200:
        return 0
    return 2 if status == 400 else 1


def cmd_trace(args) -> int:
    from repro import obs

    if args.trace_command == "validate":
        lines = pathlib.Path(args.file).read_text().splitlines()
        problems = obs.validate_trace_lines(lines)
        if problems:
            for problem in problems:
                print(f"{args.file}: {problem}", file=sys.stderr)
            print(
                f"{args.file}: {len(problems)} schema problem(s)",
                file=sys.stderr,
            )
            return 1
        events = sum(1 for line in lines if line.strip())
        print(f"{args.file}: {events} event(s), schema OK")
        return 0
    try:
        print(obs.summarize_trace(args.file))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _chaos_workload(args) -> "object":
    from repro.chaos import WORKLOAD_NAMES, WorkloadConfig

    if args.workload not in WORKLOAD_NAMES:
        raise UsageError(
            f"unknown workload {args.workload!r} "
            f"(want one of {', '.join(WORKLOAD_NAMES)})"
        )
    return WorkloadConfig(
        name=args.workload,
        requests=args.requests,
        shards=args.shards,
        jobs=args.jobs,
    )


def _parse_schedule(text: str):
    from repro.chaos import FaultSchedule

    try:
        return FaultSchedule.parse(text)
    except ValueError as exc:
        raise UsageError(str(exc)) from None


def cmd_chaos_explore(args) -> int:
    from repro.chaos import (
        ExploreConfig,
        Explorer,
        load_corpus,
        save_reproducer,
        shrink,
    )

    workload = _chaos_workload(args)
    extra = []
    if args.corpus:
        for entry in load_corpus(args.corpus):
            extra.append(entry.schedule)
    config = ExploreConfig(
        workload=workload,
        singles_per_site=args.singles_per_site,
        pairs=args.pairs,
        extra=extra,
    )
    explorer = Explorer(config)

    def progress(index: int, total: int, schedule) -> None:
        print(f"[{index + 1}/{total}] {schedule.schedule_id}", flush=True)

    report = explorer.explore(progress=progress if args.verbose else None)
    sites = report.space.sites()
    print(f"fault space: {len(sites)} site(s) reached")
    rows = [
        [site, str(report.space.total(site)),
         ",".join(report.space.scopes(site))]
        for site in sites
    ]
    print(format_table(["site", "consultations", "scopes"], rows))
    print(
        f"replayed {len(report.reports)} schedule(s): "
        f"{len(report.reports) - len(report.failures)} ok, "
        f"{len(report.failures)} failing"
    )
    minimized = []
    if report.failures and args.corpus:
        _, reference = explorer.discover()

        def fails(candidate) -> bool:
            return not explorer.run_schedule(candidate, reference).ok

        by_id = {r.schedule_id: r for r in report.reports}
        for schedule in explorer.schedules(report.space):
            inv = by_id.get(schedule.schedule_id)
            if inv is None or inv.ok:
                continue
            minimal = shrink(schedule, fails)
            final = explorer.run_schedule(minimal, reference)
            path = save_reproducer(
                args.corpus, minimal,
                workload=workload,
                failed=final.failed() or inv.failed(),
                note=f"minimized from {schedule.schedule_id}",
            )
            if path is not None:
                minimized.append((schedule.schedule_id,
                                  minimal.schedule_id, str(path)))
        for original, minimal_id, path in minimized:
            print(f"minimized {original} -> {minimal_id} ({path})")
    if args.out:
        payload = report.to_json()
        payload["canonical"] = report.canonical()
        pathlib.Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.out}")
    for failure in report.failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if report.failures else 0


def cmd_chaos_replay(args) -> int:
    from repro.chaos import ExploreConfig, Explorer, load_corpus

    schedules = []
    if args.schedule:
        schedules.append((_parse_schedule(args.schedule), None))
    if args.corpus:
        for entry in load_corpus(args.corpus):
            schedules.append((entry.schedule, entry))
    if not schedules:
        raise UsageError("nothing to replay: pass --schedule and/or --corpus")
    failures = 0
    for schedule, entry in schedules:
        workload = entry.workload if entry is not None else _chaos_workload(args)
        explorer = Explorer(ExploreConfig(workload=workload))
        _, reference = explorer.discover()
        inv = explorer.run_schedule(schedule, reference)
        origin = f" [{entry.path}]" if entry is not None else ""
        if inv.ok:
            print(f"ok   {schedule.schedule_id}{origin}")
        else:
            failures += 1
            print(f"FAIL {schedule.schedule_id}{origin}: "
                  f"{', '.join(inv.failed())}", file=sys.stderr)
            for name, verdict in sorted(inv.verdicts.items()):
                if not verdict["ok"]:
                    print(f"     {name}: {verdict['detail']}",
                          file=sys.stderr)
    return 1 if failures else 0


def cmd_chaos_shrink(args) -> int:
    from repro.chaos import ExploreConfig, Explorer, save_reproducer, shrink

    schedule = _parse_schedule(args.schedule)
    workload = _chaos_workload(args)
    explorer = Explorer(ExploreConfig(workload=workload))
    _, reference = explorer.discover()

    def fails(candidate) -> bool:
        return not explorer.run_schedule(candidate, reference).ok

    try:
        minimal = shrink(schedule, fails)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    final = explorer.run_schedule(minimal, reference)
    print(f"minimal failing schedule: {minimal.schedule_id}")
    print(f"failing invariants: {', '.join(final.failed()) or '(flaky?)'}")
    if args.corpus:
        path = save_reproducer(
            args.corpus, minimal, workload=workload,
            failed=final.failed(),
            note=f"minimized from {schedule.schedule_id}",
        )
        if path is not None:
            print(f"reproducer written to {path}")
        else:
            print("reproducer already in corpus")
    return 0


def cmd_journal_verify(args) -> int:
    from repro.service.scrub import scrub_path

    scrubs = scrub_path(args.path)
    if not scrubs:
        print(f"{args.path}: no journal files")
        return 0
    if args.json:
        print(json.dumps([s.to_json() for s in scrubs],
                         indent=2, sort_keys=True))
    else:
        rows = []
        for s in scrubs:
            state = "CORRUPT" if s.corrupt else (
                "torn-tail" if s.torn_tail else "ok"
            )
            rows.append([
                pathlib.Path(s.path).name, str(s.lines),
                str(s.records.get("admitted", 0)),
                str(s.completed), str(s.orphans), str(s.failed),
                str(len(s.interior_corrupt)), state,
            ])
        print(format_table(
            ["journal", "lines", "admitted", "completed", "orphans",
             "failed", "interior", "state"],
            rows,
        ))
    corrupt = [s for s in scrubs if s.corrupt]
    for s in corrupt:
        where = ("unreadable" if s.unreadable else
                 f"interior corruption at lines {s.interior_corrupt}")
        print(f"{s.path}: {where}", file=sys.stderr)
    torn = [s for s in scrubs if s.torn_tail and not s.corrupt]
    for s in torn:
        print(f"warning: {s.path}: torn final record (crash mid-append; "
              f"the next start absorbs it)", file=sys.stderr)
    return 2 if corrupt else 0


def _add_supervision_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget per procedure task before it is "
                             "quarantined (default: $REPRO_RETRIES or 2)")
    parser.add_argument("--task-timeout-ms", type=float, default=None,
                        metavar="MS",
                        help="per-task deadline; a task over it is retried, "
                             "then quarantined with its identity layout "
                             "(default: $REPRO_TASK_TIMEOUT_MS or none)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="on-disk artifact store ('auto' = ~/.cache/repro,"
                             " 'off' disables; default: $REPRO_STORE)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL observability trace (spans + "
                             "counters, merged across workers; 'off' "
                             "disables; default: $REPRO_TRACE)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Near-optimal intraprocedural branch alignment "
                    "(Young/Johnson/Karger/Smith, PLDI 1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and inspect a program")
    p_compile.add_argument("file")
    p_compile.add_argument("--dot", help="directory for per-procedure DOT files")
    p_compile.add_argument("--simplify", action="store_true",
                           help="run CFG simplification first")
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="execute a program under profiling")
    p_run.add_argument("file")
    p_run.add_argument("--inputs", help="comma/space separated integers")
    p_run.add_argument("--input-file", help="file of whitespace-separated ints")
    p_run.add_argument("--profile-out", help="write the edge profile (JSON)")
    p_run.set_defaults(func=cmd_run)

    p_align = sub.add_parser("align", help="align a program and report")
    p_align.add_argument("file")
    p_align.add_argument("--inputs")
    p_align.add_argument("--input-file")
    p_align.add_argument("--profile", help="training profile JSON (else runs the program)")
    p_align.add_argument("--cross-profile", help="evaluate penalties under this testing profile")
    p_align.add_argument("--method", default="all",
                         choices=(*ALIGN_METHODS, "all"))
    p_align.add_argument("--model", default="alpha21164",
                         choices=sorted(STANDARD_MODELS))
    p_align.add_argument("--effort", default="default",
                         choices=sorted(EFFORTS))
    p_align.add_argument("--bound", action="store_true",
                         help="also compute the certified lower bound")
    p_align.add_argument("--details", action="store_true",
                         help="per-block layout report for the last method")
    p_align.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="align procedures in N worker processes "
                              "(default: $REPRO_JOBS or 1); results are "
                              "identical for any N")
    _add_supervision_flags(p_align)
    p_align.set_defaults(func=cmd_align)

    p_suite = sub.add_parser("suite", help="run paper benchmark cases")
    p_suite.add_argument("cases", nargs="+", metavar="CASE",
                         help="e.g. com.in xli.q7, or 'all'")
    p_suite.add_argument("--train", help="train on this sibling data set")
    p_suite.add_argument("--budget-ms", type=float, default=None,
                         help="per-procedure solver deadline (milliseconds); "
                              "over-budget procedures degrade gracefully")
    p_suite.add_argument("--checkpoint",
                         help="persist completed cases to this JSON-lines file")
    p_suite.add_argument("--resume", action="store_true",
                         help="serve cases already in --checkpoint instead of "
                              "recomputing them")
    p_suite.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="solve procedures in N worker processes "
                              "(default: $REPRO_JOBS or 1); output and "
                              "checkpoints are identical for any N")
    _add_supervision_flags(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived alignment service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8421,
                         help="listen port (0 = ephemeral; the startup "
                              "line prints the bound port)")
    p_serve.add_argument("--capacity", type=int, default=16, metavar="N",
                         help="bounded request queue size; requests beyond "
                              "it are shed with HTTP 429 (default 16)")
    p_serve.add_argument("--deadline-ms", type=float, default=None,
                         metavar="MS",
                         help="default per-request deadline applied to "
                              "requests that do not carry their own; "
                              "deadlines degrade solves down the aligner "
                              "ladder instead of failing the request")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         metavar="N",
                         help="consecutive infrastructure failures (worker "
                              "crashes / task timeouts / quarantines) that "
                              "open an aligner's circuit breaker (default 3)")
    p_serve.add_argument("--breaker-cooldown", type=int, default=5,
                         metavar="N",
                         help="fallback-served requests before an open "
                              "breaker admits a half-open probe (default 5)")
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip per-response layout verification "
                              "(benchmarking only; verification is cheap)")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="write-ahead request journal (JSONL): makes "
                              "SIGKILL survivable — completed requests are "
                              "replayed from the journal on restart, "
                              "orphaned admissions re-enqueued, duplicate "
                              "payloads coalesced by idempotency key")
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes per align pass "
                              "(default: $REPRO_JOBS or 1)")
    p_serve.add_argument("--shards", type=int, default=1, metavar="N",
                         help="run N service workers behind an idempotency-"
                              "key-hash router with per-shard failure "
                              "isolation and automatic restart "
                              "(default 1: single service)")
    p_serve.add_argument("--journal-dir", default=None, metavar="DIR",
                         help="directory for per-shard write-ahead journals "
                              "(shard-<i>.jsonl); required instead of "
                              "--journal when --shards > 1")
    p_serve.add_argument("--journal-compact-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="compact a journal in place once it grows "
                              "past BYTES, rewriting only live records "
                              "(orphans + recent completions)")
    p_serve.add_argument("--hedge-after-ms", type=float, default=None,
                         metavar="MS",
                         help="duplicate a still-unanswered request to its "
                              "sibling shard after MS; first response wins "
                              "(needs --shards >= 2; default: off)")
    _add_supervision_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_request = sub.add_parser(
        "request", help="send one alignment request to a running service"
    )
    p_request.add_argument("file", help="program source to align")
    p_request.add_argument("--url", default="http://127.0.0.1:8421",
                           help="service base URL")
    p_request.add_argument("--inputs")
    p_request.add_argument("--input-file")
    p_request.add_argument("--profile",
                           help="training profile JSON file (else the "
                                "service profiles the program on --inputs)")
    p_request.add_argument("--method", default="tsp",
                           choices=tuple(ALIGN_METHODS))
    p_request.add_argument("--model", default="alpha21164",
                           choices=sorted(STANDARD_MODELS))
    p_request.add_argument("--effort", default="default",
                           choices=sorted(EFFORTS))
    p_request.add_argument("--seed", type=int, default=0)
    p_request.add_argument("--deadline-ms", type=float, default=None,
                           metavar="MS",
                           help="per-request deadline")
    p_request.add_argument("--bound", action="store_true",
                           help="also certify Held–Karp floors (verified "
                                "against the served costs)")
    p_request.add_argument("--timeout", type=float, default=600.0,
                           metavar="S", help="client-side wait (seconds)")
    p_request.add_argument("--retries", type=int, default=0, metavar="N",
                           help="retry shed/unready/unreachable answers up "
                                "to N times with capped exponential "
                                "backoff — enough to ride through a server "
                                "restart (default 0: fail fast)")
    p_request.add_argument("--retry-delay-ms", type=float, default=100.0,
                           metavar="MS",
                           help="base backoff before the first retry; "
                                "doubles per attempt, capped at 2s "
                                "(default 100)")
    p_request.add_argument("--json", action="store_true",
                           help="print the raw JSON response")
    p_request.set_defaults(func=cmd_request)

    p_trace = sub.add_parser("trace", help="inspect JSONL observability traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize",
        help="render per-stage timing, span-tree, and counter tables",
    )
    p_summarize.add_argument("file", metavar="TRACE.jsonl")
    p_summarize.set_defaults(func=cmd_trace)
    p_validate = trace_sub.add_parser(
        "validate", help="check every line against the event schema"
    )
    p_validate.add_argument("file", metavar="TRACE.jsonl")
    p_validate.set_defaults(func=cmd_trace)

    def _add_chaos_workload_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--workload", default="service-burst",
                            metavar="NAME",
                            help="workload to drive: service-burst (shard "
                                 "tier + store, the full fault surface) or "
                                 "pipeline-sweep (bare pipeline)")
        parser.add_argument("--requests", type=int, default=8, metavar="N",
                            help="requests per workload run (default 8)")
        parser.add_argument("--shards", type=int, default=2, metavar="N",
                            help="shards for service-burst (default 2)")
        parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="pipeline worker processes; canonical "
                                 "reports must be identical for any value "
                                 "(default 1)")

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-space exploration "
             "(discover -> schedule -> replay -> check invariants)",
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)
    p_explore = chaos_sub.add_parser(
        "explore",
        help="enumerate reached fault sites, replay single- and pairwise-"
             "fault schedules, check the invariant suite after each",
    )
    _add_chaos_workload_flags(p_explore)
    p_explore.add_argument("--singles-per-site", type=int, default=2,
                           metavar="K",
                           help="single-fault call indices scheduled per "
                                "site (default 2)")
    p_explore.add_argument("--pairs", type=int, default=12, metavar="N",
                           help="bounded pairwise schedule budget "
                                "(default 12; 0 disables)")
    p_explore.add_argument("--corpus", default=None, metavar="DIR",
                           help="replay this reproducer corpus too, and "
                                "write newly minimized reproducers into it")
    p_explore.add_argument("--out", default=None, metavar="REPORT.json",
                           help="write the full exploration report (space, "
                                "verdicts, canonical form) as JSON")
    p_explore.add_argument("--verbose", action="store_true",
                           help="print each schedule as it replays")
    p_explore.set_defaults(func=cmd_chaos_explore)
    p_replay = chaos_sub.add_parser(
        "replay",
        help="replay one schedule (site@index+site@index) and/or a corpus "
             "of minimized reproducers; exit 1 if any invariant fails",
    )
    _add_chaos_workload_flags(p_replay)
    p_replay.add_argument("--schedule", default=None, metavar="SPEC",
                          help="schedule to replay, e.g. "
                               "journal_enospc@3+shard_death@1")
    p_replay.add_argument("--corpus", default=None, metavar="DIR",
                          help="replay every committed reproducer (each "
                               "pins its own workload config)")
    p_replay.set_defaults(func=cmd_chaos_replay)
    p_shrink = chaos_sub.add_parser(
        "shrink",
        help="delta-debug a failing schedule down to a 1-minimal, "
             "index-lowered reproducer",
    )
    _add_chaos_workload_flags(p_shrink)
    p_shrink.add_argument("--schedule", required=True, metavar="SPEC",
                          help="the failing schedule to shrink")
    p_shrink.add_argument("--corpus", default=None, metavar="DIR",
                          help="write the minimized reproducer here")
    p_shrink.set_defaults(func=cmd_chaos_shrink)

    p_journal = sub.add_parser(
        "journal", help="offline write-ahead journal tools"
    )
    journal_sub = p_journal.add_subparsers(
        dest="journal_command", required=True
    )
    p_verify = journal_sub.add_parser(
        "verify",
        help="integrity audit of a journal file or directory: per-line "
             "sha256, schema version, orphan/completion accounting; "
             "exit 2 on corruption (a torn tail alone is a warning)",
    )
    p_verify.add_argument("path", metavar="JOURNAL_OR_DIR")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the audit as JSON")
    p_verify.set_defaults(func=cmd_journal_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Only align/suite carry --trace; commands without it (including
        # `trace summarize` itself) never open a sink.
        if hasattr(args, "trace"):
            _install_trace(args, argv)
        return args.func(args)
    except (UsageError, ProfileValidationError) as exc:
        # ProfileValidationError is bad *input* (a profile no run could
        # produce), so it exits 2 like any other malformed argument.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (LangError, ReproError, FileNotFoundError) as exc:
        # Typed failures only — a genuine KeyError is a bug and should
        # propagate as a traceback, not masquerade as a user error.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # Counter totals flush into the trace whether the command
        # succeeded or not; a no-op when no trace is active.
        obs.finish_trace()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
