"""Solver deadlines: wall-clock and iteration budgets.

A :class:`Budget` is an immutable *spec* — "at most 250 ms and 10 000
iterations".  Starting it yields a :class:`BudgetTimer`, the mutable
object the solvers actually consult at iteration boundaries:

    budget = Budget(wall_ms=250)
    timer = budget.start()
    for ...:
        timer.tick()          # raises SolverBudgetExceeded on expiry
        ...

Solvers that can degrade *internally* (Held–Karp keeps its best certified
bound, branch-and-bound keeps its incumbent) use the non-raising
:attr:`BudgetTimer.expired` check instead and return their best-so-far
result; only the heuristic tour search raises, because its caller — the
TSP aligner — owns the degradation ladder.

The clock is injectable so tests (and the fault harness) can expire a
budget deterministically without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import SolverBudgetExceeded

Clock = Callable[[], float]


@dataclass(frozen=True)
class Budget:
    """Per-solve resource limits.  ``None`` means unlimited."""

    wall_ms: float | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if self.wall_ms is not None and self.wall_ms < 0:
            raise ValueError("wall_ms must be non-negative")
        if self.max_iterations is not None and self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")

    @property
    def unlimited(self) -> bool:
        return self.wall_ms is None and self.max_iterations is None

    def start(self, *, clock: Clock | None = None) -> "BudgetTimer":
        """Begin the countdown: the deadline is measured from this call."""
        return BudgetTimer(self, clock=clock)

    def split(self, n: int) -> "Budget":
        """Divide this budget across ``n`` sequential units of work.

        A request-level deadline becomes a per-procedure solver budget by
        splitting it over the procedures to align: each share gets
        ``wall_ms / n`` and ``max_iterations / n`` (floored, minimum 1 so
        a share can never be "free").  Unlimited dimensions stay
        unlimited.  The split is conservative — shares never overlap, so
        the sum of the parts respects the whole even when the parts run
        back to back.
        """
        if n < 1:
            raise ValueError("split requires n >= 1")
        if n == 1 or self.unlimited:
            return self
        wall = None if self.wall_ms is None else self.wall_ms / n
        iters = (
            None
            if self.max_iterations is None
            else max(1, self.max_iterations // n)
        )
        return Budget(wall_ms=wall, max_iterations=iters)


#: The default budget: no limits (the seed behaviour).
UNLIMITED = Budget()


class BudgetTimer:
    """A running countdown against one :class:`Budget`."""

    def __init__(self, budget: Budget, *, clock: Clock | None = None):
        self.budget = budget
        self._clock: Clock = clock or time.monotonic
        self._started = self._clock()
        self.iterations = 0

    @property
    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    @property
    def expired(self) -> bool:
        """Non-raising check, for solvers that degrade internally."""
        budget = self.budget
        if budget.wall_ms is not None and self.elapsed_ms >= budget.wall_ms:
            return True
        if (
            budget.max_iterations is not None
            and self.iterations >= budget.max_iterations
        ):
            return True
        return False

    def tick(self, n: int = 1, *, where: str = "solver") -> None:
        """Count ``n`` iterations and raise on an exhausted budget."""
        self.iterations += n
        self.check(where=where)

    def check(self, *, where: str = "solver") -> None:
        if self.expired:
            raise SolverBudgetExceeded(
                f"{where}: budget exhausted after "
                f"{self.elapsed_ms:.1f} ms / {self.iterations} iterations "
                f"(limits: wall_ms={self.budget.wall_ms}, "
                f"max_iterations={self.budget.max_iterations})",
                where=where,
                elapsed_ms=self.elapsed_ms,
                iterations=self.iterations,
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Supervised-execution limits for one task: how many times to retry a
    failed attempt, how long one attempt may run, and how long to back off
    between attempts.

    Like :class:`Budget`, a policy is an immutable *spec*; the executor owns
    the mutable attempt state.  Backoff is deterministic (pure exponential,
    capped, no jitter) so retry schedules — and therefore logs and tests —
    are reproducible.
    """

    #: Retry attempts after the first try (0 = fail fast).
    retries: int = 2
    #: Outer wall-clock guard per attempt, enforced by the executor in
    #: parallel mode.  ``None`` = no outer deadline (cooperative budgets
    #: still apply).
    task_timeout_ms: float | None = None
    #: First backoff delay; doubles per subsequent retry.
    backoff_base_ms: float = 25.0
    #: Ceiling on any single backoff delay.
    backoff_cap_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.task_timeout_ms is not None and self.task_timeout_ms <= 0:
            raise ValueError("task_timeout_ms must be positive")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff must be non-negative")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_ms(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (1-based), capped exponential:
        base, 2·base, 4·base, ... never exceeding ``backoff_cap_ms``."""
        if retry_number <= 0:
            return 0.0
        return min(
            self.backoff_cap_ms,
            self.backoff_base_ms * (2 ** (retry_number - 1)),
        )


#: The default supervision policy: two retries, no outer deadline.
DEFAULT_RETRY_POLICY = RetryPolicy()


def ensure_timer(
    budget: "Budget | BudgetTimer | None",
) -> BudgetTimer | None:
    """Normalize a budget argument: specs start counting now, timers pass
    through (so one deadline can span several solver calls), ``None`` stays
    ``None`` (no budget checks at all — the fast path)."""
    if budget is None:
        return None
    if isinstance(budget, BudgetTimer):
        return budget
    if budget.unlimited:
        return None
    return budget.start()
