"""Tokenizer for the tiny benchmark language.

The language exists to generate realistic CFGs and traces (see DESIGN.md §2:
it substitutes for the paper's SUIF/C frontend).  It is a small, C-like
imperative language: functions, integers/floats, global scalars and arrays,
``if``/``while``/``switch``, short-circuit booleans, and three I/O builtins
(``input``, ``input_len``, ``output``).
"""

from __future__ import annotations

from dataclasses import dataclass


class LangError(Exception):
    """Raised for lexical, syntactic, or semantic errors in source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


KEYWORDS = {
    "fn", "var", "arr", "global", "if", "else", "while", "for", "switch",
    "case", "default", "return", "break", "continue",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str       # 'ident', 'int', 'float', 'op', 'keyword', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}@{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, raising :class:`LangError` on bad input."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                seen_dot = seen_dot or source[i] == "."
                i += 1
            text = source[start:i]
            kind = "float" if "." in text else "int"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise LangError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
