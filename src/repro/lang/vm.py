"""Block-level virtual machine for compiled tiny-language modules.

The VM is the profiling substrate: it executes a
:class:`~repro.lang.lower.CompiledModule` on concrete inputs and records the
block-level execution trace and exact per-procedure edge counts through a
:class:`~repro.profiles.trace.TraceBuilder` — the moral equivalent of the
paper's HALT-instrumented profiling runs.

Semantics: integers are unbounded Python ints (``/`` and ``%`` floor like
Python, documented as a dialect choice); floats are IEEE doubles;
conditions treat any non-zero value as true.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults
from repro.cfg.blocks import TerminatorKind
from repro.errors import ReproError
from repro.lang.lexer import LangError
from repro.lang.lower import CompiledModule
from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.trace import TraceBuilder


class VMError(LangError):
    """Raised for runtime errors (bad index, division by zero, runaway)."""


class VMRunawayError(VMError, ReproError):
    """A run exceeded its block or call-depth limit (a loop that never
    terminates under this input, or injected via :mod:`repro.faults`).

    Part of the :mod:`repro.errors` taxonomy: experiment runners treat a
    runaway case as a per-case failure (retry once, then skip), never as a
    reason to abort a whole figure run.
    """


def _div(a, b):
    if b == 0:
        raise VMError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


def _mod(a, b):
    if b == 0:
        raise VMError("modulo by zero")
    return a % b


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "%": _mod,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}

_UNOPS = {
    "-": lambda a: -a,
    "!": lambda a: 0 if a else 1,
    "~": lambda a: ~a,
}


@dataclass
class RunResult:
    """Outcome of one VM run."""

    returned: int
    outputs: list = field(default_factory=list)
    blocks_executed: int = 0
    instructions_executed: int = 0
    trace: TraceBuilder | None = None


def execute(
    module: CompiledModule,
    inputs: list[int] | None = None,
    *,
    trace: bool = True,
    keep_events: bool = True,
    keep_transitions: bool = False,
    max_blocks: int = 5_000_000,
    max_call_depth: int = 500,
) -> RunResult:
    """Run ``module`` on ``inputs``; returns outputs, counters, and trace."""
    program = module.program
    inputs = list(inputs or [])
    n_inputs = len(inputs)
    globals_: dict[str, object] = dict(module.globals_init)
    arrays = {name: [0] * size for name, size in module.arrays.items()}
    outputs: list = []
    builder = (
        TraceBuilder(keep_events=keep_events, keep_transitions=keep_transitions)
        if trace
        else None
    )

    counters = {"blocks": 0, "instructions": 0}
    max_blocks = faults.vm_block_limit(max_blocks)

    def resolve(operand, frame):
        tag = operand[0]
        if tag == "l":
            return frame[operand[1]]
        if tag == "c":
            return operand[1]
        return globals_[operand[1]]

    def write(dst, value, frame):
        if dst[0] == "l":
            frame[dst[1]] = value
        else:
            globals_[dst[1]] = value

    def call(fname: str, args: list, depth: int):
        if depth > max_call_depth:
            raise VMRunawayError(f"call depth exceeded ({max_call_depth})")
        cfg = program[fname].cfg
        frame = [0] * module.frame_sizes[fname]
        frame[: len(args)] = args
        if builder is not None:
            builder.enter(fname)
        block_id = cfg.entry
        while True:
            counters["blocks"] += 1
            if counters["blocks"] > max_blocks:
                raise VMRunawayError(
                    f"execution exceeded {max_blocks} blocks"
                )
            if builder is not None:
                builder.visit(block_id)
            block = cfg.block(block_id)
            for ins in block.instructions:
                counters["instructions"] += 1
                op = ins[0]
                if op == "mov":
                    write(ins[1], resolve(ins[2], frame), frame)
                elif op == "bin":
                    try:
                        value = _BINOPS[ins[1]](
                            resolve(ins[3], frame), resolve(ins[4], frame)
                        )
                    except TypeError as exc:
                        raise VMError(
                            f"invalid operand types for {ins[1]!r}: {exc}"
                        ) from exc
                    write(ins[2], value, frame)
                elif op == "un":
                    try:
                        value = _UNOPS[ins[1]](resolve(ins[3], frame))
                    except TypeError as exc:
                        raise VMError(
                            f"invalid operand type for {ins[1]!r}: {exc}"
                        ) from exc
                    write(ins[2], value, frame)
                elif op == "load":
                    array = arrays[ins[2]]
                    index = resolve(ins[3], frame)
                    if not 0 <= index < len(array):
                        raise VMError(
                            f"array index {index} out of bounds for "
                            f"{ins[2]!r}[{len(array)}]"
                        )
                    write(ins[1], array[index], frame)
                elif op == "store":
                    array = arrays[ins[1]]
                    index = resolve(ins[2], frame)
                    if not 0 <= index < len(array):
                        raise VMError(
                            f"array index {index} out of bounds for "
                            f"{ins[1]!r}[{len(array)}]"
                        )
                    array[index] = resolve(ins[3], frame)
                elif op == "call":
                    args_values = [resolve(a, frame) for a in ins[3]]
                    write(ins[1], call(ins[2], args_values, depth + 1), frame)
                elif op == "in":
                    index = resolve(ins[2], frame)
                    if not 0 <= index < n_inputs:
                        raise VMError(f"input index {index} out of bounds")
                    write(ins[1], inputs[index], frame)
                elif op == "inlen":
                    write(ins[1], n_inputs, frame)
                elif op == "out":
                    outputs.append(resolve(ins[1], frame))
                else:  # pragma: no cover - lowering emits only known ops
                    raise VMError(f"unknown instruction {op!r}")

            term = block.terminator
            kind = term.kind
            if kind is TerminatorKind.RETURN:
                value = resolve(term.operand, frame) if term.operand else 0
                if builder is not None:
                    builder.leave()
                return value
            if kind is TerminatorKind.UNCONDITIONAL:
                block_id = term.targets[0]
            elif kind is TerminatorKind.CONDITIONAL:
                condition = resolve(term.operand, frame)
                block_id = term.targets[0] if condition else term.targets[1]
            else:  # MULTIWAY jump table
                selector, base = term.operand
                offset = resolve(selector, frame) - base
                if 0 <= offset < len(term.targets) - 1:
                    block_id = term.targets[offset]
                else:
                    block_id = term.targets[-1]

    returned = call(program.main, [], 0)
    result = RunResult(
        returned=returned,
        outputs=outputs,
        blocks_executed=counters["blocks"],
        instructions_executed=counters["instructions"],
        trace=builder,
    )
    return result


def run_and_profile(
    module: CompiledModule,
    inputs: list[int] | None = None,
    *,
    keep_events: bool = True,
    max_blocks: int = 5_000_000,
) -> tuple[RunResult, ProgramProfile]:
    """Execute and return (result, edge profile) — the common profiling call."""
    result = execute(
        module, inputs, trace=True, keep_events=keep_events, max_blocks=max_blocks
    )
    assert result.trace is not None
    profile = ProgramProfile()
    for proc, edges in result.trace.edge_counts.items():
        edge_profile = profile.profile(proc)
        for (src, dst), count in edges.items():
            edge_profile.add(src, dst, count)
    for proc in module.program:
        profile.call_counts[proc.name] = result.trace.activation_counts.get(
            proc.name, 0
        )
    profile.call_pairs = dict(result.trace.call_pair_counts)
    return result, profile
