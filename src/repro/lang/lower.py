"""AST → CFG lowering.

Each function becomes a :class:`~repro.cfg.graph.Procedure` whose blocks
hold flat VM instructions (tuples) and whose terminators carry the operand
needed at run time (condition operand, switch selector).  Control
constructs lower the usual way:

* ``if``/``while`` — conditional terminators; short-circuit ``&&``/``||``
  conditions lower directly into branch chains (extra blocks, as a real
  compiler emits),
* ``switch`` — a jump table (MULTIWAY terminator) when the case values are
  dense, otherwise an if-chain; jump tables are the program's register
  branches,
* ``break``/``continue`` — jumps to the enclosing loop's exit/header.

Instruction tuples (dst/src operands are ``('l', slot)`` locals,
``('c', value)`` constants, ``('g', name)`` global scalars):

    ('mov', dst, src)
    ('bin', op, dst, a, b)
    ('un', op, dst, a)
    ('load', dst, array, index)
    ('store', array, index, src)
    ('call', dst, fname, (args...))
    ('in', dst, index)        # input(i)
    ('inlen', dst)            # input_len()
    ('out', src)              # output(x)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.blocks import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Procedure, Program
from repro.lang import ast_nodes as ast
from repro.lang.lexer import LangError
from repro.lang.parser import parse

_BUILTINS = {"input": 1, "input_len": 0, "output": 1}

#: A switch lowers to a jump table when the value span is at most this much
#: denser-than-sparse bound (mirrors real compiler density heuristics).
def _dense_enough(n_cases: int, span: int) -> bool:
    return n_cases >= 3 and span <= max(16, 3 * n_cases)


@dataclass
class CompiledModule:
    """A compiled tiny-language module: the CFG program plus the run-time
    environment the VM needs (array sizes, global initial values, frame
    sizes)."""

    program: Program
    arrays: dict[str, int] = field(default_factory=dict)
    globals_init: dict[str, int] = field(default_factory=dict)
    frame_sizes: dict[str, int] = field(default_factory=dict)


class _ProtoBlock:
    __slots__ = ("block_id", "instructions", "terminator", "label")

    def __init__(self, block_id: int, label: str = ""):
        self.block_id = block_id
        self.instructions: list[tuple] = []
        self.terminator: Terminator | None = None
        self.label = label


class _FunctionLowering:
    def __init__(self, module: "_ModuleContext", decl: ast.FunctionDecl):
        self.module = module
        self.decl = decl
        self.blocks: list[_ProtoBlock] = []
        self.current = self.new_block("entry")
        self.locals: dict[str, int] = {}
        self.n_slots = 0
        #: (continue_target, break_target) per enclosing while loop.
        self.loop_stack: list[tuple[int, int]] = []
        for param in decl.params:
            if param in self.locals:
                raise LangError(f"duplicate parameter {param!r}", decl.line)
            self.locals[param] = self._new_slot()

    # -- low-level helpers ----------------------------------------------------

    def _new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def new_temp(self) -> tuple[str, int]:
        return ("l", self._new_slot())

    def new_block(self, label: str = "") -> _ProtoBlock:
        block = _ProtoBlock(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def emit(self, instruction: tuple) -> None:
        self.current.instructions.append(instruction)

    def seal(self, terminator: Terminator) -> None:
        if self.current.terminator is None:
            self.current.terminator = terminator

    def seal_jump(self, target: _ProtoBlock) -> None:
        self.seal(Terminator(TerminatorKind.UNCONDITIONAL, (target.block_id,)))

    def position_at(self, block: _ProtoBlock) -> None:
        self.current = block

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> tuple:
        if isinstance(expr, ast.IntLit):
            return ("c", expr.value)
        if isinstance(expr, ast.FloatLit):
            return ("c", expr.value)
        if isinstance(expr, ast.VarRef):
            return self._read_var(expr.name, expr.line)
        if isinstance(expr, ast.Index):
            self._check_array(expr.array, expr.line)
            index = self.lower_expr(expr.index)
            dst = self.new_temp()
            self.emit(("load", dst, expr.array, index))
            return dst
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            dst = self.new_temp()
            self.emit(("un", expr.op, dst, operand))
            return dst
        if isinstance(expr, ast.Binary):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dst = self.new_temp()
            self.emit(("bin", expr.op, dst, left, right))
            return dst
        if isinstance(expr, ast.Logical):
            return self._materialize_logical(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise LangError(f"cannot lower expression {expr!r}", expr.line)

    def _read_var(self, name: str, line: int) -> tuple:
        if name in self.locals:
            return ("l", self.locals[name])
        if name in self.module.globals_init:
            return ("g", name)
        raise LangError(f"undefined variable {name!r}", line)

    def _check_array(self, name: str, line: int) -> None:
        if name not in self.module.arrays:
            raise LangError(f"undefined array {name!r}", line)

    def _lower_call(self, expr: ast.Call) -> tuple:
        args = [self.lower_expr(arg) for arg in expr.args]
        dst = self.new_temp()
        if expr.name in _BUILTINS:
            arity = _BUILTINS[expr.name]
            if len(args) != arity:
                raise LangError(
                    f"builtin {expr.name!r} takes {arity} argument(s), "
                    f"got {len(args)}", expr.line,
                )
            if expr.name == "input":
                self.emit(("in", dst, args[0]))
            elif expr.name == "input_len":
                self.emit(("inlen", dst))
            else:
                self.emit(("out", args[0]))
                self.emit(("mov", dst, ("c", 0)))
            return dst
        arity = self.module.functions.get(expr.name)
        if arity is None:
            raise LangError(f"undefined function {expr.name!r}", expr.line)
        if len(args) != arity:
            raise LangError(
                f"function {expr.name!r} takes {arity} argument(s), "
                f"got {len(args)}", expr.line,
            )
        self.emit(("call", dst, expr.name, tuple(args)))
        return dst

    def _materialize_logical(self, expr: ast.Logical) -> tuple:
        """Materialize a short-circuit expression as a 0/1 temp."""
        dst = self.new_temp()
        true_block = self.new_block("sc_true")
        false_block = self.new_block("sc_false")
        join = self.new_block("sc_join")
        self.lower_condition(expr, true_block, false_block)
        self.position_at(true_block)
        self.emit(("mov", dst, ("c", 1)))
        self.seal_jump(join)
        self.position_at(false_block)
        self.emit(("mov", dst, ("c", 0)))
        self.seal_jump(join)
        self.position_at(join)
        return dst

    def lower_condition(
        self, expr: ast.Expr, true_block: _ProtoBlock, false_block: _ProtoBlock
    ) -> None:
        """Lower ``expr`` as a branch condition ending the current block."""
        if isinstance(expr, ast.Logical):
            middle = self.new_block("sc_mid")
            if expr.op == "&&":
                self.lower_condition(expr.left, middle, false_block)
            else:
                self.lower_condition(expr.left, true_block, middle)
            self.position_at(middle)
            self.lower_condition(expr.right, true_block, false_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, false_block, true_block)
            return
        operand = self.lower_expr(expr)
        self.seal(
            Terminator(
                TerminatorKind.CONDITIONAL,
                (true_block.block_id, false_block.block_id),
                operand,
            )
        )

    # -- statements -----------------------------------------------------------

    def lower_body(self, statements: tuple[ast.Stmt, ...]) -> None:
        for statement in statements:
            if self.current.terminator is not None:
                # Unreachable code after return/break/continue: keep lowering
                # into a fresh block (pruned later) so errors still surface.
                self.position_at(self.new_block("unreachable"))
            self.lower_stmt(statement)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self.locals:
                raise LangError(f"redeclared variable {stmt.name!r}", stmt.line)
            value = self.lower_expr(stmt.value)
            self.locals[stmt.name] = self._new_slot()
            self.emit(("mov", ("l", self.locals[stmt.name]), value))
        elif isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.value)
            if stmt.name in self.locals:
                self.emit(("mov", ("l", self.locals[stmt.name]), value))
            elif stmt.name in self.module.globals_init:
                self.emit(("mov", ("g", stmt.name), value))
            else:
                raise LangError(f"undefined variable {stmt.name!r}", stmt.line)
        elif isinstance(stmt, ast.StoreStmt):
            self._check_array(stmt.array, stmt.line)
            index = self.lower_expr(stmt.index)
            value = self.lower_expr(stmt.value)
            self.emit(("store", stmt.array, index, value))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Return):
            operand = (
                ("c", 0) if stmt.value is None else self.lower_expr(stmt.value)
            )
            self.seal(Terminator(TerminatorKind.RETURN, (), operand))
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LangError("break outside loop", stmt.line)
            target_id = self.loop_stack[-1][1]
            self.seal(Terminator(TerminatorKind.UNCONDITIONAL, (target_id,)))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LangError("continue outside loop", stmt.line)
            target_id = self.loop_stack[-1][0]
            self.seal(Terminator(TerminatorKind.UNCONDITIONAL, (target_id,)))
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.value)
        else:
            raise LangError(f"cannot lower statement {stmt!r}", stmt.line)

    def _lower_if(self, stmt: ast.If) -> None:
        then_block = self.new_block("then")
        join = self.new_block("join")
        else_block = self.new_block("else") if stmt.else_body else join
        self.lower_condition(stmt.condition, then_block, else_block)
        self.position_at(then_block)
        self.lower_body(stmt.then_body)
        self.seal_jump(join)
        if stmt.else_body:
            self.position_at(else_block)
            self.lower_body(stmt.else_body)
            self.seal_jump(join)
        self.position_at(join)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self.new_block("while_head")
        body = self.new_block("while_body")
        exit_block = self.new_block("while_exit")
        self.seal_jump(header)
        self.position_at(header)
        self.lower_condition(stmt.condition, body, exit_block)
        self.loop_stack.append((header.block_id, exit_block.block_id))
        self.position_at(body)
        self.lower_body(stmt.body)
        self.seal_jump(header)
        self.loop_stack.pop()
        self.position_at(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        """``for (init; cond; step)`` desugars to init + while, with
        ``continue`` targeting the step block (C semantics)."""
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.new_block("for_head")
        body = self.new_block("for_body")
        step_block = self.new_block("for_step")
        exit_block = self.new_block("for_exit")
        self.seal_jump(header)
        self.position_at(header)
        if stmt.condition is None:
            self.seal_jump(body)
        else:
            self.lower_condition(stmt.condition, body, exit_block)
        self.loop_stack.append((step_block.block_id, exit_block.block_id))
        self.position_at(body)
        self.lower_body(stmt.body)
        self.seal_jump(step_block)
        self.loop_stack.pop()
        self.position_at(step_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.seal_jump(header)
        self.position_at(exit_block)

    def _lower_switch(self, stmt: ast.Switch) -> None:
        selector = self.lower_expr(stmt.selector)
        join = self.new_block("switch_join")
        default_block = self.new_block("switch_default") if stmt.default else join
        case_blocks = {
            case.value: self.new_block(f"case_{case.value}")
            for case in stmt.cases
        }

        values = sorted(case_blocks)
        if values and _dense_enough(len(values), values[-1] - values[0] + 1):
            base = values[0]
            span = values[-1] - base + 1
            table = [
                case_blocks.get(base + offset, default_block).block_id
                for offset in range(span)
            ]
            table.append(default_block.block_id)  # out-of-range slot
            self.seal(
                Terminator(
                    TerminatorKind.MULTIWAY, tuple(table), (selector, base)
                )
            )
        else:
            # Sparse (or tiny) switch: an equality if-chain.
            for value in values:
                next_test = self.new_block("switch_test")
                flag = self.new_temp()
                self.emit(("bin", "==", flag, selector, ("c", value)))
                self.seal(
                    Terminator(
                        TerminatorKind.CONDITIONAL,
                        (case_blocks[value].block_id, next_test.block_id),
                        flag,
                    )
                )
                self.position_at(next_test)
            self.seal_jump(default_block)

        for case in stmt.cases:
            self.position_at(case_blocks[case.value])
            self.lower_body(case.body)
            self.seal_jump(join)
        if stmt.default:
            self.position_at(default_block)
            self.lower_body(stmt.default)
            self.seal_jump(join)
        self.position_at(join)

    # -- finish ---------------------------------------------------------------

    def finish(self) -> Procedure:
        if self.current.terminator is None:
            self.seal(Terminator(TerminatorKind.RETURN, (), ("c", 0)))
        # Seal any dangling blocks (e.g. unreachable joins) with returns so
        # the CFG is well-formed, then prune everything unreachable.
        for proto in self.blocks:
            if proto.terminator is None:
                proto.terminator = Terminator(TerminatorKind.RETURN, (), ("c", 0))
        reachable = self._reachable_ids()
        blocks = [
            BasicBlock(
                block_id=proto.block_id,
                terminator=proto.terminator,
                instructions=proto.instructions,
                label=f"{self.decl.name}.{proto.label or proto.block_id}",
            )
            for proto in self.blocks
            if proto.block_id in reachable
        ]
        cfg = ControlFlowGraph(self.blocks[0].block_id, blocks)
        return Procedure(name=self.decl.name, cfg=cfg, params=self.decl.params)

    def _reachable_ids(self) -> set[int]:
        by_id = {proto.block_id: proto for proto in self.blocks}
        seen = {self.blocks[0].block_id}
        stack = [self.blocks[0].block_id]
        while stack:
            proto = by_id[stack.pop()]
            assert proto.terminator is not None
            for target in proto.terminator.targets:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen


class _ModuleContext:
    def __init__(self, module: ast.Module):
        self.functions: dict[str, int] = {}
        self.arrays: dict[str, int] = {}
        self.globals_init: dict[str, int] = {}
        for decl in module.functions:
            if decl.name in self.functions or decl.name in _BUILTINS:
                raise LangError(f"duplicate function {decl.name!r}", decl.line)
            self.functions[decl.name] = len(decl.params)
        for array in module.arrays:
            if array.name in self.arrays:
                raise LangError(f"duplicate array {array.name!r}", array.line)
            self.arrays[array.name] = array.size
        for scalar in module.globals:
            if scalar.name in self.globals_init or scalar.name in self.arrays:
                raise LangError(f"duplicate global {scalar.name!r}", scalar.line)
            self.globals_init[scalar.name] = scalar.initial


def lower_module(module: ast.Module, *, main: str = "main") -> CompiledModule:
    """Lower a parsed module to a :class:`CompiledModule`."""
    context = _ModuleContext(module)
    if main not in context.functions:
        raise LangError(f"missing entry function {main!r}")
    if context.functions[main] != 0:
        raise LangError(f"entry function {main!r} must take no parameters")
    program = Program(main=main)
    frame_sizes: dict[str, int] = {}
    for decl in module.functions:
        lowering = _FunctionLowering(context, decl)
        lowering.lower_body(decl.body)
        program.add(lowering.finish())
        frame_sizes[decl.name] = lowering.n_slots
    return CompiledModule(
        program=program,
        arrays=dict(context.arrays),
        globals_init=dict(context.globals_init),
        frame_sizes=frame_sizes,
    )


def compile_source(source: str, *, main: str = "main") -> CompiledModule:
    """Parse and lower source text in one step."""
    return lower_module(parse(source), main=main)
