"""AST node definitions for the tiny language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Node):
    value: int


@dataclass(frozen=True)
class FloatLit(Node):
    value: float


@dataclass(frozen=True)
class VarRef(Node):
    name: str


@dataclass(frozen=True)
class Index(Node):
    array: str
    index: "Expr"


@dataclass(frozen=True)
class Unary(Node):
    op: str               # '-', '!', '~'
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str               # arithmetic / comparison / bitwise
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Logical(Node):
    op: str               # '&&' or '||' — short-circuit, lowers to CFG
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple["Expr", ...]


Expr = IntLit | FloatLit | VarRef | Index | Unary | Binary | Logical | Call


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    value: Expr


@dataclass(frozen=True)
class Assign(Node):
    name: str
    value: Expr


@dataclass(frozen=True)
class StoreStmt(Node):
    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Node):
    condition: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]


@dataclass(frozen=True)
class While(Node):
    condition: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class For(Node):
    """C-style for loop; any of the three header parts may be absent."""

    init: "Stmt | None"
    condition: Expr | None
    step: "Stmt | None"
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class SwitchCase(Node):
    value: int
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Switch(Node):
    selector: Expr
    cases: tuple[SwitchCase, ...]
    default: tuple["Stmt", ...]


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class ExprStmt(Node):
    value: Expr


Stmt = (
    VarDecl | Assign | StoreStmt | If | While | For | Switch | Return
    | Break | Continue | ExprStmt
)


# -- top level ----------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDecl(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class ArrayDecl(Node):
    name: str
    size: int


@dataclass(frozen=True)
class GlobalDecl(Node):
    name: str
    initial: int = 0


@dataclass(frozen=True)
class Module(Node):
    functions: tuple[FunctionDecl, ...]
    arrays: tuple[ArrayDecl, ...]
    globals: tuple[GlobalDecl, ...]
