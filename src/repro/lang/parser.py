"""Recursive-descent parser for the tiny language."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.lexer import LangError, Token, tokenize

#: Binary operator precedence (higher binds tighter).  ``&&``/``||`` are
#: handled separately because they short-circuit.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if not self._check(kind, text):
            want = text or kind
            raise LangError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # -- grammar --------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        functions: list[ast.FunctionDecl] = []
        arrays: list[ast.ArrayDecl] = []
        globals_: list[ast.GlobalDecl] = []
        while not self._check("eof"):
            token = self._current
            if self._match("keyword", "fn"):
                functions.append(self._function(token.line))
            elif self._match("keyword", "arr"):
                arrays.append(self._array_decl(token.line))
            elif self._match("keyword", "global"):
                globals_.append(self._global_decl(token.line))
            else:
                raise LangError(
                    f"expected declaration, found {token.text!r}",
                    token.line,
                    token.column,
                )
        return ast.Module(
            functions=tuple(functions),
            arrays=tuple(arrays),
            globals=tuple(globals_),
        )

    def _function(self, line: int) -> ast.FunctionDecl:
        name = self._expect("ident").text
        self._expect("op", "(")
        params: list[str] = []
        if not self._check("op", ")"):
            params.append(self._expect("ident").text)
            while self._match("op", ","):
                params.append(self._expect("ident").text)
        self._expect("op", ")")
        body = self._block()
        return ast.FunctionDecl(name=name, params=tuple(params), body=body, line=line)

    def _array_decl(self, line: int) -> ast.ArrayDecl:
        name = self._expect("ident").text
        self._expect("op", "[")
        size_token = self._expect("int")
        self._expect("op", "]")
        self._expect("op", ";")
        size = int(size_token.text)
        if size <= 0:
            raise LangError("array size must be positive", size_token.line,
                            size_token.column)
        return ast.ArrayDecl(name=name, size=size, line=line)

    def _global_decl(self, line: int) -> ast.GlobalDecl:
        name = self._expect("ident").text
        initial = 0
        if self._match("op", "="):
            negative = self._match("op", "-") is not None
            value = int(self._expect("int").text)
            initial = -value if negative else value
        self._expect("op", ";")
        return ast.GlobalDecl(name=name, initial=initial, line=line)

    def _block(self) -> tuple[ast.Stmt, ...]:
        self._expect("op", "{")
        statements: list[ast.Stmt] = []
        while not self._check("op", "}"):
            statements.append(self._statement())
        self._expect("op", "}")
        return tuple(statements)

    def _statement(self) -> ast.Stmt:
        token = self._current
        if self._match("keyword", "var"):
            name = self._expect("ident").text
            self._expect("op", "=")
            value = self._expression()
            self._expect("op", ";")
            return ast.VarDecl(name=name, value=value, line=token.line)
        if self._match("keyword", "if"):
            return self._if_statement(token.line)
        if self._match("keyword", "while"):
            self._expect("op", "(")
            condition = self._expression()
            self._expect("op", ")")
            body = self._block()
            return ast.While(condition=condition, body=body, line=token.line)
        if self._match("keyword", "for"):
            self._expect("op", "(")
            init = None
            if not self._check("op", ";"):
                init = self._simple_statement(token.line)
            self._expect("op", ";")
            condition = None
            if not self._check("op", ";"):
                condition = self._expression()
            self._expect("op", ";")
            step = None
            if not self._check("op", ")"):
                step = self._simple_statement(token.line)
            self._expect("op", ")")
            body = self._block()
            return ast.For(
                init=init, condition=condition, step=step, body=body,
                line=token.line,
            )
        if self._match("keyword", "switch"):
            return self._switch_statement(token.line)
        if self._match("keyword", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._expression()
            self._expect("op", ";")
            return ast.Return(value=value, line=token.line)
        if self._match("keyword", "break"):
            self._expect("op", ";")
            return ast.Break(line=token.line)
        if self._match("keyword", "continue"):
            self._expect("op", ";")
            return ast.Continue(line=token.line)
        if token.kind == "ident":
            # Assignment, array store, or expression statement (call).
            next_token = self._tokens[self._pos + 1]
            if next_token.kind == "op" and next_token.text == "=":
                self._advance()
                self._advance()
                value = self._expression()
                self._expect("op", ";")
                return ast.Assign(name=token.text, value=value, line=token.line)
            if next_token.kind == "op" and next_token.text == "[":
                saved = self._pos
                self._advance()
                self._advance()
                index = self._expression()
                self._expect("op", "]")
                if self._match("op", "="):
                    value = self._expression()
                    self._expect("op", ";")
                    return ast.StoreStmt(
                        array=token.text, index=index, value=value,
                        line=token.line,
                    )
                self._pos = saved  # it was an expression like a[i] + ...
        value = self._expression()
        self._expect("op", ";")
        return ast.ExprStmt(value=value, line=token.line)

    def _simple_statement(self, line: int) -> ast.Stmt:
        """A semicolon-free statement for ``for`` headers: a declaration,
        an assignment, an array store, or a bare expression."""
        token = self._current
        if self._match("keyword", "var"):
            name = self._expect("ident").text
            self._expect("op", "=")
            return ast.VarDecl(
                name=name, value=self._expression(), line=token.line
            )
        if token.kind == "ident":
            next_token = self._tokens[self._pos + 1]
            if next_token.kind == "op" and next_token.text == "=":
                self._advance()
                self._advance()
                return ast.Assign(
                    name=token.text, value=self._expression(), line=token.line
                )
            if next_token.kind == "op" and next_token.text == "[":
                saved = self._pos
                self._advance()
                self._advance()
                index = self._expression()
                self._expect("op", "]")
                if self._match("op", "="):
                    return ast.StoreStmt(
                        array=token.text, index=index,
                        value=self._expression(), line=token.line,
                    )
                self._pos = saved
        return ast.ExprStmt(value=self._expression(), line=line)

    def _if_statement(self, line: int) -> ast.If:
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        then_body = self._block()
        else_body: tuple[ast.Stmt, ...] = ()
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                inner = self._current
                self._advance()
                else_body = (self._if_statement(inner.line),)
            else:
                else_body = self._block()
        return ast.If(
            condition=condition, then_body=then_body, else_body=else_body,
            line=line,
        )

    def _switch_statement(self, line: int) -> ast.Switch:
        self._expect("op", "(")
        selector = self._expression()
        self._expect("op", ")")
        self._expect("op", "{")
        cases: list[ast.SwitchCase] = []
        default: tuple[ast.Stmt, ...] = ()
        seen_default = False
        seen_values: set[int] = set()
        while not self._check("op", "}"):
            token = self._current
            if self._match("keyword", "case"):
                negative = self._match("op", "-") is not None
                value_token = self._expect("int")
                value = int(value_token.text)
                if negative:
                    value = -value
                if value in seen_values:
                    raise LangError(
                        f"duplicate case {value}", value_token.line,
                        value_token.column,
                    )
                seen_values.add(value)
                self._expect("op", ":")
                body = self._case_body()
                cases.append(
                    ast.SwitchCase(value=value, body=body, line=token.line)
                )
            elif self._match("keyword", "default"):
                if seen_default:
                    raise LangError("duplicate default", token.line, token.column)
                seen_default = True
                self._expect("op", ":")
                default = self._case_body()
            else:
                raise LangError(
                    f"expected 'case' or 'default', found {token.text!r}",
                    token.line, token.column,
                )
        self._expect("op", "}")
        return ast.Switch(
            selector=selector, cases=tuple(cases), default=default, line=line,
        )

    def _case_body(self) -> tuple[ast.Stmt, ...]:
        """Statements until the next case/default/closing brace.  Cases do
        not fall through (each arm implicitly breaks)."""
        statements: list[ast.Stmt] = []
        while not (
            self._check("op", "}")
            or self._check("keyword", "case")
            or self._check("keyword", "default")
        ):
            statements.append(self._statement())
        return tuple(statements)

    # -- expressions ----------------------------------------------------------

    def _expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._current
            if token.kind != "op":
                break
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            right = self._expression(precedence + 1)
            if token.text in ("&&", "||"):
                left = ast.Logical(
                    op=token.text, left=left, right=right, line=token.line
                )
            else:
                left = ast.Binary(
                    op=token.text, left=left, right=right, line=token.line
                )
        return left

    def _unary(self) -> ast.Expr:
        token = self._current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self._advance()
            return ast.Unary(op=token.text, operand=self._unary(), line=token.line)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind == "int":
            return ast.IntLit(value=int(token.text), line=token.line)
        if token.kind == "float":
            return ast.FloatLit(value=float(token.text), line=token.line)
        if token.kind == "op" and token.text == "(":
            inner = self._expression()
            self._expect("op", ")")
            return inner
        if token.kind == "ident":
            if self._match("op", "("):
                args: list[ast.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._expression())
                    while self._match("op", ","):
                        args.append(self._expression())
                self._expect("op", ")")
                return ast.Call(name=token.text, args=tuple(args), line=token.line)
            if self._match("op", "["):
                index = self._expression()
                self._expect("op", "]")
                return ast.Index(array=token.text, index=index, line=token.line)
            return ast.VarRef(name=token.text, line=token.line)
        raise LangError(
            f"expected expression, found {token.text or token.kind!r}",
            token.line, token.column,
        )


def parse(source: str) -> ast.Module:
    """Parse source text into a :class:`~repro.lang.ast_nodes.Module`."""
    return Parser(tokenize(source)).parse_module()
