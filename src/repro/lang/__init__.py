"""The tiny benchmark language: lexer → parser → AST → CFG lowering → VM.

This substitutes for the paper's SUIF/C frontend (see DESIGN.md): programs
written in this language compile to the same CFG representation the aligner
consumes, and the VM produces real traces and edge profiles from concrete
inputs.
"""

from repro.lang.lexer import LangError, Token, tokenize
from repro.lang.lower import CompiledModule, compile_source, lower_module
from repro.lang.parser import parse
from repro.lang.vm import (
    RunResult,
    VMError,
    VMRunawayError,
    execute,
    run_and_profile,
)

__all__ = [
    "CompiledModule",
    "LangError",
    "RunResult",
    "Token",
    "VMError",
    "VMRunawayError",
    "compile_source",
    "execute",
    "lower_module",
    "parse",
    "run_and_profile",
    "tokenize",
]
