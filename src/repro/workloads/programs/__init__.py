"""Benchmark programs written in the tiny language (one module each)."""
