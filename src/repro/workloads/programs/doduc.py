"""``dod`` — an iterative grid relaxation kernel (stands in for 015.doduc).

Doduc is a Monte-Carlo thermohydraulics simulation: numeric loop nests with
many biased conditionals (range clamps, convergence tests, region
dispatch).  This kernel relaxes a 1-D rod temperature profile in fixed-
point arithmetic, with per-cell material dispatch and clamping — alignment
removes a large share of its penalties, as the paper observed for doduc
(~2/3 removed).  Data sets: ``re`` (reference: long run) and ``sm``
(small input).
"""

from __future__ import annotations

SOURCE = """
// Fixed-point (x1000) heat relaxation over a rod with per-cell materials.
arr temp[512];
arr material[512];
arr source_term[512];
global cells = 0;
global steps_done = 0;

fn conductivity(kind, t) {
  // Material dispatch: a small dense switch (becomes a jump table).
  switch (kind) {
    case 0: return 840 + t / 5000;
    case 1: return 520 - t / 8000;
    case 2: return 1200;
    case 3: return 300 + t / 2000;
    case 4: return 90;
    default: return 600;
  }
}

fn clamp(v, lo, hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

fn relax_pass(alpha) {
  var moved = 0;
  var i = 1;
  while (i < cells - 1) {
    var t = temp[i];
    var k = conductivity(material[i], t);
    var flux = (temp[i - 1] + temp[i + 1] - 2 * t) * k / 10000;
    var next = t + alpha * flux / 2000 + source_term[i];
    next = clamp(next, 250000, 400000);
    var delta = next - t;
    if (delta < 0) { delta = 0 - delta; }
    if (delta > 40) { moved = moved + 1; }
    temp[i] = next;
    i = i + 1;
  }
  return moved;
}

fn boundary_step(step) {
  // Oscillating boundary condition with rare regime switches.
  var phase = step % 97;
  if (phase < 90) {
    temp[0] = 300000 + phase * 350;
  } else {
    temp[0] = 260000;
  }
  temp[cells - 1] = 295000;
  return 0;
}

fn main() {
  cells = input(0);
  var max_steps = input(1);
  var i = 0;
  while (i < cells) {
    temp[i] = 290000 + (i * 137) % 9000;
    material[i] = input(2 + i % (input_len() - 2));
    source_term[i] = (i * 31) % 45;
    i = i + 1;
  }
  var step = 0;
  var moved = 1;
  while (step < max_steps && moved > 0) {
    boundary_step(step);
    moved = relax_pass(800);
    steps_done = steps_done + 1;
    step = step + 1;
  }
  output(steps_done);
  output(temp[cells / 2]);
  return steps_done;
}
"""


def dataset_re() -> list[int]:
    """Reference input: 220 cells, up to 160 steps, mixed materials."""
    import random

    rng = random.Random(0xD0D)
    materials = [rng.choices(range(6), weights=[5, 3, 2, 2, 1, 1])[0]
                 for _ in range(64)]
    return [220, 160, *materials]


def dataset_sm() -> list[int]:
    """Small input: 60 cells, up to 40 steps, two materials dominate."""
    import random

    rng = random.Random(0x5A)
    materials = [rng.choices(range(6), weights=[8, 4, 1, 0, 0, 1])[0]
                 for _ in range(32)]
    return [60, 40, *materials]


DATASETS = {"re": dataset_re, "sm": dataset_sm}
