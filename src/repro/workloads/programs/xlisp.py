"""``xli`` — a bytecode interpreter (stands in for 022.li, xlisp).

Interpreters are the classic multiway-branch workload: the hot loop is an
opcode dispatch, which lowers to a dense jump table (a register branch, the
paper's Table 3 third kind).  The interpreter below executes a 16-opcode
stack bytecode; the two data sets mirror the paper's: ``ne`` runs Newton's
method (a very short run — and, as in the paper, a poor training input) and
``q7`` solves the 7-queens problem (long-running backtracking search).

Input stream layout: ``[code_len, code..., data...]`` where each bytecode
instruction is two words (op, arg).
"""

from __future__ import annotations

# Opcode map (dense 0..15 so the dispatch becomes a jump table).
HALT, PUSH, LOAD, STORE, ADD, SUB, MUL, DIV = range(8)
JMP, JZ, JNZ, LT, DUP, OUT, ALOAD, ASTORE = range(8, 16)

SOURCE = """
// A 16-opcode stack-machine interpreter.
// Machine state: operand stack, 32 scalar variables, 256-cell memory.
arr stack[128];
arr vars[32];
arr mem[256];
global executed = 0;

fn interp(code_len) {
  var pc = 0;
  var sp = 0;
  var running = 1;
  while (running) {
    var op = input(1 + 2 * pc);
    var arg = input(2 + 2 * pc);
    pc = pc + 1;
    executed = executed + 1;
    switch (op) {
      case 0:
        running = 0;
      case 1:
        stack[sp] = arg; sp = sp + 1;
      case 2:
        stack[sp] = vars[arg]; sp = sp + 1;
      case 3:
        sp = sp - 1; vars[arg] = stack[sp];
      case 4:
        sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp];
      case 5:
        sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp];
      case 6:
        sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp];
      case 7:
        sp = sp - 1;
        if (stack[sp] == 0) { running = 0; } else {
          stack[sp - 1] = stack[sp - 1] / stack[sp];
        }
      case 8:
        pc = arg;
      case 9:
        sp = sp - 1;
        if (stack[sp] == 0) { pc = arg; }
      case 10:
        sp = sp - 1;
        if (stack[sp] != 0) { pc = arg; }
      case 11:
        sp = sp - 1;
        if (stack[sp - 1] < stack[sp]) { stack[sp - 1] = 1; }
        else { stack[sp - 1] = 0; }
      case 12:
        stack[sp] = stack[sp - 1]; sp = sp + 1;
      case 13:
        sp = sp - 1; output(stack[sp]);
      case 14:
        stack[sp - 1] = mem[stack[sp - 1]];
      case 15:
        sp = sp - 2; mem[stack[sp + 1]] = stack[sp];
    }
  }
  return executed;
}

fn main() {
  var code_len = input(0);
  interp(code_len);
  output(executed);
  return executed;
}
"""


class Assembler:
    """Two-word-per-instruction assembler with labels, for test programs."""

    def __init__(self) -> None:
        self._instructions: list[tuple[int, int | str]] = []
        self._labels: dict[str, int] = {}

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(self, op: int, arg: int | str = 0) -> None:
        self._instructions.append((op, arg))

    def assemble(self) -> list[int]:
        stream: list[int] = [len(self._instructions)]
        for op, arg in self._instructions:
            if isinstance(arg, str):
                arg = self._labels[arg]
            stream.extend([op, arg])
        return stream


def newton_program(values: list[int]) -> list[int]:
    """Newton's method integer square roots of ``values``.

    vars: 0 = x (target), 1 = guess, 2 = iterations.
    """
    asm = Assembler()
    for value in values:
        asm.emit(PUSH, value)
        asm.emit(STORE, 0)
        asm.emit(PUSH, max(1, value // 2))
        asm.emit(STORE, 1)
        asm.emit(PUSH, 26)
        asm.emit(STORE, 2)
        loop = f"newton_{value}"
        done = f"newton_done_{value}"
        asm.label(loop)
        # guess = (guess + x / guess) / 2
        asm.emit(LOAD, 1)
        asm.emit(LOAD, 0)
        asm.emit(LOAD, 1)
        asm.emit(DIV)
        asm.emit(ADD)
        asm.emit(PUSH, 2)
        asm.emit(DIV)
        asm.emit(STORE, 1)
        # if (--iterations) goto loop
        asm.emit(LOAD, 2)
        asm.emit(PUSH, 1)
        asm.emit(SUB)
        asm.emit(DUP)
        asm.emit(STORE, 2)
        asm.emit(JNZ, loop)
        asm.label(done)
        asm.emit(LOAD, 1)
        asm.emit(OUT)
    asm.emit(HALT)
    return asm.assemble()


def queens_program(n: int) -> list[int]:
    """Iterative backtracking n-queens solution counter.

    vars: 0 = row, 1 = count, 2 = i (safety scan), 3 = n, 4 = scratch.
    mem[r] = column of the queen on row r.
    """
    asm = Assembler()
    asm.emit(PUSH, n)
    asm.emit(STORE, 3)
    asm.emit(PUSH, 0)
    asm.emit(STORE, 0)  # row = 0
    asm.emit(PUSH, 0)
    asm.emit(STORE, 1)  # count = 0
    asm.emit(PUSH, 0)
    asm.emit(PUSH, 0)
    asm.emit(ASTORE)    # mem[0] = 0

    asm.label("loop")
    # if col[row] >= n: backtrack
    asm.emit(LOAD, 0)
    asm.emit(ALOAD)     # col[row]
    asm.emit(LOAD, 3)
    asm.emit(LT)        # col[row] < n ?
    asm.emit(JZ, "backtrack")

    # safety scan: i = 0; while i < row: check col/diagonal clashes
    asm.emit(PUSH, 0)
    asm.emit(STORE, 2)
    asm.label("scan")
    asm.emit(LOAD, 2)
    asm.emit(LOAD, 0)
    asm.emit(LT)        # i < row ?
    asm.emit(JZ, "safe")
    # clash if col[i] == col[row]
    asm.emit(LOAD, 2)
    asm.emit(ALOAD)
    asm.emit(LOAD, 0)
    asm.emit(ALOAD)
    asm.emit(SUB)       # col[i] - col[row]
    asm.emit(DUP)
    asm.emit(STORE, 4)  # scratch = diff
    asm.emit(JZ, "clash")
    # clash if |diff| == row - i:  (diff == row-i) or (diff == i-row)
    asm.emit(LOAD, 4)
    asm.emit(LOAD, 0)
    asm.emit(LOAD, 2)
    asm.emit(SUB)       # row - i
    asm.emit(SUB)       # diff - (row-i)
    asm.emit(JZ, "clash")
    asm.emit(LOAD, 4)
    asm.emit(LOAD, 2)
    asm.emit(LOAD, 0)
    asm.emit(SUB)       # i - row
    asm.emit(SUB)
    asm.emit(JZ, "clash")
    # i = i + 1; continue scan
    asm.emit(LOAD, 2)
    asm.emit(PUSH, 1)
    asm.emit(ADD)
    asm.emit(STORE, 2)
    asm.emit(JMP, "scan")

    asm.label("safe")
    # if row == n-1: count++, try next column; else descend
    asm.emit(LOAD, 0)
    asm.emit(PUSH, 1)
    asm.emit(ADD)
    asm.emit(LOAD, 3)
    asm.emit(LT)        # row + 1 < n ?
    asm.emit(JNZ, "descend")
    asm.emit(LOAD, 1)
    asm.emit(PUSH, 1)
    asm.emit(ADD)
    asm.emit(STORE, 1)  # count++
    asm.emit(JMP, "clash")  # advance this row's column

    asm.label("descend")
    asm.emit(LOAD, 0)
    asm.emit(PUSH, 1)
    asm.emit(ADD)
    asm.emit(STORE, 0)  # row++
    asm.emit(PUSH, 0)
    asm.emit(LOAD, 0)
    asm.emit(ASTORE)    # col[row] = 0
    asm.emit(JMP, "loop")

    asm.label("clash")
    # col[row]++
    asm.emit(LOAD, 0)
    asm.emit(ALOAD)
    asm.emit(PUSH, 1)
    asm.emit(ADD)
    asm.emit(LOAD, 0)
    asm.emit(ASTORE)
    asm.emit(JMP, "loop")

    asm.label("backtrack")
    # row--; if row < 0: done; else col[row]++
    asm.emit(LOAD, 0)
    asm.emit(PUSH, 1)
    asm.emit(SUB)
    asm.emit(DUP)
    asm.emit(STORE, 0)
    asm.emit(PUSH, 0)
    asm.emit(LT)        # row < 0 ?
    asm.emit(JNZ, "done")
    asm.emit(JMP, "clash")

    asm.label("done")
    asm.emit(LOAD, 1)
    asm.emit(OUT)
    asm.emit(HALT)
    return asm.assemble()


def dataset_ne() -> list[int]:
    """Newton's method on a few values: a very short run (the paper's
    shortest data set by far, and a poor training input for xli.q7)."""
    return newton_program([144, 1024, 99980001])


def dataset_q7(n: int = 7) -> list[int]:
    """The 7-queens problem: a long backtracking search."""
    return queens_program(n)


DATASETS = {"ne": dataset_ne, "q7": dataset_q7}
