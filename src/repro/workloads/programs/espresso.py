"""``esp`` — a two-level cover reducer (stands in for 008.espresso).

Espresso minimizes boolean function covers by repeatedly expanding,
merging, and absorbing implicant cubes.  This kernel works on cubes in the
classic 2-bit-per-variable encoding packed into integers, performing
distance-1 merge and containment-absorption passes until a fixed point —
the same flavour of irregular, pointer-free, deeply branchy logic.  Data
sets ``ti`` and ``tl`` are different cover suites.
"""

from __future__ import annotations

import random

SOURCE = """
// Cube cover minimization.  A cube packs v variables at 2 bits each:
// 01 = positive literal, 10 = negative literal, 11 = don't-care.
// Input: [num_vars, num_cubes, cube0, cube1, ...].
arr cover[256];
arr alive[256];
global num_vars = 0;
global num_cubes = 0;
global merges = 0;
global absorptions = 0;

fn var_mask(v) {
  return 3 << (2 * v);
}

fn contains(big, small) {
  // big contains small when every literal of big covers small's.
  return (big & small) == small;
}

fn merge_distance_one(a, b) {
  // If cubes differ in exactly one variable where their parts OR to 11,
  // return the merged cube, else -1.
  var diff = a ^ b;
  var v = 0;
  var seen = 0;
  var merged = a | b;
  while (v < num_vars) {
    var m = var_mask(v);
    if ((diff & m) != 0) {
      seen = seen + 1;
      if ((merged & m) != m) { return 0 - 1; }
    }
    v = v + 1;
  }
  if (seen == 1) { return merged; }
  return 0 - 1;
}

fn absorption_pass() {
  var removed = 0;
  var i = 0;
  while (i < num_cubes) {
    if (alive[i]) {
      var j = 0;
      while (j < num_cubes) {
        if (alive[j] && i != j) {
          if (contains(cover[j], cover[i])) {
            alive[i] = 0;
            absorptions = absorptions + 1;
            removed = removed + 1;
            j = num_cubes;
          } else {
            j = j + 1;
          }
        } else {
          j = j + 1;
        }
      }
    }
    i = i + 1;
  }
  return removed;
}

fn merge_pass() {
  var found = 0;
  var i = 0;
  while (i < num_cubes) {
    if (alive[i]) {
      var j = i + 1;
      while (j < num_cubes) {
        if (alive[j]) {
          var merged = merge_distance_one(cover[i], cover[j]);
          if (merged >= 0) {
            cover[i] = merged;
            alive[j] = 0;
            merges = merges + 1;
            found = found + 1;
          }
        }
        j = j + 1;
      }
    }
    i = i + 1;
  }
  return found;
}

fn count_alive() {
  var count = 0;
  var i = 0;
  while (i < num_cubes) {
    if (alive[i]) { count = count + 1; }
    i = i + 1;
  }
  return count;
}

fn main() {
  num_vars = input(0);
  num_cubes = input(1);
  var i = 0;
  while (i < num_cubes) {
    cover[i] = input(2 + i);
    alive[i] = 1;
    i = i + 1;
  }
  var changed = 1;
  var rounds = 0;
  while (changed > 0 && rounds < 40) {
    var merged = merge_pass();
    var absorbed = absorption_pass();
    changed = merged + absorbed;
    rounds = rounds + 1;
  }
  output(count_alive());
  output(merges);
  output(absorptions);
  return count_alive();
}
"""


def _random_cube(rng: random.Random, num_vars: int, care_prob: float) -> int:
    cube = 0
    for v in range(num_vars):
        if rng.random() < care_prob:
            part = rng.choice([0b01, 0b10])
        else:
            part = 0b11
        cube |= part << (2 * v)
    return cube


def _dataset(seed: int, num_vars: int, num_cubes: int, care_prob: float) -> list[int]:
    rng = random.Random(seed)
    cubes = [_random_cube(rng, num_vars, care_prob) for _ in range(num_cubes)]
    return [num_vars, num_cubes, *cubes]


def dataset_ti() -> list[int]:
    """ti: denser cover with more don't-cares (merges happen often)."""
    return _dataset(0x71, num_vars=10, num_cubes=110, care_prob=0.55)


def dataset_tl() -> list[int]:
    """tl: sparser, more specific cubes (absorption dominates)."""
    return _dataset(0x7E, num_vars=12, num_cubes=90, care_prob=0.8)


DATASETS = {"ti": dataset_ti, "tl": dataset_tl}
