"""``su2`` — a lattice sweep kernel (stands in for 089.su2cor).

Su2cor is a quantum-physics Monte-Carlo code dominated by long stretches of
straight-line floating-point arithmetic; its ratio of control penalties to
execution time is very low, and the paper found branch alignment has
"virtually no effect" on it.  This kernel reproduces that profile: large
arithmetic basic blocks inside regular loop nests, with only rare
data-dependent branches (an acceptance test).  Data sets: ``re``
(reference lattice) and ``sh`` (short run).
"""

from __future__ import annotations

SOURCE = """
// Pseudo heat-bath sweeps over a 1-D lattice of 'spins' in fixed point.
arr lattice[1024];
global size = 0;
global accepts = 0;
global rng_state = 12345;

fn next_random() {
  rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
  return rng_state;
}

fn site_energy(i) {
  // Deliberately long straight-line block: one big arithmetic expression
  // chain with no internal control flow (su2cor's signature shape).
  var left = lattice[i - 1];
  var right = lattice[i + 1];
  var center = lattice[i];
  var a = center * 3 - left - right;
  var b = a * a / 1000;
  var c = b + left * right / 500;
  var d = c - center * (left + right) / 800;
  var e = d + (center * center) / 1200;
  var f = e * 7 / 9;
  var g = f + (left - right) * (left - right) / 2000;
  var h = g - center / 3;
  var k = h * 11 / 13 + 42;
  var m = k + b / 7 - c / 11;
  var p = m * 3 / 5 + d / 17;
  var q = p + e / 23 - f / 29;
  return q;
}

fn sweep(beta) {
  var i = 1;
  while (i < size - 1) {
    var old_energy = site_energy(i);
    var proposal = lattice[i] + (next_random() % 2001) - 1000;
    var saved = lattice[i];
    lattice[i] = proposal;
    var new_energy = site_energy(i);
    var delta = new_energy - old_energy;
    // The one data-dependent branch: Metropolis acceptance.
    if (delta * beta < (next_random() % 1000000)) {
      accepts = accepts + 1;
    } else {
      lattice[i] = saved;
    }
    i = i + 1;
  }
  return accepts;
}

fn correlation(distance) {
  var total = 0;
  var i = 0;
  while (i + distance < size) {
    total = total + lattice[i] * lattice[i + distance] / 1000;
    i = i + 1;
  }
  return total;
}

fn main() {
  size = input(0);
  var sweeps = input(1);
  var beta = input(2);
  var i = 0;
  while (i < size) {
    lattice[i] = (i * 97) % 512 - 256;
    i = i + 1;
  }
  var s = 0;
  while (s < sweeps) {
    sweep(beta);
    s = s + 1;
  }
  var d = 1;
  while (d < 8) {
    output(correlation(d));
    d = d + 1;
  }
  output(accepts);
  return accepts;
}
"""


def dataset_re() -> list[int]:
    """Reference: 420-site lattice, 26 sweeps."""
    return [420, 26, 340]


def dataset_sh() -> list[int]:
    """Short: 140-site lattice, 10 sweeps."""
    return [140, 10, 260]


DATASETS = {"re": dataset_re, "sh": dataset_sh}
