"""``eqn`` — boolean equations to truth tables (stands in for 023.eqntott).

Eqntott enumerates variable assignments and evaluates boolean expressions.
Here the expressions arrive as postfix bytecode in the input stream; the
kernel iterates all 2^v assignments, evaluating each expression with a
small stack machine whose opcode dispatch is a sparse if-chain, then
accumulates ON-set statistics.  Data sets ``fx`` and ``ip`` are different
equation suites (mirroring the fixed-to-float encoder vs. the SPEC ref
input).
"""

from __future__ import annotations

import random

#: Expression bytecode opcodes (values chosen sparse on purpose so the
#: dispatch lowers to an if-chain, unlike xlisp's dense jump table).
OP_VAR = 3      # push variable <arg>
OP_NOT = 11
OP_AND = 17
OP_OR = 23
OP_XOR = 31
OP_END = 40

SOURCE = """
// Truth-table generation for postfix boolean expressions.
// Input layout: [num_vars, num_exprs, expr stream (op arg op arg ... 40)].
arr stack[64];
arr expr_offsets[32];
global on_count = 0;
global minterms = 0;

fn eval_expr(offset, assignment) {
  var sp = 0;
  var pc = offset;
  var op = input(pc);
  while (op != 40) {
    var arg = input(pc + 1);
    if (op == 3) {
      stack[sp] = (assignment >> arg) & 1;
      sp = sp + 1;
    } else {
      if (op == 11) {
        stack[sp - 1] = 1 - stack[sp - 1];
      } else {
        var b = stack[sp - 1];
        var a = stack[sp - 2];
        sp = sp - 1;
        if (op == 17) {
          stack[sp - 1] = a & b;
        } else {
          if (op == 23) {
            stack[sp - 1] = a | b;
          } else {
            stack[sp - 1] = a ^ b;
          }
        }
      }
    }
    pc = pc + 2;
    op = input(pc);
  }
  return stack[0];
}

fn scan_offsets(num_exprs) {
  // Expressions start at index 2 and are terminated by opcode 40.
  var pc = 2;
  var e = 0;
  while (e < num_exprs) {
    expr_offsets[e] = pc;
    while (input(pc) != 40) { pc = pc + 2; }
    pc = pc + 2;
    e = e + 1;
  }
  return pc;
}

fn main() {
  var num_vars = input(0);
  var num_exprs = input(1);
  scan_offsets(num_exprs);
  var rows = 1 << num_vars;
  var assignment = 0;
  while (assignment < rows) {
    var e = 0;
    var row_on = 0;
    while (e < num_exprs) {
      if (eval_expr(expr_offsets[e], assignment)) {
        on_count = on_count + 1;
        row_on = row_on + 1;
      }
      e = e + 1;
    }
    if (row_on == num_exprs) { minterms = minterms + 1; }
    assignment = assignment + 1;
  }
  output(on_count);
  output(minterms);
  return on_count;
}
"""


def _random_expression(rng: random.Random, num_vars: int, size: int) -> list[int]:
    """A random postfix expression with proper stack discipline."""
    code: list[int] = []
    depth = 0
    for _ in range(size):
        if depth >= 2 and rng.random() < 0.45:
            op = rng.choice([OP_AND, OP_OR, OP_XOR])
            code.extend([op, 0])
            depth -= 1
        elif depth >= 1 and rng.random() < 0.2:
            code.extend([OP_NOT, 0])
        else:
            code.extend([OP_VAR, rng.randrange(num_vars)])
            depth += 1
    while depth > 1:
        code.extend([rng.choice([OP_AND, OP_OR]), 0])
        depth -= 1
    if depth == 0:
        code.extend([OP_VAR, 0])
    code.extend([OP_END, 0])
    return code


def _dataset(seed: int, num_vars: int, num_exprs: int, size: int) -> list[int]:
    rng = random.Random(seed)
    stream = [num_vars, num_exprs]
    for _ in range(num_exprs):
        stream.extend(_random_expression(rng, num_vars, size))
    return stream


def dataset_fx() -> list[int]:
    """Fixed-to-float-encoder flavour: fewer, deeper expressions."""
    return _dataset(0xF1, num_vars=8, num_exprs=6, size=24)


def dataset_ip() -> list[int]:
    """SPEC-ref flavour: more, shallower expressions."""
    return _dataset(0x1B, num_vars=8, num_exprs=10, size=12)


DATASETS = {"fx": dataset_fx, "ip": dataset_ip}
