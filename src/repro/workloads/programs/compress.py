"""``com`` — an LZSS-style compressor (stands in for 026.compress).

Like the SPEC Lempel–Ziv compressor, the hot code is a match-search loop
over a sliding window with highly biased conditionals (most positions do
not extend a match) plus a literal/token emission path.  Two data sets
mirror the paper's: ``in`` (program text: skewed, repetitive bytes) and
``st`` (movie data: smoother, noisier stream).
"""

from __future__ import annotations

import random

SOURCE = """
// LZSS compressor: 4096-byte window, linear candidate chains via a
// 256-entry head table on the current byte.
arr window[4096];
arr head[256];
global emitted = 0;
global literals = 0;
global matches = 0;

fn emit_literal(b) {
  output(b);
  literals = literals + 1;
  emitted = emitted + 1;
  return 0;
}

fn emit_match(dist, len) {
  output(4096 + dist);
  output(len);
  matches = matches + 1;
  emitted = emitted + 2;
  return 0;
}

fn match_length(src, cand, limit) {
  var len = 0;
  while (len < limit && len < 18) {
    if (input(cand + len) != input(src + len)) {
      return len;
    }
    len = len + 1;
  }
  return len;
}

fn main() {
  var n = input_len();
  var i = 0;
  while (i < 256) { head[i] = 0 - 1; i = i + 1; }
  var pos = 0;
  while (pos < n) {
    var byte = input(pos);
    var best_len = 0;
    var best_dist = 0;
    var cand = head[byte];
    var tries = 0;
    while (cand >= 0 && tries < 8) {
      if (pos - cand < 4096) {
        var len = match_length(pos, cand, n - pos);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cand;
        }
      } else {
        cand = 0 - 1;
      }
      if (cand >= 0) {
        // Walk back through the window chain (previous same-byte position).
        var back = cand - 1;
        var found = 0 - 1;
        while (back >= 0 && back > cand - 64 && found < 0) {
          if (input(back) == byte) { found = back; }
          back = back - 1;
        }
        cand = found;
      }
      tries = tries + 1;
    }
    if (best_len >= 3) {
      emit_match(best_dist, best_len);
      var k = 0;
      while (k < best_len) {
        head[input(pos + k)] = pos + k;
        k = k + 1;
      }
      pos = pos + best_len;
    } else {
      emit_literal(byte);
      head[byte] = pos;
      pos = pos + 1;
    }
  }
  output(literals);
  output(matches);
  return emitted;
}
"""


def dataset_in(size: int = 2600) -> list[int]:
    """'Program text': repetitive keyword-like byte stream."""
    rng = random.Random(0xC0DE)
    words = [
        [105, 110, 116, 32],                     # "int "
        [119, 104, 105, 108, 101, 40],           # "while("
        [114, 101, 116, 117, 114, 110, 32],      # "return "
        [105, 102, 32, 40],                      # "if ("
        [32, 32, 32, 32],                        # indentation
        [125, 10],                               # "}\n"
    ]
    data: list[int] = []
    while len(data) < size:
        if rng.random() < 0.75:
            data.extend(rng.choice(words))
        else:
            data.append(rng.randrange(97, 123))
    return data[:size]


def dataset_st(size: int = 2600) -> list[int]:
    """'Movie data': smooth stream with local correlation and noise."""
    rng = random.Random(0x57A6E)
    data: list[int] = []
    value = 128
    while len(data) < size:
        value = (value + rng.randrange(-9, 10)) % 256
        data.append(value)
        if rng.random() < 0.08:
            run = rng.randrange(4, 12)
            data.extend([value] * run)
    return data[:size]


DATASETS = {"in": dataset_in, "st": dataset_st}
