"""Workloads: the six tiny-language benchmarks (Table 1) and synthetic CFGs."""

from repro.workloads.suite import (
    SUITE,
    BenchmarkSpec,
    all_cases,
    benchmark_datasets,
    compile_benchmark,
    train_test_pairs,
)
from repro.workloads.synthetic import (
    GeneratorConfig,
    random_biases,
    random_procedure,
    random_program,
    synthetic_workload,
)

__all__ = [
    "SUITE",
    "BenchmarkSpec",
    "GeneratorConfig",
    "all_cases",
    "benchmark_datasets",
    "compile_benchmark",
    "random_biases",
    "random_procedure",
    "random_program",
    "synthetic_workload",
    "train_test_pairs",
]
