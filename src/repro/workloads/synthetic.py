"""Synthetic structured-CFG generation.

The tiny-language benchmarks give *real* programs with real traces, but
their procedures are modest.  The paper's appendix statistics are computed
over hundreds of procedure instances (esp.tl alone contributes 179), so
this module generates reducible CFGs of arbitrary size — nested sequences,
diamonds, loops, and switches, the same shapes a structured frontend emits
— together with per-data-set branch biases and Markov-walk profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cfg.builder import CFGBuilder
from repro.cfg.graph import Procedure, Program
from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.synthesize import (
    BiasAssignment,
    random_bias_assignment,
    synthesize_profile,
)
from repro.profiles.trace import TraceBuilder


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape knobs for random procedures."""

    target_blocks: int = 30
    loop_weight: float = 3.0
    diamond_weight: float = 4.0
    switch_weight: float = 1.0
    sequence_weight: float = 2.0
    max_switch_arms: int = 6
    max_padding: int = 10


class _RegionGenerator:
    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self.rng = rng
        self.config = config
        self.builder = CFGBuilder()
        self.counter = 0
        self.budget = config.target_blocks

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def pad(self) -> int:
        return self.rng.randrange(1, self.config.max_padding + 1)

    def gen_region(self, entry: str, exit_name: str) -> None:
        """Emit a region from ``entry`` to ``exit_name``, consuming budget."""
        config = self.config
        if self.budget <= 1:
            self.builder.block(entry, padding=self.pad()).jump(exit_name)
            return
        choices = ["sequence", "diamond", "loop", "switch"]
        weights = [
            config.sequence_weight,
            config.diamond_weight,
            config.loop_weight,
            config.switch_weight if self.budget >= 5 else 0.0,
        ]
        kind = self.rng.choices(choices, weights=weights, k=1)[0]
        if kind == "sequence":
            middle = self.fresh("seq")
            self.budget -= 1
            self.builder.block(entry, padding=self.pad()).jump(middle)
            self.gen_region(middle, exit_name)
        elif kind == "diamond":
            then_block = self.fresh("then")
            else_block = self.fresh("else")
            self.budget -= 2
            self.builder.block(entry, padding=self.pad()).cond(
                then_block, else_block
            )
            self.gen_region(then_block, exit_name)
            self.gen_region(else_block, exit_name)
        elif kind == "loop":
            head = self.fresh("head")
            body = self.fresh("body")
            latch = self.fresh("latch")
            self.budget -= 3
            self.builder.block(entry, padding=self.pad()).jump(head)
            self.builder.block(head, padding=self.pad()).cond(body, exit_name)
            self.gen_region(body, latch)
            self.builder.block(latch, padding=self.pad()).jump(head)
        else:  # switch
            arms = self.rng.randrange(3, self.config.max_switch_arms + 1)
            arm_names = [self.fresh("case") for _ in range(arms)]
            # Duplicate slots model real jump tables mapping several values
            # to one target.
            slots = list(arm_names)
            for _ in range(self.rng.randrange(0, arms)):
                slots.append(self.rng.choice(arm_names))
            self.rng.shuffle(slots)
            self.budget -= arms + 1
            self.builder.block(entry, padding=self.pad()).switch(slots)
            for arm in arm_names:
                self.gen_region(arm, exit_name)


def random_procedure(
    name: str,
    rng: random.Random,
    config: GeneratorConfig | None = None,
) -> Procedure:
    """Generate one structured procedure of roughly ``target_blocks`` size."""
    config = config or GeneratorConfig()
    generator = _RegionGenerator(rng, config)
    generator.builder.block("exit", padding=generator.pad()).ret()
    generator.gen_region("entry", "exit")
    cfg = generator.builder.build(entry="entry")
    return Procedure(name=name, cfg=cfg)


def random_program(
    *,
    procedures: int,
    seed: int,
    min_blocks: int = 8,
    max_blocks: int = 80,
) -> Program:
    """A whole synthetic program with size-varied procedures."""
    rng = random.Random(seed)
    program = Program(main="proc0")
    for index in range(procedures):
        target = rng.randrange(min_blocks, max_blocks + 1)
        config = GeneratorConfig(target_blocks=target)
        program.add(random_procedure(f"proc{index}", rng, config))
    return program


def random_biases(
    program: Program, seed: int, *, skew: float = 0.85
) -> dict[str, BiasAssignment]:
    """Per-procedure branch biases — one of these per data set."""
    rng = random.Random(seed)
    return {
        proc.name: random_bias_assignment(proc.cfg, rng, skew=skew)
        for proc in program
    }


def synthetic_workload(
    *,
    procedures: int = 40,
    seed: int = 0,
    walks: int = 12,
    max_steps: int = 4000,
    trace_builder: TraceBuilder | None = None,
) -> tuple[Program, ProgramProfile]:
    """One-call helper: a program plus a Markov-walk profile over it."""
    program = random_program(procedures=procedures, seed=seed)
    biases = random_biases(program, seed + 1)
    profile = synthesize_profile(
        program,
        biases,
        seed=seed + 2,
        walks_per_procedure=walks,
        max_steps=max_steps,
        trace_builder=trace_builder,
    )
    return program, profile
