"""The benchmark suite registry (the paper's Table 1).

Six benchmarks, two data sets each.  ``train_test_pairs`` reproduces the
paper's cross-validation protocol: "we report the name of the testing data
set and train with the other data set".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.errors import UnknownNameError
from repro.lang.lower import CompiledModule, compile_source
from repro.workloads.programs import (
    compress,
    doduc,
    eqntott,
    espresso,
    su2cor,
    xlisp,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: its source program and named input data sets."""

    abbr: str
    full_name: str
    description: str
    source: str
    datasets: dict[str, Callable[[], list[int]]] = field(hash=False)

    def dataset_names(self) -> list[str]:
        return list(self.datasets)

    def inputs(self, dataset: str) -> list[int]:
        try:
            builder = self.datasets[dataset]
        except KeyError:
            known = ", ".join(self.datasets)
            raise UnknownNameError(
                f"unknown data set {dataset!r} for {self.abbr} (known: {known})"
            ) from None
        return builder()


SUITE: dict[str, BenchmarkSpec] = {
    spec.abbr: spec
    for spec in (
        BenchmarkSpec(
            abbr="com",
            full_name="026.compress",
            description="Lempel-Ziv compressor (LZSS window search)",
            source=compress.SOURCE,
            datasets=dict(compress.DATASETS),
        ),
        BenchmarkSpec(
            abbr="dod",
            full_name="015.doduc",
            description="nuclear reactor thermohydraulic simulation "
            "(grid relaxation)",
            source=doduc.SOURCE,
            datasets=dict(doduc.DATASETS),
        ),
        BenchmarkSpec(
            abbr="eqn",
            full_name="023.eqntott",
            description="translates boolean equations to truth tables",
            source=eqntott.SOURCE,
            datasets=dict(eqntott.DATASETS),
        ),
        BenchmarkSpec(
            abbr="esp",
            full_name="008.espresso",
            description="boolean function minimizer (cube cover reduction)",
            source=espresso.SOURCE,
            datasets=dict(espresso.DATASETS),
        ),
        BenchmarkSpec(
            abbr="su2",
            full_name="089.su2cor",
            description="statistical mechanics calculation (lattice sweeps)",
            source=su2cor.SOURCE,
            datasets=dict(su2cor.DATASETS),
        ),
        BenchmarkSpec(
            abbr="xli",
            full_name="022.li",
            description="bytecode interpreter (Newton's method / 7 queens)",
            source=xlisp.SOURCE,
            datasets=dict(xlisp.DATASETS),
        ),
    )
}


def get_benchmark(abbr: str) -> BenchmarkSpec:
    """Look up a benchmark by abbreviation."""
    try:
        return SUITE[abbr]
    except KeyError:
        known = ", ".join(sorted(SUITE))
        raise UnknownNameError(
            f"unknown benchmark {abbr!r} (known: {known})"
        ) from None


@lru_cache(maxsize=None)
def compile_benchmark(abbr: str) -> CompiledModule:
    """Compile a benchmark's source (cached: CFGs are immutable inputs)."""
    return compile_source(get_benchmark(abbr).source)


def benchmark_datasets(abbr: str) -> list[str]:
    return get_benchmark(abbr).dataset_names()


def train_test_pairs() -> list[tuple[str, str, str]]:
    """(benchmark, test_dataset, train_dataset) triples: every dataset is a
    testing set once, trained on the sibling dataset (Table 1 protocol)."""
    pairs = []
    for abbr, spec in SUITE.items():
        names = spec.dataset_names()
        for test in names:
            train = next(name for name in names if name != test)
            pairs.append((abbr, test, train))
    return pairs


def all_cases() -> list[tuple[str, str]]:
    """Every (benchmark, dataset) case, e.g. ('com', 'in')."""
    return [
        (abbr, dataset)
        for abbr, spec in SUITE.items()
        for dataset in spec.dataset_names()
    ]
