"""Flat-array DTSP solver kernel: delta-evaluated 3-opt + Or-opt descent.

This is the hot core behind :func:`repro.tsp.solve.solve_dtsp`.  It keeps
the *neighborhood* of the legacy :class:`~repro.tsp.local_search.ThreeOptSearch`
(orientation-preserving directed 3-opt — the only moves legal on the
paper's locked 2-node symmetrization) but rebuilds the engineering around
flat arrays and incremental evaluation:

* **Array state** — the tour and the city→index permutation live in numpy
  ``int32`` arrays, don't-look bits in a numpy bool array.  Neighbor
  candidate lists are precomputed ``(n, k)`` int32 tables with their cost
  rows stored alongside, sorted ascending, so every gain scan is a
  prefix of a presorted row (``bisect`` over the row replaces per-element
  matrix lookups; the whole-row numpy forms are kept for construction and
  kick application).  The descent's innermost loops additionally bind
  python-list mirrors of those rows — scalar indexing into a list is
  several times cheaper than into an ndarray, and the mirrors are rebuilt
  once per matrix, not per descent.
* **Delta evaluation** — every move's cost change is computed from the six
  affected edges and accumulated; the per-kick O(n) ``tour_cost``
  recompute of the legacy path is gone (a full recount survives only in
  tests, as the invariant check).
* **Or-opt folded in** — segment relocation (lengths 1–3, never reversed)
  runs inside the same descent, tried for a city only after its 3-opt scan
  fails, sharing the don't-look bits and the wake queue.  Improving
  relocations count into ``tsp.or_opt_moves``.
* **Kick-local restarts** — after a double-bridge kick only the ~6 cities
  adjacent to the three reconnected seams wake up; the legacy path
  re-queued all n cities and re-descended from scratch.  Between kicks
  the don't-look bits persist, so an unimproved region is never rescanned.

The kernel is deterministic for a given (matrix, effort, seed) and honors
:class:`~repro.budget.BudgetTimer` polling exactly like the legacy solver;
on expiry the *current* tour is always a complete, valid permutation whose
delta-tracked cost is exact, so mid-descent salvage is safe.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.errors import SolverBudgetExceeded, UnknownNameError
from repro.tsp.instance import check_matrix, out_neighbor_lists, tour_cost
from repro.tsp.iterated import RunResult, SolveResult, _construct

_EPS = 1e-9

#: Budget poll period inside the descent loop (scans per wall-clock read).
_BUDGET_POLL = 64


@dataclass
class KernelStats:
    """Counters for one descent (tests and the solver microbench)."""

    moves: int = 0          # improving 3-opt moves applied
    or_opt_moves: int = 0   # improving Or-opt relocations applied
    scans: int = 0          # candidate edges examined


@dataclass
class KernelState:
    """One tour being optimized: flat arrays plus the wake queue.

    ``cost`` is maintained by delta accumulation and is exact at every
    move boundary (pinned by the kernel test suite).
    """

    tour: np.ndarray                 # int32 (n,) city at each index
    pos: np.ndarray                  # int32 (n,) index of each city
    dont_look: np.ndarray            # bool (n,)
    cost: float
    queue: list[int] = field(default_factory=list)


class SolverKernel:
    """Reusable flat-array 3-opt/Or-opt engine for one cost matrix."""

    def __init__(
        self, matrix: np.ndarray, *, neighbors: int = 12, max_segment: int = 3
    ):
        self.matrix = np.ascontiguousarray(check_matrix(matrix))
        n = self.n = self.matrix.shape[0]
        k = min(neighbors, n - 1)
        self.neighbors = k
        self.max_segment = max_segment
        self.out_neigh = out_neighbor_lists(self.matrix, k).astype(np.int32)
        self.in_neigh = out_neighbor_lists(self.matrix.T, k).astype(np.int32)
        rows = np.arange(n)[:, None]
        # Cost rows aligned with the neighbor tables, ascending — a gain
        # scan is a bisected prefix of one of these rows.
        self.out_cost = self.matrix[rows, self.out_neigh]
        self.in_cost = self.matrix.T[rows, self.in_neigh]
        # Python-list mirrors for the scalar-heavy innermost loops.
        self._w = self.matrix.tolist()
        self._out = self.out_neigh.tolist()
        self._outc = self.out_cost.tolist()
        self._in = self.in_neigh.tolist()

    # -- state ----------------------------------------------------------------

    def state_from(self, tour: list[int] | np.ndarray) -> KernelState:
        """A fresh state with every city queued for scanning."""
        tour_arr = np.asarray(tour, dtype=np.int32).copy()
        n = self.n
        pos = np.empty(n, dtype=np.int32)
        pos[tour_arr] = np.arange(n, dtype=np.int32)
        return KernelState(
            tour=tour_arr,
            pos=pos,
            dont_look=np.zeros(n, dtype=bool),
            cost=tour_cost(self.matrix, [int(c) for c in tour_arr]),
            queue=[int(c) for c in tour_arr],
        )

    def snapshot(self, state: KernelState) -> tuple[np.ndarray, float]:
        return state.tour.copy(), state.cost

    def restore(self, state: KernelState, snap: tuple[np.ndarray, float]) -> None:
        tour, cost = snap
        state.tour = tour.copy()
        state.pos[state.tour] = np.arange(self.n, dtype=np.int32)
        state.dont_look[:] = True
        state.queue.clear()
        state.cost = cost

    # -- the descent ----------------------------------------------------------

    def wake_all(self, state: KernelState) -> None:
        """Re-queue every city in tour order (a full restart of the scan)."""
        state.dont_look[:] = False
        state.queue = state.tour.tolist()

    def descend(
        self,
        state: KernelState,
        *,
        budget: BudgetTimer | None = None,
        stats: KernelStats | None = None,
        or_opt: bool = True,
    ) -> float:
        """Drain the wake queue to a (3-opt [+ Or-opt]) local optimum.

        With ``or_opt=False`` the move space — and, from the same queue,
        the first-improvement trajectory — is exactly the legacy
        :meth:`ThreeOptSearch.optimize` (pinned by tests); the guarded
        solve mode relies on that equivalence for its cost-dominance
        guarantee.

        Returns the delta-tracked tour cost.  On budget expiry the state is
        synced (complete tour, exact cost) before the exception propagates,
        so callers can salvage ``state.tour`` mid-descent.
        """
        n = self.n
        stats = stats if stats is not None else KernelStats()
        if n < 4 or not state.queue:
            state.queue.clear()
            return state.cost
        # Bind list mirrors of the mutable arrays: the scan loop is pure
        # python and list indexing beats ndarray scalar indexing ~3x.
        tour = state.tour.tolist()
        pos = state.pos.tolist()
        dont_look = state.dont_look.tolist()
        queue = state.queue
        queued = [False] * n
        for city in queue:
            queued[city] = True
        cost = state.cost

        w = self._w
        out = self._out
        outc = self._outc
        in_ = self._in
        max_seg = min(self.max_segment, n - 3) if or_opt else 0

        def sync() -> None:
            state.tour[:] = tour
            state.pos[:] = pos
            state.dont_look[:] = dont_look
            state.cost = cost

        def wake(city: int) -> None:
            dont_look[city] = False
            if not queued[city]:
                queued[city] = True
                queue.append(city)

        pops = 0
        try:
            while queue:
                pops += 1
                if budget is not None and pops % _BUDGET_POLL == 0:
                    budget.check(where="kernel-descent")
                a = queue.pop()
                queued[a] = False
                if dont_look[a]:
                    continue
                pa = pos[a]
                i_next = pa + 1
                if i_next == n:
                    i_next = 0
                a_next = tour[i_next]
                w_a_row = w[a]
                w_a = w_a_row[a_next]

                delta = self._improve_three_opt(
                    a, pa, a_next, w_a, tour, pos, wake, stats,
                    w, out, outc, in_,
                )
                if delta is None and max_seg > 0:
                    delta = self._improve_or_opt(
                        a, pa, a_next, w_a, tour, pos, wake, stats,
                        w, out, outc, max_seg,
                    )
                if delta is not None:
                    cost += delta
                    wake(a)
                else:
                    dont_look[a] = True
        finally:
            sync()
        return cost

    def _improve_three_opt(
        self, a, pa, a_next, w_a, tour, pos, wake, stats, w, out, outc, in_,
    ) -> float | None:
        """One first-improvement orientation-preserving 3-opt move rooted at
        the removed edge (a, a+); returns its delta or None.

        Same move space and scan order as the legacy
        :meth:`ThreeOptSearch._improve_from`, with the positive-gain prefix
        found by bisecting the presorted neighbor-cost row.
        """
        n = self.n
        outc_a = outc[a]
        out_a = out[a]
        m1 = bisect_left(outc_a, w_a - _EPS)
        for j1 in range(m1):
            b_next = out_a[j1]
            gain1 = w_a - outc_a[j1]
            sb_next = pos[b_next] - pa
            if sb_next < 0:
                sb_next += n
            if sb_next <= 1:    # b_next is a or a+: degenerate
                continue
            i_b = pos[b_next] - 1
            if i_b < 0:
                i_b = n - 1
            b = tour[i_b]
            w_b = w[b][b_next]
            stats.scans += 1

            # Form 1: third removed edge via out-neighbors of b.
            outc_b = outc[b]
            out_b = out[b]
            m2 = bisect_left(outc_b, gain1 + w_b - _EPS)
            for j2 in range(m2):
                c_next = out_b[j2]
                gain2 = gain1 + w_b - outc_b[j2]
                sc_next = pos[c_next] - pa
                if sc_next < 0:
                    sc_next += n
                if sc_next == 0:
                    sc = n - 1
                elif sc_next > sb_next:
                    sc = sc_next - 1
                else:
                    continue
                i_c = pa + sc
                if i_c >= n:
                    i_c -= n
                c = tour[i_c]
                i_cn = i_c + 1
                if i_cn == n:
                    i_cn = 0
                w_c_row = w[c]
                c_succ = tour[i_cn]     # == c_next (capture before the apply)
                delta = -gain2 + w_c_row[a_next] - w_c_row[c_succ]
                if delta < -_EPS:
                    self._apply_exchange(tour, pos, pa, sb_next - 1, sc)
                    stats.moves += 1
                    for city in (a, a_next, b, b_next, c, c_succ):
                        wake(city)
                    return delta

            # Form 2: third removed edge via in-neighbors of a+ (short new
            # edge (c, a+)); not monotone in the candidate order, so no
            # prefix cut — skip rather than break.
            for c in in_[a_next]:
                sc = pos[c] - pa
                if sc < 0:
                    sc += n
                if sc < sb_next:
                    continue
                i_cn = pa + sc + 1
                if i_cn >= n:
                    i_cn -= n
                c_next = tour[i_cn]
                w_c_row = w[c]
                gain2 = gain1 + w_c_row[c_next] - w_c_row[a_next]
                if gain2 <= _EPS:
                    continue
                delta = -gain2 + w[b][c_next] - w_b
                if delta < -_EPS:
                    self._apply_exchange(tour, pos, pa, sb_next - 1, sc)
                    stats.moves += 1
                    for city in (a, a_next, b, b_next, c, c_next):
                        wake(city)
                    return delta
        return None

    def _improve_or_opt(
        self, a, pa, a_next, w_a, tour, pos, wake, stats, w, out, outc, max_seg,
    ) -> float | None:
        """One first-improvement Or-opt relocation of the segment that
        *follows* a (lengths 1..max_seg, orientation preserved).

        Insertion points come from the out-neighbors of the segment's tail
        (cities the tail would like to precede), pruned by the positive-gain
        prefix ``w(tail, t) < removed - bridge``.
        """
        n = self.n
        w_a_row = w[a]
        seg = [a_next]
        i_end = pa + 1
        if i_end >= n:
            i_end -= n
        for length in range(1, max_seg + 1):
            if length > 1:
                i_end += 1
                if i_end == n:
                    i_end = 0
                seg.append(tour[i_end])
            s0 = seg[0]
            s_last = seg[-1]
            i_after = i_end + 1
            if i_after == n:
                i_after = 0
            after = tour[i_after]
            if after == a:
                break       # segment would swallow the whole tour
            removed = w_a_row[s0] + w[s_last][after]
            bridge = w_a_row[after]
            bound = removed - bridge - _EPS
            if bound <= 0:
                continue
            outc_t = outc[s_last]
            out_t = out[s_last]
            m = bisect_left(outc_t, bound)
            for j in range(m):
                t = out_t[j]
                if t == after or t in seg:
                    continue
                stats.scans += 1
                i_anchor = pos[t] - 1
                if i_anchor < 0:
                    i_anchor = n - 1
                anchor = tour[i_anchor]
                if anchor == a:
                    continue
                w_anchor = w[anchor]
                delta = (
                    bridge + w_anchor[s0] + outc_t[j]
                    - removed - w_anchor[t]
                )
                if delta < -_EPS:
                    self._apply_relocation(tour, pos, seg, anchor)
                    stats.or_opt_moves += 1
                    obs.count("tsp.or_opt_moves")
                    for city in (a, after, s0, s_last, anchor, t):
                        wake(city)
                    return delta
        return None

    @staticmethod
    def _apply_exchange(tour, pos, pa, sb, sc) -> None:
        """Reconnect a→b⁺…c→a⁺…b→c⁺ (offsets from a), a at index 0."""
        rotated = tour[pa:] + tour[:pa]
        tour[:] = (
            [rotated[0]]
            + rotated[sb + 1: sc + 1]
            + rotated[1: sb + 1]
            + rotated[sc + 1:]
        )
        for i, city in enumerate(tour):
            pos[city] = i

    @staticmethod
    def _apply_relocation(tour, pos, seg, anchor) -> None:
        """Move ``seg`` (contiguous, cyclic, orientation kept) to directly
        after ``anchor``."""
        segset = set(seg)
        remaining = [city for city in tour if city not in segset]
        at = remaining.index(anchor)
        tour[:] = remaining[: at + 1] + seg + remaining[at + 1:]
        for i, city in enumerate(tour):
            pos[city] = i

    # -- kicks ----------------------------------------------------------------

    def kick(self, state: KernelState, rng: random.Random) -> None:
        """Double-bridge the state in place and wake only the seam cities.

        Cost is updated by the delta of the three reconnected edges; the
        don't-look bits of unaffected cities survive, so the re-descent
        starts from ~6 woken cities instead of all n.
        """
        n = self.n
        t = state.tour
        if n < 8:
            if n < 4:
                return
            i, j = rng.sample(range(1, n), 2)
            ci, cj = int(t[i]), int(t[j])
            w = self._w
            tl = t.tolist()

            def edge_sum() -> float:
                total = 0.0
                for at in {i - 1, i, j - 1, j}:
                    total += w[tl[at]][tl[(at + 1) % n]]
                return total

            before = edge_sum()
            t[i], t[j] = cj, ci
            tl[i], tl[j] = cj, ci
            state.pos[ci], state.pos[cj] = j, i
            state.cost += edge_sum() - before
            seams = {ci, cj, tl[i - 1], tl[(i + 1) % n],
                     tl[j - 1], tl[(j + 1) % n]}
        else:
            i, j, k = sorted(rng.sample(range(1, n), 3))
            w = self._w
            ti_1, ti = int(t[i - 1]), int(t[i])
            tj_1, tj = int(t[j - 1]), int(t[j])
            tk_1, tk = int(t[k - 1]), int(t[k])
            delta = (
                w[ti_1][tj] + w[tk_1][ti] + w[tj_1][tk]
                - w[ti_1][ti] - w[tj_1][tj] - w[tk_1][tk]
            )
            state.tour = np.concatenate([t[:i], t[j:k], t[i:j], t[k:]])
            state.pos[state.tour] = np.arange(n, dtype=np.int32)
            state.cost += delta
            seams = {ti_1, tj, tk_1, ti, tj_1, tk}
        for city in seams:
            city = int(city)
            state.dont_look[city] = False
            state.queue.append(city)


#: Solve modes.  ``guarded`` (the default) walks the exact legacy
#: iterated-3-opt trajectory — full wake after every kick, Or-opt held
#: back to a per-run polish descent that can only improve the run's final
#: tour — so its cost is ≤ the legacy solver's on every instance, by
#: construction.  ``turbo`` folds Or-opt into every descent and restarts
#: kick-locally (only the seam cities wake), trading the per-instance
#: dominance guarantee for the asymptotically cheaper kick loop.
KERNEL_MODES = ("guarded", "turbo")


def kernel_iterated_three_opt(
    matrix: np.ndarray,
    *,
    starts: tuple[str, ...] = ("greedy", "nn", "identity"),
    iterations: int | None = None,
    neighbors: int = 12,
    seed: int = 0,
    budget: Budget | BudgetTimer | None = None,
    mode: str = "guarded",
) -> SolveResult:
    """Iterated 3-opt/Or-opt over the flat-array kernel.

    Drop-in replacement for :func:`repro.tsp.iterated.iterated_three_opt`:
    same starts/iterations/budget semantics, same
    :class:`~repro.tsp.iterated.SolveResult` shape, same
    ``tsp.runs``/``tsp.kicks``/``tsp.improving_moves`` counter contract
    (plus ``tsp.or_opt_moves`` whenever a relocation fires).  See
    :data:`KERNEL_MODES` for the guarded/turbo trade-off; in guarded mode
    the result cost is never worse than the legacy solver's for the same
    effort and seed.
    """
    if mode not in KERNEL_MODES:
        known = ", ".join(KERNEL_MODES)
        raise UnknownNameError(
            f"unknown kernel mode {mode!r} (known: {known})"
        )
    guarded = mode == "guarded"
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    rng = random.Random(seed)
    kernel = SolverKernel(matrix, neighbors=neighbors)
    kicks = 2 * n if iterations is None else iterations
    timer = ensure_timer(budget)

    best_tour: list[int] | None = None
    best_cost = float("inf")
    # Best complete tour seen at *any* point — including mid-descent, where
    # the kernel's delta-tracked tour is still a valid permutation — used
    # to salvage work when the budget expires.
    seen_tour: list[int] | None = None
    seen_cost = float("inf")
    runs: list[RunResult] = []
    state: KernelState | None = None

    def note(cost: float) -> None:
        nonlocal seen_tour, seen_cost
        if cost < seen_cost:
            seen_tour = state.tour.tolist()
            seen_cost = cost

    try:
        for start_kind in starts:
            if timer is not None:
                timer.check(where="iterated-3opt")
            with obs.span("tsp_run", start=start_kind):
                obs.count("tsp.runs")
                state = kernel.state_from(_construct(start_kind, matrix, rng))
                current_cost = kernel.descend(
                    state, budget=timer, or_opt=not guarded
                )
                note(current_cost)
                run_best = current_cost
                for _ in range(kicks):
                    if timer is not None:
                        timer.tick(where="iterated-3opt")
                    obs.count("tsp.kicks")
                    snap = kernel.snapshot(state)
                    kernel.kick(state, rng)
                    if guarded:
                        kernel.wake_all(state)
                    candidate_cost = kernel.descend(
                        state, budget=timer, or_opt=not guarded
                    )
                    if candidate_cost <= current_cost + 1e-9:
                        if candidate_cost < current_cost - 1e-9:
                            obs.count("tsp.improving_moves")
                        current_cost = candidate_cost
                        run_best = min(run_best, current_cost)
                        note(current_cost)
                    else:
                        kernel.restore(state, snap)
                if guarded:
                    # Or-opt polish: a full descent with relocations enabled
                    # from the run's final tour.  Only improving moves apply,
                    # so this can only lower the run's cost — the dominance
                    # guarantee over the legacy solver lives here.
                    kernel.wake_all(state)
                    current_cost = kernel.descend(state, budget=timer)
                    run_best = min(run_best, current_cost)
                    note(current_cost)
                runs.append(RunResult(start_kind, run_best, kicks))
            if current_cost < best_cost:
                best_tour = state.tour.tolist()
                best_cost = current_cost
    except SolverBudgetExceeded as exc:
        if state is not None and state.cost < seen_cost:
            # descend() syncs the state before raising, so this is a
            # complete tour with an exact delta-tracked cost.
            seen_tour, seen_cost = state.tour.tolist(), state.cost
        if exc.best_so_far is None and seen_tour is not None:
            exc.best_so_far = [int(c) for c in seen_tour]
        raise
    assert best_tour is not None
    return SolveResult(
        tour=[int(c) for c in best_tour], cost=float(best_cost), runs=runs
    )
