"""Directed 3-Opt local search.

The paper solves the alignment DTSP by applying symmetric iterated 3-Opt to
the standard 2-node DTSP→STSP transformation with the intra-pair edges
locked into the tour.  On that doubled instance, the feasible 3-Opt moves —
those that keep every locked edge and create no in–in/out–out edge — are
exactly the *orientation-preserving* directed 3-opt moves: remove edges
(a,a⁺), (b,b⁺), (c,c⁺) with a…b…c in cyclic order and reconnect as
a→b⁺…c→a⁺…b→c⁺ (segment exchange; segment relocation is the special case).
This module searches that move space directly on the directed matrix, which
is the same neighborhood without the −M/+M bookkeeping.

Implementation follows the standard engineering of Johnson & McGeoch's
case study: sorted candidate neighbor lists, positive-gain pruning, a
first-improvement strategy, and don't-look bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.budget import BudgetTimer
from repro.tsp.instance import check_matrix, out_neighbor_lists, tour_cost

_EPS = 1e-9

#: Budget poll period inside the descent loop: one wall-clock read per this
#: many queue pops keeps the overhead unmeasurable.
_BUDGET_POLL = 64


@dataclass
class SearchStats:
    """Counters for one local-search run (used by reports and tests)."""

    moves: int = 0
    scans: int = 0


class ThreeOptSearch:
    """Reusable directed 3-opt engine for one cost matrix."""

    def __init__(self, matrix: np.ndarray, *, neighbors: int = 12):
        self.matrix = check_matrix(matrix)
        self.n = self.matrix.shape[0]
        self.out_neigh = out_neighbor_lists(self.matrix, neighbors)
        # In-neighbors: cities c with small c(c, j), for the second move form.
        self.in_neigh = out_neighbor_lists(self.matrix.T, neighbors)

    def optimize(
        self, tour: list[int], *, budget: BudgetTimer | None = None
    ) -> tuple[list[int], SearchStats]:
        """Run 3-opt to a local optimum, returning a new tour.

        ``budget`` (a running :class:`~repro.budget.BudgetTimer`) is polled
        every few queue pops; an expired wall clock aborts the descent by
        raising :class:`~repro.errors.SolverBudgetExceeded`.  The partially
        descended tour is discarded — callers salvage their last complete
        tour instead.
        """
        n = self.n
        stats = SearchStats()
        if n < 4:
            return list(tour), stats
        tour = list(tour)
        pos = [0] * n
        for i, city in enumerate(tour):
            pos[city] = i

        dont_look = [False] * n
        queue = list(tour)
        queued = [True] * n

        def wake(city: int) -> None:
            dont_look[city] = False
            if not queued[city]:
                queued[city] = True
                queue.append(city)

        pops = 0
        while queue:
            pops += 1
            if budget is not None and pops % _BUDGET_POLL == 0:
                budget.check(where="3opt-descent")
            a = queue.pop()
            queued[a] = False
            if dont_look[a]:
                continue
            improved = self._improve_from(a, tour, pos, stats, wake)
            if improved:
                wake(a)
            else:
                dont_look[a] = True
        return tour, stats

    # -- move search --------------------------------------------------------

    def _improve_from(self, a, tour, pos, stats, wake) -> bool:
        """Try to find one improving move with first removed edge (a, a+)."""
        w = self.matrix
        n = self.n
        pa = pos[a]
        a_next = tour[(pa + 1) % n]
        w_a = w[a, a_next]

        def sigma(city: int) -> int:
            return (pos[city] - pa) % n

        for b_next in self.out_neigh[a]:
            b_next = int(b_next)
            gain1 = w_a - w[a, b_next]
            if gain1 <= _EPS:
                break  # neighbor lists are sorted: no further candidate helps
            sb_next = sigma(b_next)
            if sb_next <= 1:  # b_next is a or a+: degenerate
                continue
            b = tour[(pos[b_next] - 1) % n]
            w_b = w[b, b_next]
            stats.scans += 1

            # Form 1: pick the third removed edge via out-neighbors of b.
            for c_next in self.out_neigh[b]:
                c_next = int(c_next)
                gain2 = gain1 + w_b - w[b, c_next]
                if gain2 <= _EPS:
                    break
                sc_next = sigma(c_next)
                # need sigma(c) in [sigma(b)+1 .. n-1] i.e. sigma(c+) in
                # [sigma(b+)+1 .. n-1] or c+ == a (sigma 0).
                if sc_next == 0:
                    sc = n - 1
                elif sc_next > sb_next:
                    sc = sc_next - 1
                else:
                    continue
                c = tour[(pa + sc) % n]
                delta = -gain2 + w[c, a_next] - w[c, tour[(pa + sc + 1) % n]]
                if delta < -_EPS:
                    self._apply(tour, pos, pa, sb_next - 1, sc)
                    stats.moves += 1
                    for city in (a, a_next, b, b_next, c, c_next):
                        wake(city)
                    return True

            # Form 2: pick c via in-neighbors of a+ (short new edge (c, a+)).
            for c in self.in_neigh[a_next]:
                c = int(c)
                sc = sigma(c)
                if not (sb_next <= sc <= n - 1):
                    continue
                c_next = tour[(pa + sc + 1) % n]
                gain2 = gain1 + w[c, c_next] - w[c, a_next]
                if gain2 <= _EPS:
                    # Not monotone in the (c, a+) ordering, so skip rather
                    # than break: w(c, c+) varies per candidate.
                    continue
                delta = -gain2 + w[b, c_next] - w_b
                if delta < -_EPS:
                    self._apply(tour, pos, pa, sb_next - 1, sc)
                    stats.moves += 1
                    for city in (a, a_next, b, b_next, c, c_next):
                        wake(city)
                    return True
        return False

    def _apply(self, tour, pos, pa, sb, sc) -> None:
        """Reconnect a→b⁺…c→a⁺…b→c⁺.

        ``pa`` is the tour index of a; ``sb``/``sc`` are the offsets (from a)
        of b and c.  Rebuilds the tour with a at index 0.
        """
        n = self.n
        rotated = tour[pa:] + tour[:pa]
        new_tour = (
            [rotated[0]]
            + rotated[sb + 1: sc + 1]
            + rotated[1: sb + 1]
            + rotated[sc + 1:]
        )
        tour[:] = new_tour
        for i, city in enumerate(tour):
            pos[city] = i


def three_opt(
    matrix: np.ndarray, tour: list[int], *, neighbors: int = 12
) -> tuple[list[int], float]:
    """One-shot helper: optimize ``tour`` and return (tour, cost)."""
    search = ThreeOptSearch(matrix, neighbors=neighbors)
    optimized, _ = search.optimize(tour)
    return optimized, tour_cost(matrix, optimized)
