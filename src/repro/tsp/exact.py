"""Exact DTSP solution by Held–Karp dynamic programming.

O(n² · 2ⁿ) bitmask DP — practical to n ≈ 15, which covers a large share of
real alignment instances (small procedures) and gives the test suite ground
truth to validate the heuristics and lower bounds against.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPError, check_matrix

#: Refuse instances beyond this size (2^20 states would already be painful).
MAX_EXACT_CITIES = 16


def exact_tour(matrix: np.ndarray) -> tuple[list[int], float]:
    """Minimum-cost Hamiltonian cycle (tour, cost), anchored at city 0.

    Anchoring at a fixed city loses no generality for cycles.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    if n > MAX_EXACT_CITIES:
        raise TSPError(
            f"exact solver limited to {MAX_EXACT_CITIES} cities, got {n}"
        )
    if n == 2:
        return [0, 1], float(matrix[0, 1] + matrix[1, 0])

    m = n - 1  # cities 1..n-1
    size = 1 << m
    inf = float("inf")
    dp = np.full((size, m), inf)
    parent = np.full((size, m), -1, dtype=np.int64)
    for j in range(m):
        dp[1 << j, j] = matrix[0, j + 1]

    # Layered vectorized Held–Karp: every transition grows the subset by
    # one city, so masks can be processed popcount-layer by layer with the
    # whole layer's relaxation done in array ops.  dp[mask | bit_k, k] has
    # exactly one predecessor mask (mask itself), so the min over j is a
    # plain row-wise argmin — no scatter conflicts.
    masks = np.arange(size, dtype=np.int64)
    popcount = np.zeros(size, dtype=np.int64)
    for j in range(m):
        popcount += (masks >> j) & 1
    inner = matrix[1:, 1:]
    for layer in range(1, m):
        layer_masks = masks[popcount == layer]
        for k in range(m):
            bit = 1 << k
            sources = layer_masks[(layer_masks & bit) == 0]
            if sources.size == 0:
                continue
            # dp[mask, j] is inf whenever j is outside mask (never
            # written), so unreachable predecessors exclude themselves.
            cand = dp[sources] + inner[:, k]
            arg = np.argmin(cand, axis=1)
            best = cand[np.arange(sources.size), arg]
            ok = best < inf
            targets = sources[ok] | bit
            dp[targets, k] = best[ok]
            parent[targets, k] = arg[ok]

    full = size - 1
    closing = dp[full] + matrix[1:, 0]
    last = int(np.argmin(closing))
    best = float(closing[last])

    order = []
    mask, j = full, last
    while j != -1:
        order.append(j + 1)
        mask, j = mask ^ (1 << j), int(parent[mask, j])
    order.append(0)
    order.reverse()
    return order, best


def exact_path(matrix: np.ndarray, start: int, end: int) -> tuple[list[int], float]:
    """Minimum-cost Hamiltonian path from ``start`` to ``end``.

    Implemented by zeroing the closing edge: solve the cycle problem on a
    matrix where end→start costs 0 and end→anything-else is forbidden.
    """
    matrix = check_matrix(matrix).copy()
    n = matrix.shape[0]
    if not (0 <= start < n and 0 <= end < n) or start == end:
        raise TSPError("invalid path endpoints")
    big = float(matrix.max()) * n + 1.0
    matrix[end, :] = big
    matrix[end, start] = 0.0
    matrix[:, start] = big
    matrix[end, start] = 0.0
    # Re-anchor city indices so the DP's fixed city is `start`.
    perm = [start] + [c for c in range(n) if c != start]
    inv = {c: i for i, c in enumerate(perm)}
    permuted = matrix[np.ix_(perm, perm)]
    tour, cost = exact_tour(permuted)
    path = [perm[c] for c in tour]
    if path[-1] != end:
        raise TSPError("no Hamiltonian path respects the endpoints")
    return path, cost
