"""Iterated 3-Opt (Martin–Otto–Felten large-step Markov chains).

Each *run* starts from a construction tour, descends to a 3-opt local
optimum, and then repeats: random double-bridge kick (the orientation-
preserving 4-opt move, legal for directed tours), re-descend, keep the
result when it is no worse.  Following the paper's appendix, the full
"paper effort" configuration performs 10 runs per instance — 5 randomized
Greedy starts, 4 randomized Nearest-Neighbor starts, 1 compiler-order start
— of 2N iterations each, and returns the best tour found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.errors import SolverBudgetExceeded
from repro.tsp.construction import (
    greedy_edge_tour,
    identity_tour,
    nearest_neighbor_tour,
)
from repro.tsp.instance import check_matrix, tour_cost
from repro.tsp.local_search import ThreeOptSearch


def double_bridge(tour: list[int], rng: random.Random) -> list[int]:
    """The classic 4-opt double-bridge kick: A B C D → A C B D.

    Preserves every segment's orientation, so it is directly usable on
    directed tours.
    """
    n = len(tour)
    if n < 8:
        # Tiny tours: rotate-and-swap two random cities instead.
        kicked = list(tour)
        if n >= 4:
            i, j = rng.sample(range(1, n), 2)
            kicked[i], kicked[j] = kicked[j], kicked[i]
        return kicked
    cuts = sorted(rng.sample(range(1, n), 3))
    i, j, k = cuts
    return tour[:i] + tour[j:k] + tour[i:j] + tour[k:]


@dataclass
class RunResult:
    """Outcome of one iterated-3-opt run."""

    start_kind: str
    cost: float
    iterations: int


@dataclass
class SolveResult:
    """Best tour over all runs, plus per-run outcomes for the appendix
    stability statistics ("on 128 of the 179 procedures [the best tour] was
    found on all 10 runs")."""

    tour: list[int]
    cost: float
    runs: list[RunResult] = field(default_factory=list)

    @property
    def runs_finding_best(self) -> int:
        return sum(1 for r in self.runs if r.cost <= self.cost + 1e-6)


def _construct(kind: str, matrix: np.ndarray, rng: random.Random) -> list[int]:
    n = matrix.shape[0]
    if kind == "greedy":
        return greedy_edge_tour(matrix, rng, jitter=0.15)
    if kind == "nn":
        return nearest_neighbor_tour(matrix, rng, candidates=3)
    if kind == "identity":
        return identity_tour(n)
    if kind == "patch":
        # AP + Karp patching: strong on instances with a small AP gap
        # (imported here to avoid an import cycle with patching).
        from repro.tsp.patching import patched_tour

        tour, _ = patched_tour(matrix)
        return tour
    raise ValueError(f"unknown start kind {kind!r}")


def iterated_three_opt(
    matrix: np.ndarray,
    *,
    starts: tuple[str, ...] = ("greedy", "nn", "identity"),
    iterations: int | None = None,
    neighbors: int = 12,
    seed: int = 0,
    budget: Budget | BudgetTimer | None = None,
) -> SolveResult:
    """Run iterated 3-opt from each start; return the best tour found.

    ``iterations`` is the number of kick/re-descend steps per run; the
    paper uses 2N (pass ``None`` for that default).  A ``budget`` is
    checked at every start and kick boundary (and periodically inside the
    3-opt descent); on expiry :class:`SolverBudgetExceeded` propagates with
    the best complete tour found so far attached as ``best_so_far``.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    rng = random.Random(seed)
    search = ThreeOptSearch(matrix, neighbors=neighbors)
    kicks = 2 * n if iterations is None else iterations
    timer = ensure_timer(budget)

    best_tour: list[int] | None = None
    best_cost = float("inf")
    # Best locally-optimal tour seen at *any* boundary — only used to
    # salvage work when the budget expires mid-run.
    seen_tour: list[int] | None = None
    seen_cost = float("inf")
    runs: list[RunResult] = []
    try:
        for start_kind in starts:
            if timer is not None:
                timer.check(where="iterated-3opt")
            with obs.span("tsp_run", start=start_kind):
                obs.count("tsp.runs")
                current, _ = search.optimize(
                    _construct(start_kind, matrix, rng), budget=timer
                )
                current_cost = tour_cost(matrix, current)
                if current_cost < seen_cost:
                    seen_tour, seen_cost = current, current_cost
                run_best = current_cost
                for _ in range(kicks):
                    if timer is not None:
                        timer.tick(where="iterated-3opt")
                    obs.count("tsp.kicks")
                    candidate, _ = search.optimize(
                        double_bridge(current, rng), budget=timer
                    )
                    candidate_cost = tour_cost(matrix, candidate)
                    if candidate_cost <= current_cost + 1e-9:
                        if candidate_cost < current_cost - 1e-9:
                            obs.count("tsp.improving_moves")
                        current, current_cost = candidate, candidate_cost
                        run_best = min(run_best, current_cost)
                        if current_cost < seen_cost:
                            seen_tour, seen_cost = current, current_cost
                runs.append(RunResult(start_kind, run_best, kicks))
            if current_cost < best_cost:
                best_tour, best_cost = current, current_cost
    except SolverBudgetExceeded as exc:
        if exc.best_so_far is None and seen_tour is not None:
            exc.best_so_far = seen_tour
        raise
    assert best_tour is not None
    return SolveResult(tour=best_tour, cost=best_cost, runs=runs)
