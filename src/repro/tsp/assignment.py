"""Assignment problem (AP): Hungarian algorithm and the AP lower bound.

The AP relaxation of the DTSP — the minimum-cost collection of disjoint
directed cycles covering all cities — is the classic lower bound and the
basis of patching heuristics (Karp 1979).  The paper's appendix observes
that alignment instances often have a large AP-to-optimum gap (median 30%
on the esp.tl procedures where they differ), which is why the Held–Karp
bound and iterated 3-Opt are needed; the A2/appendix benches reproduce that
comparison with this module.

The from-scratch solver is the O(n³) shortest-augmenting-path Hungarian
algorithm with row/column potentials (the same scheme as Jonker–Volgenant),
implemented with numpy inner loops.  When SciPy is importable its C
``linear_sum_assignment`` is used instead for the *value*-consuming callers
(bounds, branch and bound); both backends find a minimum-cost matching, so
the optimal total is identical, but tie-broken matchings may differ — code
whose *output structure* feeds deterministic downstream results (patching)
pins ``backend="pure"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownNameError
from repro.tsp.instance import check_matrix

try:  # SciPy is optional: CI images carry only numpy + pytest.
    from scipy.optimize import linear_sum_assignment as _scipy_assignment
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _scipy_assignment = None

#: Backend choices for :func:`solve_assignment`.
ASSIGNMENT_BACKENDS = ("auto", "scipy", "pure")


def resolve_assignment_backend(backend: str | None = None) -> str:
    """Resolve an assignment backend name to a concrete implementation.

    ``auto`` (the default) picks SciPy's C solver when importable, else the
    pure-python Hungarian; asking for ``scipy`` without scipy installed is
    an error rather than a silent fallback.
    """
    choice = backend or "auto"
    if choice not in ASSIGNMENT_BACKENDS:
        known = ", ".join(ASSIGNMENT_BACKENDS)
        raise UnknownNameError(
            f"unknown assignment backend {choice!r} (known: {known})"
        )
    if choice == "scipy" and _scipy_assignment is None:
        raise UnknownNameError(
            "assignment backend 'scipy' requested but scipy is not installed"
        )
    if choice == "auto":
        return "scipy" if _scipy_assignment is not None else "pure"
    return choice


def solve_assignment(
    cost: np.ndarray, *, backend: str | None = None
) -> tuple[np.ndarray, float]:
    """Minimum-cost perfect matching rows→columns.

    Returns ``(match, total)`` where ``match[i]`` is the column assigned to
    row ``i``.  The minimum *total* is backend-independent; the matching
    itself is only guaranteed identical across environments with
    ``backend="pure"``.
    """
    cost = check_matrix(cost)
    if resolve_assignment_backend(backend) == "scipy":
        rows, cols = _scipy_assignment(cost)
        match = np.asarray(cols, dtype=np.int64)
        return match, float(cost[rows, cols].sum())
    return _solve_assignment_pure(cost)


def _solve_assignment_pure(cost: np.ndarray) -> tuple[np.ndarray, float]:
    n = cost.shape[0]
    inf = float("inf")
    # 1-based arrays; p[j] = row matched to column j (0 = none).
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)
    way = np.zeros(n + 1, dtype=np.int64)

    padded = np.zeros((n + 1, n + 1))
    padded[1:, 1:] = cost

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # Relax all unused columns against row i0 (vectorized).
            free = ~used
            free[0] = False
            cur = padded[i0] - u[i0] - v
            better = free & (cur < minv)
            minv[better] = cur[better]
            way[better] = j0
            candidates = np.where(free, minv, inf)
            j1 = int(np.argmin(candidates))
            delta = candidates[j1]
            u[p[used]] += delta
            v[used] -= delta
            minv[free] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    match = np.zeros(n, dtype=np.int64)
    total = 0.0
    for j in range(1, n + 1):
        match[p[j] - 1] = j - 1
        total += float(cost[p[j] - 1, j - 1])
    return match, total


@dataclass
class CycleCover:
    """An AP solution viewed as a directed cycle cover."""

    successor: np.ndarray
    cost: float

    def cycles(self) -> list[list[int]]:
        n = len(self.successor)
        seen = [False] * n
        cycles = []
        for start in range(n):
            if seen[start]:
                continue
            cycle = []
            city = start
            while not seen[city]:
                seen[city] = True
                cycle.append(city)
                city = int(self.successor[city])
            cycles.append(cycle)
        return cycles

    @property
    def is_tour(self) -> bool:
        return len(self.cycles()) == 1


def assignment_cycle_cover(
    matrix: np.ndarray, *, backend: str | None = None
) -> CycleCover:
    """Solve the AP relaxation of the DTSP (self-edges forbidden)."""
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    forbid = float(np.abs(matrix).max()) * n * 4.0 + 1.0
    work = matrix.copy()
    np.fill_diagonal(work, forbid)
    match, total = solve_assignment(work, backend=backend)
    return CycleCover(successor=match, cost=total)


def assignment_bound(matrix: np.ndarray) -> float:
    """The AP lower bound on the DTSP optimum."""
    return assignment_cycle_cover(matrix).cost
