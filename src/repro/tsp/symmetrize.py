"""The 2-node DTSP→STSP transformation.

City v becomes two nodes: *in(v)* (= v) and *out(v)* (= n + v).  The edge
{in(v), out(v)} gets weight −M and is locked into every optimal tour; the
edge {out(u), in(v)} gets the directed cost c(u, v); every other pair (in–in
or out–out) is forbidden at +M.  A symmetric tour containing all n locked
edges alternates in/out nodes and reads off as a directed tour of cost
(symmetric cost + n·M).

The alignment pipeline uses this transformation where the paper does: to
compute Held–Karp lower bounds on the symmetrized instance (Appendix).  The
local search explores the equivalent move space directly on the directed
matrix (see :mod:`repro.tsp.local_search`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tsp.instance import TSPError, check_matrix


@dataclass
class SymmetrizedInstance:
    """A doubled symmetric instance derived from a directed matrix."""

    sym_matrix: np.ndarray
    lock_weight: float     # the M of the −M locked edges
    forbid_weight: float   # the +M of in–in / out–out edges
    n_cities: int

    def in_node(self, city: int) -> int:
        return city

    def out_node(self, city: int) -> int:
        return self.n_cities + city

    def directed_cost(self, sym_tour_cost: float) -> float:
        """Directed tour cost corresponding to a feasible symmetric cost."""
        return sym_tour_cost + self.n_cities * self.lock_weight

    def directed_tour_from_sym(self, sym_tour: list[int]) -> list[int]:
        """Decode a feasible symmetric tour into the directed city order."""
        n = self.n_cities
        if sorted(sym_tour) != list(range(2 * n)):
            raise TSPError("symmetric tour is not a permutation of 2n nodes")
        # Walk the cycle; successive (in, out) pairs give the city order.
        # Normalize direction so we traverse in -> out across locked edges.
        start = sym_tour.index(0)  # in-node of city 0
        cycle = sym_tour[start:] + sym_tour[:start]
        if cycle[1] != self.out_node(0):
            cycle = [cycle[0]] + cycle[:0:-1]
        if cycle[1] != self.out_node(0):
            raise TSPError("symmetric tour does not honor the locked edges")
        cities = []
        for i in range(0, 2 * n, 2):
            in_node, out_node = cycle[i], cycle[i + 1]
            if out_node != in_node + n:
                raise TSPError("symmetric tour does not honor the locked edges")
            cities.append(in_node)
        return cities


def symmetrize(
    matrix: np.ndarray, *, tour_upper_bound: float | None = None
) -> SymmetrizedInstance:
    """Build the doubled symmetric instance for a directed matrix.

    ``tour_upper_bound`` should be the cost of any known feasible directed
    tour.  The lock weight only needs to exceed the optimal directed cost
    for locked edges to dominate, and keeping it small preserves floating-
    point precision in downstream bound computations.  Without a bound we
    fall back to n · max-entry, which is always sufficient (all costs are
    non-negative in alignment instances).
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    if (matrix < 0).any():
        raise TSPError("symmetrize expects non-negative directed costs")
    if tour_upper_bound is None:
        tour_upper_bound = float(matrix.max()) * n
    lock = float(tour_upper_bound) + 1.0
    forbid = (2.0 * n + 4.0) * lock + 1.0

    sym = np.full((2 * n, 2 * n), forbid, dtype=float)
    # out(u) -- in(v) edges carry the directed costs (both triangle halves).
    sym[n:, :n] = matrix
    sym[:n, n:] = matrix.T
    # Locked in(v) -- out(v) pairs.
    idx = np.arange(n)
    sym[idx, idx + n] = -lock
    sym[idx + n, idx] = -lock
    np.fill_diagonal(sym, forbid)
    return SymmetrizedInstance(
        sym_matrix=sym, lock_weight=lock, forbid_weight=forbid, n_cities=n
    )


def directed_tour_to_sym(tour: list[int], n: int) -> list[int]:
    """Encode a directed tour as the corresponding symmetric tour."""
    sym_tour: list[int] = []
    for city in tour:
        sym_tour.append(city)
        sym_tour.append(n + city)
    return sym_tour
