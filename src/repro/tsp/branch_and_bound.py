"""Exact DTSP solving by assignment-based branch and bound.

Carpaneto–Toth-style subtour branching: solve the assignment relaxation at
each node; if the cycle cover is a single tour it is optimal for the node,
otherwise branch on the arcs of the shortest subtour (child k forbids arc k
and commits arcs 1..k-1).  With a good initial upper bound (we use iterated
3-Opt) this certifies optimality on the mid-sized alignment instances the
bitmask DP (n ≤ 16) cannot reach — the appendix bench uses it to measure
true AP/HK gaps, and the test suite uses it to validate the heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.tsp.assignment import CycleCover, solve_assignment
from repro.tsp.instance import check_matrix, tour_cost, tour_from_successors
from repro.tsp.kernel import kernel_iterated_three_opt


@dataclass
class BnBResult:
    """Outcome of a branch-and-bound run."""

    tour: list[int]
    cost: float
    optimal: bool          # False when the node budget ran out
    nodes: int


def _cycle_cover(matrix: np.ndarray, forbid: float) -> CycleCover:
    work = matrix.copy()
    np.fill_diagonal(work, forbid)
    match, total = solve_assignment(work)
    return CycleCover(successor=match, cost=total)


def branch_and_bound(
    matrix: np.ndarray,
    *,
    upper_bound: float | None = None,
    initial_tour: list[int] | None = None,
    max_nodes: int = 50_000,
    seed: int = 0,
    budget: Budget | BudgetTimer | None = None,
) -> BnBResult:
    """Solve the DTSP exactly (within ``max_nodes`` subproblems).

    Returns the best tour found and whether optimality was proved.  The
    initial incumbent comes from ``initial_tour`` or a quick iterated 3-Opt.
    An expired ``budget`` stops the node loop gracefully: the incumbent is
    returned with ``optimal=False`` (same contract as a node-limit hit).
    """
    matrix = check_matrix(matrix)
    timer = ensure_timer(budget)
    n = matrix.shape[0]
    forbid = float(np.abs(matrix).max()) * n * 4.0 + 1.0

    if initial_tour is None:
        # Guarded kernel: same-or-better incumbent than the legacy solver
        # for the same seed, so the node count can only shrink.
        heur = kernel_iterated_three_opt(
            matrix, starts=("greedy", "identity"), iterations=n, seed=seed
        )
        best_tour, best_cost = heur.tour, heur.cost
    else:
        best_tour = list(initial_tour)
        best_cost = tour_cost(matrix, best_tour)
    if upper_bound is not None:
        best_cost = min(best_cost, upper_bound)

    nodes = 0
    optimal = True
    # Each stack entry is the modified matrix of the subproblem.  Matrices
    # are small (alignment instances are a few hundred cities at most), so
    # copying beats bookkeeping.
    root = matrix.copy()
    stack: list[np.ndarray] = [root]
    eps = 1e-9

    while stack:
        if nodes >= max_nodes or (timer is not None and timer.expired):
            optimal = False
            break
        work = stack.pop()
        nodes += 1
        cover = _cycle_cover(work, forbid)
        if cover.cost >= best_cost - eps or cover.cost >= forbid:
            continue
        cycles = cover.cycles()
        if len(cycles) == 1:
            tour = tour_from_successors(cover.successor, start=0)
            true_cost = tour_cost(matrix, tour)
            if true_cost < best_cost - eps:
                best_cost = true_cost
                best_tour = tour
            continue
        shortest = min(cycles, key=len)
        arcs = [
            (city, int(cover.successor[city]))
            for city in shortest
        ]
        committed: list[tuple[int, int]] = []
        for src, dst in arcs:
            child = work.copy()
            for csrc, cdst in committed:
                # Commit arc: forbid every alternative leaving csrc or
                # entering cdst.
                row = child[csrc].copy()
                child[csrc, :] = forbid
                child[csrc, cdst] = row[cdst]
                col = child[:, cdst].copy()
                child[:, cdst] = forbid
                child[csrc, cdst] = col[csrc]
            child[src, dst] = forbid
            stack.append(child)
            committed.append((src, dst))

    return BnBResult(tour=best_tour, cost=best_cost, optimal=optimal, nodes=nodes)
