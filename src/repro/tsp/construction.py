"""Tour construction heuristics for the DTSP.

The paper's iterated 3-Opt is started from "randomized Greedy starts",
"randomized Nearest Neighbor starts", and "the original ordering given by
the compiler" (Appendix).  These are those constructors, on the directed
matrix.
"""

from __future__ import annotations

import random

import numpy as np

from repro.tsp.instance import check_matrix


def nearest_neighbor_tour(
    matrix: np.ndarray,
    rng: random.Random | None = None,
    *,
    start: int | None = None,
    candidates: int = 1,
) -> list[int]:
    """Directed nearest-neighbor construction.

    With ``candidates > 1`` the next city is drawn uniformly from the
    ``candidates`` cheapest unvisited continuations — the standard
    randomization used to diversify starts.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    rng = rng or random.Random(0)
    city = rng.randrange(n) if start is None else start
    unvisited = np.ones(n, dtype=bool)
    unvisited[city] = False
    tour = [city]
    for _ in range(n - 1):
        row = matrix[city]
        choices = np.flatnonzero(unvisited)
        costs = row[choices]
        if candidates <= 1 or len(choices) == 1:
            best = choices[int(np.argmin(costs))]
        else:
            k = min(candidates, len(choices))
            nearest = choices[np.argsort(costs, kind="stable")[:k]]
            best = nearest[rng.randrange(k)]
        city = int(best)
        unvisited[city] = False
        tour.append(city)
    return tour


def greedy_edge_tour(
    matrix: np.ndarray,
    rng: random.Random | None = None,
    *,
    jitter: float = 0.0,
) -> list[int]:
    """Directed greedy-edge construction.

    Edges are considered in ascending cost order; an edge (a, b) is accepted
    when a has no successor yet, b has no predecessor yet, and accepting it
    closes no premature cycle.  ``jitter`` randomizes the order by scaling
    each cost by U(1, 1+jitter), the usual way to randomize Greedy starts.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    rng = rng or random.Random(0)
    costs = matrix.copy().astype(float)
    if jitter > 0:
        noise = np.array(
            [[rng.uniform(1.0, 1.0 + jitter) for _ in range(n)] for _ in range(n)]
        )
        costs = costs * noise
    np.fill_diagonal(costs, np.inf)

    order = np.argsort(costs, axis=None, kind="stable")
    succ = [-1] * n
    pred = [-1] * n
    # Union-find over path fragments to reject premature cycles.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    accepted = 0
    for flat in order:
        if accepted == n - 1:
            break
        a, b = divmod(int(flat), n)
        if a == b or succ[a] != -1 or pred[b] != -1:
            continue
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        succ[a] = b
        pred[b] = a
        parent[ra] = rb
        accepted += 1

    # Chain the remaining path fragments head-to-tail (cheapest-first would
    # be nicer but fragments are few; the local search cleans this up).
    heads = [c for c in range(n) if pred[c] == -1]
    tour: list[int] = []
    for head in heads:
        city = head
        while city != -1:
            tour.append(city)
            city = succ[city]
    return tour


def identity_tour(n: int) -> list[int]:
    """The compiler's original ordering (cities are emitted entry-first)."""
    return list(range(n))
