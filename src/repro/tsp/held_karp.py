"""Held–Karp lower bound via 1-tree Lagrangian relaxation.

The Held–Karp bound is the value of the LP relaxation of the STSP; the
classic iterative scheme (Held & Karp 1970, 1971) approaches it from below
by subgradient ascent on node multipliers π over minimum 1-trees.  Every
iterate yields a valid lower bound, so the maximum over iterations is a
certified bound regardless of convergence.

For directed alignment instances the bound is computed, as in the paper's
appendix, on the 2-node symmetrized instance; the locked-edge offset n·M is
added back to translate it to the directed problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.tsp.instance import check_matrix
from repro.tsp.symmetrize import symmetrize


@dataclass
class BoundResult:
    """A certified lower bound plus convergence diagnostics."""

    bound: float
    iterations: int
    converged_to_tour: bool = False
    #: True when a budget cut the ascent short; the bound is still certified
    #: (every subgradient iterate is a valid lower bound), just looser.
    budget_exhausted: bool = False


def minimum_one_tree(
    adjusted: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Minimum 1-tree cost and node degrees under an adjusted weight matrix.

    The 1-tree is an MST over nodes {1..N-1} plus the two cheapest edges
    incident to node 0 (Prim's algorithm with dense numpy rows).
    """
    n = adjusted.shape[0]
    degrees = np.zeros(n, dtype=np.int64)
    # Prim over nodes 1..N-1, rooted at node 1.
    best_cost = adjusted[1].copy()
    best_parent = np.full(n, 1, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True  # excluded from the MST part
    in_tree[1] = True
    best_cost[in_tree] = np.inf
    total = 0.0
    for _ in range(n - 2):
        node = int(np.argmin(best_cost))
        total += float(best_cost[node])
        in_tree[node] = True
        degrees[node] += 1
        degrees[best_parent[node]] += 1
        best_cost[node] = np.inf
        row = adjusted[node]
        better = row < best_cost
        better[in_tree] = False
        best_cost[better] = row[better]
        best_parent[better] = node
    # Two cheapest edges at node 0.
    row0 = adjusted[0].copy()
    row0[0] = np.inf
    first = int(np.argmin(row0))
    total += float(row0[first])
    row0[first] = np.inf
    second = int(np.argmin(row0))
    total += float(row0[second])
    degrees[0] = 2
    degrees[first] += 1
    degrees[second] += 1
    return total, degrees


def held_karp_bound_symmetric(
    weights: np.ndarray,
    *,
    upper_bound: float | None = None,
    iterations: int | None = None,
    initial_lambda: float = 2.0,
    patience: int = 12,
    budget: Budget | BudgetTimer | None = None,
) -> BoundResult:
    """Subgradient-ascent Held–Karp bound for a symmetric matrix.

    Uses the textbook step rule t = λ (UB − L) / ‖d‖², halving λ after
    ``patience`` non-improving iterations.  Without an upper bound, a
    greedy-ish proxy (twice the best 1-tree) stands in; the returned bound
    stays certified either way.  An expired ``budget`` stops the ascent
    gracefully: the best bound so far is returned (never raises — every
    iterate is certified), flagged ``budget_exhausted``.
    """
    weights = check_matrix(weights)
    n = weights.shape[0]
    if iterations is None:
        iterations = max(60, min(400, 4 * n))
    timer = ensure_timer(budget)
    pi = np.zeros(n)
    best = -np.inf
    stale = 0
    lam = initial_lambda
    converged = False
    for iteration in range(iterations):
        if timer is not None and timer.expired:
            return BoundResult(
                best, iteration, converged, budget_exhausted=True
            )
        adjusted = weights + pi[:, None] + pi[None, :]
        tree_cost, degrees = minimum_one_tree(adjusted)
        bound = tree_cost - 2.0 * float(pi.sum())
        if bound > best + 1e-9:
            best = bound
            stale = 0
        else:
            stale += 1
            if stale >= patience:
                lam *= 0.5
                stale = 0
                if lam < 1e-4:
                    return BoundResult(best, iteration + 1, converged)
        subgradient = degrees.astype(float) - 2.0
        norm = float((subgradient ** 2).sum())
        if norm == 0.0:
            # The 1-tree is a Hamiltonian cycle: the bound is the optimum.
            converged = True
            return BoundResult(best, iteration + 1, True)
        target = upper_bound if upper_bound is not None else best + abs(best) + 1.0
        step = lam * max(target - bound, 1e-12) / norm
        pi = pi + step * subgradient
    return BoundResult(best, iterations, converged)


def held_karp_bound_directed(
    matrix: np.ndarray,
    *,
    tour_upper_bound: float | None = None,
    iterations: int | None = None,
    budget: Budget | BudgetTimer | None = None,
) -> BoundResult:
    """Held–Karp bound for a directed matrix via the 2-node transformation.

    ``tour_upper_bound`` should be the cost of a known feasible directed
    tour (e.g. the identity layout); it sets the lock weight and the
    subgradient target.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    sym = symmetrize(matrix, tour_upper_bound=tour_upper_bound)
    offset = n * sym.lock_weight
    sym_upper = (
        tour_upper_bound - offset if tour_upper_bound is not None else None
    )
    result = held_karp_bound_symmetric(
        sym.sym_matrix,
        upper_bound=sym_upper,
        iterations=iterations,
        budget=budget,
    )
    bound = result.bound + offset
    # All alignment costs are non-negative, so 0 is always a valid bound;
    # the translated subgradient bound can dip below it early on tiny
    # instances.
    return BoundResult(
        max(bound, 0.0),
        result.iterations,
        result.converged_to_tour,
        budget_exhausted=result.budget_exhausted,
    )
