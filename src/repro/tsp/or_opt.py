"""Directed Or-opt local search.

Or-opt (Or 1976) relocates short segments (1–3 cities) without reversing
them — the classic *cheap* directed improvement move, and a strict subset
of the directed 3-opt neighborhood in :mod:`repro.tsp.local_search`.  It
exists here as the low rung of the solver ladder: when alignment must be
fast (JIT-ish budgets), Or-opt over a greedy start captures much of the
benefit at a fraction of 3-opt's cost, and the A2-style comparisons can
quantify exactly how much is left on the table.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import check_matrix, out_neighbor_lists, tour_cost

_EPS = 1e-9


def or_opt(
    matrix: np.ndarray,
    tour: list[int],
    *,
    max_segment: int = 3,
    neighbors: int = 10,
) -> tuple[list[int], float]:
    """Improve ``tour`` by segment relocation to a local optimum.

    For every segment of length 1..``max_segment`` the candidate insertion
    points come from the out-neighbor lists of the segment's predecessor
    (cities it would like to be followed by) — first-improvement, repeated
    until no move applies.
    """
    matrix = check_matrix(matrix)
    n = matrix.shape[0]
    if n < 4:
        return list(tour), tour_cost(matrix, tour)
    neigh = out_neighbor_lists(matrix, neighbors)
    tour = list(tour)

    improved = True
    while improved:
        improved = False
        pos = {city: i for i, city in enumerate(tour)}
        for start_index in range(n):
            if improved:
                break
            for length in range(1, max_segment + 1):
                if improved:
                    break
                # Segment S = tour[start .. start+length-1] (cyclic).
                segment = [
                    tour[(start_index + k) % n] for k in range(length)
                ]
                before = tour[(start_index - 1) % n]
                after = tour[(start_index + length) % n]
                if before in segment or after in segment:
                    continue  # segment covers (almost) the whole tour
                removed = (
                    matrix[before, segment[0]]
                    + matrix[segment[-1], after]
                )
                bridge = matrix[before, after]
                head, tail = segment[0], segment[-1]
                for candidate in neigh[tail]:
                    target = int(candidate)
                    # Insert S so that `tail -> target`: between pred(target)
                    # and target.
                    if target in segment or target == after:
                        continue
                    anchor = tour[(pos[target] - 1) % n]
                    if anchor in segment or anchor == before:
                        continue
                    added = (
                        bridge
                        + matrix[anchor, head]
                        + matrix[tail, target]
                    )
                    delta = added - removed - matrix[anchor, target]
                    if delta < -_EPS:
                        _relocate(tour, pos, segment, anchor)
                        improved = True
                        break
    return tour, tour_cost(matrix, tour)


def _relocate(
    tour: list[int], pos: dict[int, int], segment: list[int], anchor: int
) -> None:
    """Move ``segment`` (contiguous, cyclic) to directly after ``anchor``."""
    remaining = [city for city in tour if city not in set(segment)]
    at = remaining.index(anchor)
    new_tour = remaining[: at + 1] + segment + remaining[at + 1:]
    tour[:] = new_tour
    pos.clear()
    pos.update({city: i for i, city in enumerate(tour)})
