"""Top-level DTSP solving facade with effort presets.

``solve_dtsp`` picks the right tool for the instance size: exact dynamic
programming for tiny instances, iterated 3-Opt otherwise, with start/
iteration budgets controlled by an :class:`Effort` preset.  The ``paper``
preset matches the appendix configuration (10 runs — 5 randomized Greedy,
4 randomized Nearest Neighbor, 1 compiler order — of 2N iterations each).

The heuristic path runs on the flat-array kernel
(:mod:`repro.tsp.kernel`) in its guarded mode, whose tours cost no more
than the legacy list-based solver's for the same effort and seed.  The
``REPRO_TSP_SOLVER`` environment variable overrides the engine:
``guarded`` / ``turbo`` select a kernel mode, ``legacy`` is the kill
switch back to :func:`repro.tsp.iterated.iterated_three_opt`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import faults, obs
from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.errors import UnknownNameError
from repro.tsp.exact import MAX_EXACT_CITIES, exact_tour
from repro.tsp.instance import check_matrix, tour_cost
from repro.tsp.iterated import SolveResult, RunResult, iterated_three_opt
from repro.tsp.kernel import KERNEL_MODES, kernel_iterated_three_opt

#: Engine choices for the heuristic path (see resolve_solver_engine).
SOLVER_ENGINES = KERNEL_MODES + ("legacy",)


def resolve_solver_engine(engine: str | None = None) -> str:
    """Pick the heuristic solve engine: explicit argument, then the
    ``REPRO_TSP_SOLVER`` environment variable, then the guarded kernel."""
    choice = engine or os.environ.get("REPRO_TSP_SOLVER") or "guarded"
    if choice not in SOLVER_ENGINES:
        known = ", ".join(SOLVER_ENGINES)
        raise UnknownNameError(
            f"unknown solver engine {choice!r} (known: {known})"
        )
    return choice


@dataclass(frozen=True)
class Effort:
    """A solver budget: which starts, how many kicks, how many neighbors."""

    name: str
    starts: tuple[str, ...]
    iterations: int | None    # kicks per run; None = 2N (paper)
    neighbors: int = 12
    exact_threshold: int = 12  # use exact DP at or below this many cities


QUICK = Effort("quick", starts=("identity",), iterations=20, neighbors=8)
DEFAULT = Effort(
    "default", starts=("greedy", "nn", "identity", "patch"), iterations=None
)
#: The appendix configuration: 10 runs of 2N iterations each —
#: 5 randomized Greedy, 4 randomized Nearest Neighbor, 1 compiler order.
PAPER = Effort(
    "paper",
    starts=("greedy",) * 5 + ("nn",) * 4 + ("identity",),
    iterations=None,
)

EFFORTS = {e.name: e for e in (QUICK, DEFAULT, PAPER)}


def get_effort(effort: "Effort | str") -> Effort:
    if isinstance(effort, Effort):
        return effort
    try:
        return EFFORTS[effort]
    except KeyError:
        known = ", ".join(sorted(EFFORTS))
        raise UnknownNameError(
            f"unknown effort {effort!r} (known: {known})"
        ) from None


def solve_dtsp(
    matrix: np.ndarray,
    *,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | BudgetTimer | None = None,
    engine: str | None = None,
) -> SolveResult:
    """Find a (near-)optimal directed tour.

    Instances at or below the effort's exact threshold are solved optimally
    by Held–Karp DP; larger ones by iterated 3-Opt on the flat-array
    kernel (``engine`` / ``$REPRO_TSP_SOLVER`` pick the engine; see module
    docstring).  ``budget`` bounds the search: on expiry
    :class:`~repro.errors.SolverBudgetExceeded` is raised (carrying the
    best tour found so far, if any) so callers can degrade to a cheaper
    construction.
    """
    faults.check_solver_timeout()
    matrix = check_matrix(matrix)
    effort = get_effort(effort)
    engine = resolve_solver_engine(engine)
    timer = ensure_timer(budget)
    n = matrix.shape[0]
    if n <= min(effort.exact_threshold, MAX_EXACT_CITIES):
        with obs.span("dtsp_solve", cities=n, mode="exact"):
            if timer is not None:
                timer.check(where="exact")
            tour, cost = exact_tour(matrix)
            return SolveResult(
                tour=tour, cost=cost, runs=[RunResult("exact", cost, 0)]
            )
    with obs.span("dtsp_solve", cities=n, mode="3opt", engine=engine):
        if engine == "legacy":
            return iterated_three_opt(
                matrix,
                starts=effort.starts,
                iterations=effort.iterations,
                neighbors=effort.neighbors,
                seed=seed,
                budget=timer,
            )
        return kernel_iterated_three_opt(
            matrix,
            starts=effort.starts,
            iterations=effort.iterations,
            neighbors=effort.neighbors,
            seed=seed,
            budget=timer,
            mode=engine,
        )


def solution_gap(cost: float, bound: float) -> float:
    """Relative gap between a tour cost and a lower bound (0 = provably
    optimal; the paper reports a mean of 0.3% across benchmarks)."""
    if bound <= 0:
        return 0.0 if cost <= 1e-9 else float("inf")
    return (cost - bound) / bound
