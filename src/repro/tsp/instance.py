"""DTSP instances and tour primitives.

A DTSP instance is just a square cost matrix ``matrix[i, j]`` = cost of the
directed edge i→j, plus a ``big`` sentinel marking forbidden edges (used by
the alignment reduction to anchor the walk).  Tours are city-index lists
interpreted cyclically.
"""

from __future__ import annotations

import numpy as np


class TSPError(Exception):
    """Raised for malformed instances or tours."""


def check_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise TSPError(f"cost matrix must be square, got shape {matrix.shape}")
    if matrix.shape[0] < 2:
        raise TSPError("need at least two cities")
    if not np.isfinite(matrix).all():
        raise TSPError("cost matrix must be finite (use a BIG value, not inf)")
    return matrix


def check_tour(tour: list[int], n: int) -> None:
    if sorted(tour) != list(range(n)):
        raise TSPError(f"tour is not a permutation of {n} cities")


def tour_cost(matrix: np.ndarray, tour: list[int]) -> float:
    """Cost of the Hamiltonian cycle visiting ``tour`` in order."""
    total = 0.0
    for a, b in zip(tour, tour[1:]):
        total += matrix[a, b]
    total += matrix[tour[-1], tour[0]]
    return float(total)


def path_cost(matrix: np.ndarray, order: list[int]) -> float:
    """Cost of the open walk visiting ``order`` in order."""
    return float(sum(matrix[a, b] for a, b in zip(order, order[1:])))


def successor_array(tour: list[int]) -> np.ndarray:
    """``succ[city]`` = city following it in the cyclic tour."""
    n = len(tour)
    succ = np.empty(n, dtype=np.int64)
    for i, city in enumerate(tour):
        succ[city] = tour[(i + 1) % n]
    return succ


def tour_from_successors(succ: np.ndarray, start: int = 0) -> list[int]:
    n = len(succ)
    tour = [start]
    city = int(succ[start])
    while city != start:
        tour.append(city)
        if len(tour) > n:
            raise TSPError("successor array does not describe one cycle")
        city = int(succ[city])
    if len(tour) != n:
        raise TSPError("successor array does not describe one cycle")
    return tour


def out_neighbor_lists(matrix: np.ndarray, k: int) -> np.ndarray:
    """``neigh[i]`` = up to ``k`` cities j ≠ i sorted by ascending c(i, j).

    The local search uses these as candidate new-edge endpoints."""
    n = matrix.shape[0]
    k = min(k, n - 1)
    costs = matrix.copy()
    np.fill_diagonal(costs, np.inf)
    order = np.argsort(costs, axis=1, kind="stable")
    return order[:, :k].astype(np.int64)


def random_tour(n: int, rng) -> list[int]:
    tour = list(range(n))
    rng.shuffle(tour)
    return tour
