"""From-scratch TSP library: directed construction + local search, the
2-node symmetrization, Held–Karp bounds, assignment bounds, patching, and
exact DP for small instances."""

from repro.tsp.branch_and_bound import BnBResult, branch_and_bound
from repro.tsp.assignment import (
    ASSIGNMENT_BACKENDS,
    CycleCover,
    assignment_bound,
    assignment_cycle_cover,
    resolve_assignment_backend,
    solve_assignment,
)
from repro.tsp.construction import (
    greedy_edge_tour,
    identity_tour,
    nearest_neighbor_tour,
)
from repro.tsp.exact import exact_path, exact_tour
from repro.tsp.held_karp import (
    BoundResult,
    held_karp_bound_directed,
    held_karp_bound_symmetric,
    minimum_one_tree,
)
from repro.tsp.instance import (
    TSPError,
    check_matrix,
    check_tour,
    out_neighbor_lists,
    path_cost,
    tour_cost,
)
from repro.tsp.iterated import SolveResult, double_bridge, iterated_three_opt
from repro.tsp.kernel import (
    KERNEL_MODES,
    KernelState,
    KernelStats,
    SolverKernel,
    kernel_iterated_three_opt,
)
from repro.tsp.local_search import ThreeOptSearch, three_opt
from repro.tsp.or_opt import or_opt
from repro.tsp.patching import patched_tour
from repro.tsp.solve import (
    DEFAULT,
    EFFORTS,
    PAPER,
    QUICK,
    SOLVER_ENGINES,
    Effort,
    get_effort,
    resolve_solver_engine,
    solution_gap,
    solve_dtsp,
)
from repro.tsp.symmetrize import SymmetrizedInstance, directed_tour_to_sym, symmetrize

__all__ = [
    "ASSIGNMENT_BACKENDS",
    "BnBResult",
    "BoundResult",
    "branch_and_bound",
    "CycleCover",
    "DEFAULT",
    "EFFORTS",
    "Effort",
    "KERNEL_MODES",
    "KernelState",
    "KernelStats",
    "PAPER",
    "QUICK",
    "SOLVER_ENGINES",
    "SolveResult",
    "SolverKernel",
    "SymmetrizedInstance",
    "ThreeOptSearch",
    "TSPError",
    "assignment_bound",
    "assignment_cycle_cover",
    "check_matrix",
    "check_tour",
    "directed_tour_to_sym",
    "double_bridge",
    "exact_path",
    "exact_tour",
    "get_effort",
    "greedy_edge_tour",
    "held_karp_bound_directed",
    "held_karp_bound_symmetric",
    "identity_tour",
    "iterated_three_opt",
    "kernel_iterated_three_opt",
    "minimum_one_tree",
    "resolve_assignment_backend",
    "resolve_solver_engine",
    "nearest_neighbor_tour",
    "or_opt",
    "out_neighbor_lists",
    "patched_tour",
    "path_cost",
    "solution_gap",
    "solve_assignment",
    "solve_dtsp",
    "symmetrize",
    "three_opt",
    "tour_cost",
]
