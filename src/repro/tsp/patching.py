"""Karp's patching heuristic for the DTSP.

Solve the assignment relaxation, then repeatedly merge the two largest
cycles with the cheapest 2-exchange patch (Karp 1979).  The appendix notes
these AP-based approaches are "designed to exploit small gaps between the
AP bound and the optimal tour length" and underperform on alignment
instances — the A2 solver-ablation bench shows exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.assignment import assignment_cycle_cover
from repro.tsp.instance import check_matrix, tour_cost, tour_from_successors


def patched_tour(matrix: np.ndarray) -> tuple[list[int], float]:
    """AP + cycle patching; returns (tour, cost)."""
    matrix = check_matrix(matrix)
    # The patched tour feeds solver starts, so its *structure* (not just its
    # cost) must not depend on which assignment backend is installed.
    cover = assignment_cycle_cover(matrix, backend="pure")
    successor = cover.successor.copy()
    cycles = cover.cycles()

    while len(cycles) > 1:
        cycles.sort(key=len)
        second, first = cycles[-2], cycles[-1]
        best_delta = None
        best_pair: tuple[int, int] | None = None
        for u in first:
            su = int(successor[u])
            for w in second:
                sw = int(successor[w])
                delta = (
                    matrix[u, sw]
                    + matrix[w, su]
                    - matrix[u, su]
                    - matrix[w, sw]
                )
                if best_delta is None or delta < best_delta:
                    best_delta = delta
                    best_pair = (u, w)
        assert best_pair is not None
        u, w = best_pair
        successor[u], successor[w] = successor[w], successor[u]
        merged = first + second
        cycles = cycles[:-2]
        cycles.append(merged)

    tour = tour_from_successors(successor, start=0)
    return tour, tour_cost(matrix, tour)
