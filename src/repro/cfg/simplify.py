"""CFG simplification passes.

Real frontends emit clutter — empty forwarding blocks from lowering join
points, straight-line chains split across blocks, degenerate conditionals.
These passes clean a CFG the way a compiler's early CFG-simplify does:

* :func:`fold_degenerate_branches` — conditionals whose arms coincide and
  multiways with a single distinct target become unconditional,
* :func:`thread_trivial_jumps` — edges into empty unconditional blocks are
  redirected past them (jump threading),
* :func:`merge_chains` — a block with a single successor whose successor
  has a single predecessor is merged into it,
* :func:`simplify_cfg` — runs all of the above to a fixed point and prunes
  unreachable blocks.

Simplification runs *before* profiling in a real pipeline (profile the
simplified CFG).  :func:`simplify_procedure` additionally returns the block
id remapping (original → surviving block holding its code) for consumers
that need to relate old ids to the cleaned graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.blocks import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Procedure


@dataclass
class SimplifyResult:
    """Outcome of a simplification run."""

    cfg: ControlFlowGraph
    #: Original block id -> surviving block id holding its code.
    remap: dict[int, int] = field(default_factory=dict)
    folded_branches: int = 0
    threaded_jumps: int = 0
    merged_blocks: int = 0
    pruned_blocks: int = 0


def fold_degenerate_branches(cfg: ControlFlowGraph) -> int:
    """Turn single-distinct-target conditionals/multiways into jumps."""
    folded = 0
    for block in cfg:
        term = block.terminator
        if term.kind in (TerminatorKind.CONDITIONAL, TerminatorKind.MULTIWAY):
            distinct = term.successors
            if len(distinct) == 1:
                cfg.replace_terminator(
                    block.block_id,
                    Terminator(TerminatorKind.UNCONDITIONAL, distinct),
                )
                folded += 1
    return folded


def thread_trivial_jumps(cfg: ControlFlowGraph) -> int:
    """Redirect edges through empty forwarding blocks.

    A *trivial* block has no instructions/padding and an unconditional
    terminator; every edge targeting it can go straight to its successor.
    Self-forwarding cycles of trivial blocks are left alone.
    """
    forward: dict[int, int] = {}
    for block in cfg:
        if (
            block.kind is TerminatorKind.UNCONDITIONAL
            and block.body_words == 0
            and block.block_id != cfg.entry
        ):
            forward[block.block_id] = block.terminator.targets[0]

    def resolve(target: int) -> int:
        seen = set()
        while target in forward and target not in seen:
            seen.add(target)
            target = forward[target]
        return target

    threaded = 0
    for block in cfg:
        term = block.terminator
        new_targets = tuple(resolve(t) for t in term.targets)
        if new_targets != term.targets:
            cfg.replace_terminator(
                block.block_id,
                Terminator(term.kind, new_targets, term.operand),
            )
            threaded += 1
    return threaded


def merge_chains(cfg: ControlFlowGraph, remap: dict[int, int]) -> int:
    """Merge single-successor blocks into single-predecessor successors.

    The successor's instructions are appended to the predecessor and the
    predecessor takes over the successor's terminator; ``remap`` records
    where each absorbed block's code went.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in list(cfg):
            if block.kind is not TerminatorKind.UNCONDITIONAL:
                continue
            succ_id = block.terminator.targets[0]
            if succ_id == block.block_id or succ_id == cfg.entry:
                continue
            if len(cfg.predecessors(succ_id)) != 1:
                continue
            successor = cfg.block(succ_id)
            block.instructions.extend(successor.instructions)
            block.padding += successor.padding
            cfg.replace_terminator(block.block_id, successor.terminator)
            # Make the absorbed block an orphan (pruned later).
            successor.instructions = []
            successor.padding = 0
            cfg.replace_terminator(
                succ_id, Terminator(TerminatorKind.RETURN, (), None)
            )
            remap[succ_id] = block.block_id
            merged += 1
            changed = True
    return merged


def prune_unreachable(cfg: ControlFlowGraph) -> tuple[ControlFlowGraph, int]:
    reachable = cfg.reachable()
    pruned = len(cfg) - len(reachable)
    if pruned == 0:
        return cfg, 0
    blocks = [
        BasicBlock(
            block_id=b.block_id,
            terminator=b.terminator,
            instructions=b.instructions,
            padding=b.padding,
            label=b.label,
        )
        for b in cfg
        if b.block_id in reachable
    ]
    return ControlFlowGraph(cfg.entry, blocks), pruned


def simplify_cfg(cfg: ControlFlowGraph) -> SimplifyResult:
    """Run all passes to a fixed point on a copy of ``cfg``."""
    working = cfg.copy()
    result = SimplifyResult(cfg=working, remap={b: b for b in cfg.block_ids})
    changed = True
    while changed:
        changed = False
        folded = fold_degenerate_branches(working)
        threaded = thread_trivial_jumps(working)
        # Prune before merging: unreachable forwarders must not count as
        # predecessors and block chain merges.
        working, pruned = prune_unreachable(working)
        merged = merge_chains(working, result.remap)
        result.folded_branches += folded
        result.threaded_jumps += threaded
        result.merged_blocks += merged
        result.pruned_blocks += pruned
        changed = bool(folded or threaded or merged or pruned)
    result.cfg = working
    # Resolve remap chains and drop entries for pruned code.
    surviving = set(working.block_ids)

    def resolve(block_id: int) -> int:
        seen = set()
        while result.remap.get(block_id, block_id) != block_id:
            if block_id in seen:
                break
            seen.add(block_id)
            block_id = result.remap[block_id]
        return block_id

    result.remap = {
        original: resolve(original)
        for original in result.remap
        if resolve(original) in surviving
    }
    return result


def simplify_procedure(proc: Procedure) -> tuple[Procedure, SimplifyResult]:
    """Simplified copy of a procedure plus the block remapping."""
    result = simplify_cfg(proc.cfg)
    return (
        Procedure(name=proc.name, cfg=result.cfg, params=proc.params),
        result,
    )
