"""Graphviz DOT export for CFGs, optionally annotated with edge frequencies
and a layout order — handy for debugging alignments visually."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph

_KIND_SHAPE = {
    TerminatorKind.UNCONDITIONAL: "box",
    TerminatorKind.CONDITIONAL: "diamond",
    TerminatorKind.MULTIWAY: "hexagon",
    TerminatorKind.RETURN: "doublecircle",
}


def cfg_to_dot(
    cfg: ControlFlowGraph,
    *,
    name: str = "cfg",
    edge_weights: Mapping[tuple[int, int], float] | None = None,
    layout_order: Sequence[int] | None = None,
) -> str:
    """Render a CFG as a DOT digraph.

    ``edge_weights`` annotates edges with profile counts; ``layout_order``
    annotates each block with its position in a layout.
    """
    position = {}
    if layout_order is not None:
        position = {block_id: i for i, block_id in enumerate(layout_order)}
    lines = [f"digraph {_quote(name)} {{", "  node [fontname=monospace];"]
    for block in cfg:
        label = block.label or f"b{block.block_id}"
        if block.block_id in position:
            label = f"{label}\\n#{position[block.block_id]}"
        attrs = [
            f"label={_quote(label)}",
            f"shape={_KIND_SHAPE[block.kind]}",
        ]
        if block.block_id == cfg.entry:
            attrs.append("penwidth=2")
        lines.append(f"  n{block.block_id} [{', '.join(attrs)}];")
    for edge in cfg.edges():
        attrs = []
        label_bits = [l for l in edge.labels if l != "next"]
        if edge_weights is not None:
            weight = edge_weights.get(edge.key, 0)
            label_bits.append(f"{weight:g}")
        if label_bits:
            attrs.append(f"label={_quote(' '.join(label_bits))}")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    # Re-allow explicit newline escapes produced above.
    escaped = escaped.replace("\\\\n", "\\n")
    return f'"{escaped}"'
