"""Control-flow graphs, procedures, and programs.

The control-flow graph is the unit the branch aligner works on: alignment is
*intra*procedural, so each :class:`Procedure` is aligned independently and a
:class:`Program` is just the collection of procedures (plus which one is the
entry point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.cfg.blocks import BasicBlock, Terminator, TerminatorKind


class CFGError(Exception):
    """Raised for structurally invalid control-flow graphs."""


@dataclass(frozen=True)
class Edge:
    """A CFG edge.  ``labels`` records why the edge exists (e.g. the branch
    arm or jump-table slots that induce it); parallel terminator targets to
    the same destination collapse into one edge with several labels."""

    src: int
    dst: int
    labels: tuple[str, ...] = ()

    @property
    def key(self) -> tuple[int, int]:
        return (self.src, self.dst)


class ControlFlowGraph:
    """A per-procedure control-flow graph over :class:`BasicBlock` s.

    Blocks are keyed by integer id.  The graph is derived entirely from each
    block's terminator; mutating a terminator must go through
    :meth:`replace_terminator` so edges stay consistent.
    """

    def __init__(self, entry: int, blocks: Iterable[BasicBlock]):
        self._blocks: dict[int, BasicBlock] = {}
        for block in blocks:
            if block.block_id in self._blocks:
                raise CFGError(f"duplicate block id {block.block_id}")
            self._blocks[block.block_id] = block
        if entry not in self._blocks:
            raise CFGError(f"entry block {entry} not in graph")
        self.entry = entry
        self._check_targets()
        self._preds: dict[int, list[int]] | None = None

    # -- construction / mutation ------------------------------------------

    def _check_targets(self) -> None:
        for block in self._blocks.values():
            for target in block.terminator.targets:
                if target not in self._blocks:
                    raise CFGError(
                        f"block {block.block_id} targets missing block {target}"
                    )

    def replace_terminator(self, block_id: int, terminator: Terminator) -> None:
        """Replace a block's terminator, revalidating targets."""
        block = self._blocks[block_id]
        for target in terminator.targets:
            if target not in self._blocks:
                raise CFGError(f"terminator targets missing block {target}")
        block.terminator = terminator
        self._preds = None

    def add_block(self, block: BasicBlock) -> None:
        if block.block_id in self._blocks:
            raise CFGError(f"duplicate block id {block.block_id}")
        for target in block.terminator.targets:
            if target not in self._blocks and target != block.block_id:
                raise CFGError(f"block targets missing block {target}")
        self._blocks[block.block_id] = block
        self._preds = None

    def fresh_block_id(self) -> int:
        return max(self._blocks) + 1 if self._blocks else 0

    # -- queries ------------------------------------------------------------

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def block(self, block_id: int) -> BasicBlock:
        return self._blocks[block_id]

    @property
    def block_ids(self) -> list[int]:
        return list(self._blocks)

    def successors(self, block_id: int) -> tuple[int, ...]:
        return self._blocks[block_id].successors

    def predecessors(self, block_id: int) -> list[int]:
        if self._preds is None:
            preds: dict[int, list[int]] = {b: [] for b in self._blocks}
            for block in self._blocks.values():
                for succ in block.successors:
                    preds[succ].append(block.block_id)
            self._preds = preds
        return self._preds[block_id]

    def edges(self) -> list[Edge]:
        """All CFG edges, with parallel targets merged and labeled."""
        merged: dict[tuple[int, int], list[str]] = {}
        for block in self._blocks.values():
            term = block.terminator
            for slot, target in enumerate(term.targets):
                label = _slot_label(term, slot)
                merged.setdefault((block.block_id, target), []).append(label)
        return [
            Edge(src, dst, tuple(labels)) for (src, dst), labels in merged.items()
        ]

    def exit_blocks(self) -> list[int]:
        return [
            b.block_id for b in self._blocks.values()
            if b.kind is TerminatorKind.RETURN
        ]

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self._blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def depth_first_order(self) -> list[int]:
        """Reachable block ids in depth-first preorder from the entry."""
        order: list[int] = []
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            order.append(block_id)
            # Reverse so the first successor is visited first.
            stack.extend(reversed(self._blocks[block_id].successors))
        return order

    def total_body_words(self) -> int:
        return sum(b.body_words for b in self._blocks.values())

    def copy(self) -> "ControlFlowGraph":
        """Deep-enough copy: fresh block objects, shared instruction lists."""
        blocks = [
            BasicBlock(
                block_id=b.block_id,
                terminator=b.terminator,
                instructions=list(b.instructions),
                padding=b.padding,
                label=b.label,
            )
            for b in self._blocks.values()
        ]
        return ControlFlowGraph(self.entry, blocks)


def _slot_label(term: Terminator, slot: int) -> str:
    if term.kind is TerminatorKind.CONDITIONAL:
        return "true" if slot == 0 else "false"
    if term.kind is TerminatorKind.MULTIWAY:
        return f"case{slot}"
    return "next"


@dataclass
class Procedure:
    """A named procedure: a CFG plus frontend metadata."""

    name: str
    cfg: ControlFlowGraph
    #: Names of formal parameters (populated by the language frontend).
    params: tuple[str, ...] = ()

    @property
    def entry(self) -> int:
        return self.cfg.entry

    def branch_sites(self) -> list[int]:
        """Blocks whose terminator is a real CTI decision point (conditional
        or multiway); these are the 'branch sites' of Table 1."""
        return [
            b.block_id for b in self.cfg
            if b.kind in (TerminatorKind.CONDITIONAL, TerminatorKind.MULTIWAY)
        ]


@dataclass
class Program:
    """A whole program: procedures keyed by name, plus the entry procedure."""

    procedures: dict[str, Procedure] = field(default_factory=dict)
    main: str = "main"

    def add(self, proc: Procedure) -> None:
        if proc.name in self.procedures:
            raise CFGError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self.procedures.values())

    def __getitem__(self, name: str) -> Procedure:
        return self.procedures[name]

    def __contains__(self, name: str) -> bool:
        return name in self.procedures

    @property
    def entry_procedure(self) -> Procedure:
        return self.procedures[self.main]

    def total_blocks(self) -> int:
        return sum(len(p.cfg) for p in self)

    def total_branch_sites(self) -> int:
        return sum(len(p.branch_sites()) for p in self)
