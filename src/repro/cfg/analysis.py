"""Classic CFG analyses: dominators, natural loops, topological ordering.

Loop structure is used by the synthetic workload generator (loop-aware
profiles) and by diagnostics; dominators use the Cooper–Harvey–Kennedy
iterative algorithm, which is simple and fast at the sizes we care about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph


def reverse_postorder(cfg: ControlFlowGraph) -> list[int]:
    """Reachable blocks in reverse postorder (a topological order when the
    graph is acyclic; the canonical iteration order for dataflow)."""
    order: list[int] = []
    seen: set[int] = set()

    def visit(root: int) -> None:
        # Iterative postorder DFS to avoid recursion limits on long chains.
        stack: list[tuple[int, int]] = [(root, 0)]
        seen.add(root)
        while stack:
            block_id, next_child = stack[-1]
            succs = cfg.successors(block_id)
            if next_child < len(succs):
                stack[-1] = (block_id, next_child + 1)
                child = succs[next_child]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                order.append(block_id)
                stack.pop()

    visit(cfg.entry)
    order.reverse()
    return order


def immediate_dominators(cfg: ControlFlowGraph) -> dict[int, int]:
    """Immediate dominator of every reachable block (entry maps to itself).

    Cooper–Harvey–Kennedy "A Simple, Fast Dominance Algorithm".
    """
    rpo = reverse_postorder(cfg)
    index = {b: i for i, b in enumerate(rpo)}
    idom: dict[int, int] = {cfg.entry: cfg.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in rpo:
            if block_id == cfg.entry:
                continue
            preds = [p for p in cfg.predecessors(block_id) if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True
    return idom


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True when ``a`` dominates ``b`` under the given idom tree."""
    entry_reached = False
    node = b
    while not entry_reached:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None:
            return False
        entry_reached = parent == node
        node = parent
    return node == a


@dataclass
class NaturalLoop:
    """A natural loop: header plus body (header included)."""

    header: int
    back_edges: list[tuple[int, int]] = field(default_factory=list)
    body: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.body)


def natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """All natural loops, found from back edges (t -> h where h dominates t).

    Loops sharing a header are merged, as usual.
    """
    idom = immediate_dominators(cfg)
    loops: dict[int, NaturalLoop] = {}
    for block_id in cfg.reachable():
        for succ in cfg.successors(block_id):
            if succ in idom and dominates(idom, succ, block_id):
                loop = loops.setdefault(succ, NaturalLoop(header=succ))
                loop.back_edges.append((block_id, succ))
                _collect_loop_body(cfg, loop, block_id)
    for loop in loops.values():
        loop.body.add(loop.header)
    return sorted(loops.values(), key=lambda l: l.header)


def _collect_loop_body(cfg: ControlFlowGraph, loop: NaturalLoop, tail: int) -> None:
    if tail == loop.header or tail in loop.body:
        return
    loop.body.add(tail)
    stack = [tail]
    while stack:
        for pred in cfg.predecessors(stack.pop()):
            if pred != loop.header and pred not in loop.body:
                loop.body.add(pred)
                stack.append(pred)


def loop_nesting_depth(cfg: ControlFlowGraph) -> dict[int, int]:
    """Loop nesting depth of every reachable block (0 = not in a loop)."""
    depth = {b: 0 for b in cfg.reachable()}
    for loop in natural_loops(cfg):
        for block_id in loop.body:
            depth[block_id] += 1
    return depth
