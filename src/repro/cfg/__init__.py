"""Control-flow-graph substrate: blocks, graphs, procedures, analyses."""

from repro.cfg.blocks import (
    BasicBlock,
    Terminator,
    TerminatorKind,
    make_block,
)
from repro.cfg.builder import CFGBuilder
from repro.cfg.graph import CFGError, ControlFlowGraph, Edge, Procedure, Program
from repro.cfg.analysis import (
    immediate_dominators,
    loop_nesting_depth,
    natural_loops,
    reverse_postorder,
)
from repro.cfg.dot import cfg_to_dot
from repro.cfg.simplify import SimplifyResult, simplify_cfg, simplify_procedure
from repro.cfg.validate import validate_cfg, validate_procedure, validate_program

__all__ = [
    "BasicBlock",
    "CFGBuilder",
    "CFGError",
    "ControlFlowGraph",
    "Edge",
    "Procedure",
    "Program",
    "SimplifyResult",
    "simplify_cfg",
    "simplify_procedure",
    "Terminator",
    "TerminatorKind",
    "cfg_to_dot",
    "immediate_dominators",
    "loop_nesting_depth",
    "make_block",
    "natural_loops",
    "reverse_postorder",
    "validate_cfg",
    "validate_procedure",
    "validate_program",
]
