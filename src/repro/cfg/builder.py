"""Fluent construction of control-flow graphs.

The builder exists so tests, examples, and the synthetic workload generator
can write CFGs declaratively without tracking integer ids by hand:

    b = CFGBuilder()
    b.block("entry").cond("loop", "exit")
    b.block("loop", padding=6).jump("entry")
    b.block("exit").ret()
    cfg = b.build(entry="entry")
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.cfg.blocks import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import CFGError, ControlFlowGraph


class _BlockHandle:
    """Handle returned by :meth:`CFGBuilder.block`; sets the terminator."""

    def __init__(self, builder: "CFGBuilder", name: str):
        self._builder = builder
        self._name = name

    def jump(self, target: str) -> "_BlockHandle":
        self._builder._set_terminator(
            self._name, TerminatorKind.UNCONDITIONAL, (target,)
        )
        return self

    def cond(
        self, true_target: str, false_target: str, *, operand: Any = None
    ) -> "_BlockHandle":
        self._builder._set_terminator(
            self._name,
            TerminatorKind.CONDITIONAL,
            (true_target, false_target),
            operand,
        )
        return self

    def switch(
        self, targets: Sequence[str], *, operand: Any = None
    ) -> "_BlockHandle":
        self._builder._set_terminator(
            self._name, TerminatorKind.MULTIWAY, tuple(targets), operand
        )
        return self

    def ret(self) -> "_BlockHandle":
        self._builder._set_terminator(self._name, TerminatorKind.RETURN, ())
        return self


class CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from named blocks."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._padding: dict[str, int] = {}
        self._instructions: dict[str, list[Any]] = {}
        self._terminators: dict[str, tuple[TerminatorKind, tuple[str, ...], Any]] = {}
        self._order: list[str] = []

    def block(
        self,
        name: str,
        *,
        padding: int = 0,
        instructions: Sequence[Any] = (),
    ) -> _BlockHandle:
        """Declare (or re-open) a block.  Terminator is set via the handle."""
        if name not in self._ids:
            self._ids[name] = len(self._ids)
            self._order.append(name)
        if padding:
            self._padding[name] = padding
        if instructions:
            self._instructions.setdefault(name, []).extend(instructions)
        return _BlockHandle(self, name)

    def _set_terminator(
        self,
        name: str,
        kind: TerminatorKind,
        targets: tuple[str, ...],
        operand: Any = None,
    ) -> None:
        for target in targets:
            # Forward references implicitly declare the target block.
            self.block(target)
        self._terminators[name] = (kind, targets, operand)

    def build(self, entry: str) -> ControlFlowGraph:
        if entry not in self._ids:
            raise CFGError(f"unknown entry block {entry!r}")
        missing = [n for n in self._order if n not in self._terminators]
        if missing:
            raise CFGError(f"blocks without terminators: {missing}")
        blocks = []
        for name in self._order:
            kind, targets, operand = self._terminators[name]
            blocks.append(
                BasicBlock(
                    block_id=self._ids[name],
                    terminator=Terminator(
                        kind, tuple(self._ids[t] for t in targets), operand
                    ),
                    instructions=list(self._instructions.get(name, [])),
                    padding=self._padding.get(name, 0),
                    label=name,
                )
            )
        return ControlFlowGraph(self._ids[entry], blocks)

    def id_of(self, name: str) -> int:
        return self._ids[name]
