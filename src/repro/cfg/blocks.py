"""Basic blocks and terminators.

A :class:`BasicBlock` is a maximal straight-line sequence of instructions
ending in exactly one *terminator*.  Pre-layout, the terminator records only
the control-flow *shape* (which blocks may follow, and why); whether a block
physically ends in a fall-through, an inverted conditional branch, or a
freshly inserted unconditional jump is a property of a :class:`~repro.core.layout.Layout`,
decided by the aligner and materialized by :mod:`repro.core.materialize`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence


class TerminatorKind(enum.Enum):
    """Control-flow shape of the instruction that ends a basic block."""

    #: Exactly one CFG successor.  The layout decides whether this becomes a
    #: physical fall-through (zero penalty) or an unconditional jump.
    UNCONDITIONAL = "unconditional"

    #: Exactly two CFG successors selected by a boolean condition.  The layout
    #: decides which arm is the fall-through (inverting the branch if needed),
    #: or inserts a fixup jump when neither arm is the layout successor.
    CONDITIONAL = "conditional"

    #: Two or more CFG successors selected through a register (jump table /
    #: computed goto).  Always a register branch in any layout.
    MULTIWAY = "multiway"

    #: No CFG successors: procedure return (or program halt).
    RETURN = "return"


@dataclass(frozen=True)
class Terminator:
    """The terminator of a basic block.

    ``targets`` is the ordered tuple of successor block ids:

    * ``UNCONDITIONAL`` — ``(successor,)``
    * ``CONDITIONAL`` — ``(true_target, false_target)``; the two may coincide,
      in which case the block behaves as single-successor for layout purposes
      but still pays conditional-branch penalties.
    * ``MULTIWAY`` — one entry per jump-table slot (duplicates allowed);
      the *distinct* targets are the CFG successors.
    * ``RETURN`` — ``()``
    """

    kind: TerminatorKind
    targets: tuple[int, ...] = ()
    #: Optional payload: for blocks produced by :mod:`repro.lang`, the operand
    #: read to decide the branch (condition variable / switch selector).
    operand: Any = None

    def __post_init__(self) -> None:
        n = len(self.targets)
        if self.kind is TerminatorKind.UNCONDITIONAL and n != 1:
            raise ValueError(f"unconditional terminator needs 1 target, got {n}")
        if self.kind is TerminatorKind.CONDITIONAL and n != 2:
            raise ValueError(f"conditional terminator needs 2 targets, got {n}")
        if self.kind is TerminatorKind.MULTIWAY and n < 1:
            raise ValueError("multiway terminator needs at least 1 target")
        if self.kind is TerminatorKind.RETURN and n != 0:
            raise ValueError(f"return terminator takes no targets, got {n}")

    @property
    def successors(self) -> tuple[int, ...]:
        """Distinct successor block ids, in first-appearance order."""
        return tuple(dict.fromkeys(self.targets))

    def retargeted(self, mapping: dict[int, int]) -> "Terminator":
        """A copy with every target rewritten through ``mapping``."""
        return Terminator(
            self.kind,
            tuple(mapping.get(t, t) for t in self.targets),
            self.operand,
        )


#: Size in instruction words of the CTI a layout may have to emit for a block,
#: by terminator kind.  An UNCONDITIONAL block's jump word is counted only
#: when the layout actually needs it (see :mod:`repro.core.materialize`).
TERMINATOR_WORDS = {
    TerminatorKind.UNCONDITIONAL: 1,
    TerminatorKind.CONDITIONAL: 1,
    TerminatorKind.MULTIWAY: 1,
    TerminatorKind.RETURN: 1,
}


@dataclass
class BasicBlock:
    """A basic block: straight-line instructions plus one terminator.

    ``instructions`` holds the block body.  For programs compiled from
    :mod:`repro.lang` these are executable VM instructions; for synthetic
    CFGs the body may be empty with ``padding`` standing in for its length,
    so that address layout and cache simulation still see realistic sizes.
    """

    block_id: int
    terminator: Terminator
    instructions: list[Any] = field(default_factory=list)
    #: Extra instruction words counted toward the block's size (synthetic
    #: CFGs use this instead of materializing dummy instructions).
    padding: int = 0
    label: str = ""

    @property
    def body_words(self) -> int:
        """Instruction words in the block body, excluding the terminator."""
        return len(self.instructions) + self.padding

    @property
    def kind(self) -> TerminatorKind:
        return self.terminator.kind

    @property
    def successors(self) -> tuple[int, ...]:
        return self.terminator.successors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or f"b{self.block_id}"
        targets = ",".join(str(t) for t in self.terminator.targets)
        return f"<BasicBlock {name} {self.kind.value}->[{targets}]>"


def make_block(
    block_id: int,
    kind: TerminatorKind | str,
    targets: Sequence[int] = (),
    *,
    instructions: Sequence[Any] = (),
    padding: int = 0,
    label: str = "",
    operand: Any = None,
) -> BasicBlock:
    """Convenience constructor used heavily by tests and generators."""
    if isinstance(kind, str):
        kind = TerminatorKind(kind)
    return BasicBlock(
        block_id=block_id,
        terminator=Terminator(kind, tuple(targets), operand),
        instructions=list(instructions),
        padding=padding,
        label=label,
    )
