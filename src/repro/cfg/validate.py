"""Structural validation of CFGs, procedures, and programs.

Aligners assume well-formed input; ``validate_*`` gives actionable errors up
front instead of mysterious failures deep inside cost-matrix construction.
"""

from __future__ import annotations

from repro.cfg.graph import CFGError, ControlFlowGraph, Procedure, Program


def validate_cfg(cfg: ControlFlowGraph, *, require_exit: bool = True) -> None:
    """Raise :class:`CFGError` if the CFG is structurally unusable.

    Checks: at least one block, entry present (guaranteed by construction),
    every reachable block can reach an exit (no semantically-stuck blocks),
    and — when ``require_exit`` — at least one RETURN block is reachable.
    """
    if len(cfg) == 0:
        raise CFGError("empty CFG")
    reachable = cfg.reachable()
    exits = [b for b in cfg.exit_blocks() if b in reachable]
    if require_exit and not exits:
        raise CFGError("no reachable RETURN block (procedure cannot terminate)")
    if require_exit:
        # Blocks from which no exit is reachable would trap execution.
        can_exit = set(exits)
        changed = True
        while changed:
            changed = False
            for block_id in reachable:
                if block_id in can_exit:
                    continue
                if any(s in can_exit for s in cfg.successors(block_id)):
                    can_exit.add(block_id)
                    changed = True
        stuck = sorted(reachable - can_exit)
        if stuck:
            raise CFGError(f"blocks cannot reach an exit: {stuck}")


def validate_procedure(proc: Procedure) -> None:
    validate_cfg(proc.cfg)


def validate_program(program: Program) -> None:
    """Validate every procedure and the entry-point wiring."""
    if program.main not in program.procedures:
        raise CFGError(f"missing entry procedure {program.main!r}")
    for proc in program:
        try:
            validate_procedure(proc)
        except CFGError as exc:
            raise CFGError(f"procedure {proc.name!r}: {exc}") from exc
