"""repro — Near-optimal Intraprocedural Branch Alignment (PLDI 1997).

A from-scratch reproduction of Young, Johnson, Karger & Smith's branch
alignment system: CFG substrate, profiling, machine penalty models, the
DTSP reduction with iterated 3-Opt and Held–Karp lower bounds, greedy
baselines, a tiny benchmark language + VM, and the full experiment harness.

Quickstart::

    from repro import align_program, evaluate_program, ALPHA_21164
    from repro.lang import compile_source, run_and_profile

    module = compile_source(source_text)
    _, profile = run_and_profile(module, inputs)
    layouts = align_program(module.program, profile, method="tsp")
    penalty = evaluate_program(module.program, layouts, profile, ALPHA_21164)
"""

from repro.core.align import align_program, lower_bound_program
from repro.core.evaluate import evaluate_layout, evaluate_program
from repro.core.layout import Layout, ProgramLayout, original_layout
from repro.machine.models import (
    ALPHA_21064,
    ALPHA_21164,
    DEEP_PIPE,
    UNIT_COST,
    PenaltyModel,
)

__version__ = "1.0.0"

__all__ = [
    "ALPHA_21064",
    "ALPHA_21164",
    "DEEP_PIPE",
    "Layout",
    "PenaltyModel",
    "ProgramLayout",
    "UNIT_COST",
    "align_program",
    "evaluate_layout",
    "evaluate_program",
    "lower_bound_program",
    "original_layout",
    "__version__",
]
