"""Compilation-stage timing (the paper's Table 2).

Times each stage of the pipeline for one benchmark/data-set pair, mirroring
the paper's columns:

* Intermediate Representation — source → AST → CFG lowering,
* Instrumented Program — preparing the tracing run (our instrumentation is
  built into the VM, so this measures trace infrastructure setup),
* Greedy Program — greedy alignment + materialization,
* TSP Matrix — §2.2 cost-matrix construction for every procedure,
* TSP Solver — DTSP solving for every procedure,
* TSP Program — tour → layout → materialization,
* Profiling Run Time — the instrumented execution itself.

Stage durations are :mod:`repro.obs` spans, not bespoke timers: each stage
runs inside a ``table2:stage`` span and :class:`StageTimes` is a thin view
over the span handles' measured durations.  Under an active trace the same
run therefore yields both the Table 2 row *and* the raw span events —
``repro trace summarize`` rebuilds this table from a JSONL file alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.budget import Budget
from repro.core.align import align_program
from repro.core.evaluate import train_predictors
from repro.core.layout import ProgramLayout
from repro.core.materialize import materialize_program
from repro.errors import SolverBudgetExceeded
from repro.lang.lower import compile_source
from repro.lang.vm import execute
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.pipeline.stages import instance_for
from repro.pipeline.task import derive_seed
from repro.profiles.edge_profile import EdgeProfile
from repro.profiles.trace import TraceBuilder
from repro.tsp.construction import identity_tour
from repro.tsp.solve import DEFAULT, Effort, solve_dtsp
from repro.workloads.suite import get_benchmark

STAGE_NAMES = (
    "ir",
    "instrumented",
    "greedy_program",
    "tsp_matrix",
    "tsp_solver",
    "tsp_program",
    "profiling_run",
)


@dataclass
class StageTimes:
    """Seconds spent in each pipeline stage for one benchmark case."""

    benchmark: str
    dataset: str
    ir: float = 0.0
    instrumented: float = 0.0
    greedy_program: float = 0.0
    tsp_matrix: float = 0.0
    tsp_solver: float = 0.0
    tsp_program: float = 0.0
    profiling_run: float = 0.0
    #: Procedures whose solve blew the budget and fell back to a salvaged
    #: or identity tour; surfaced in the row as the ``degraded`` count.
    degraded_procs: list[str] = field(default_factory=list)

    #: Table 2 header: row columns in ``as_row`` order.
    HEADERS = ("benchmark", "dataset", *STAGE_NAMES, "degraded")

    def as_row(self) -> list[object]:
        return [
            self.benchmark,
            self.dataset,
            *(round(getattr(self, name), 4) for name in STAGE_NAMES),
            len(self.degraded_procs),
        ]


def time_stages(
    benchmark: str,
    dataset: str,
    *,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
) -> StageTimes:
    """Measure every pipeline stage, end to end, for one case.

    ``budget`` bounds each procedure's solve; a procedure that blows it
    still completes the ``tsp_program`` stage via its salvaged (or
    identity) tour and is listed in ``times.degraded_procs``.
    """
    times = StageTimes(benchmark=benchmark, dataset=dataset)
    spec = get_benchmark(benchmark)
    inputs = spec.inputs(dataset)

    def stage(name: str):
        """One Table 2 column = one ``table2:stage`` span; the measured
        duration lands on the matching :class:`StageTimes` field."""
        return obs.span(
            "table2:stage", stage=name, benchmark=benchmark, dataset=dataset
        )

    with stage("ir") as sp:
        module = compile_source(spec.source)
    times.ir = sp.dur_ms / 1000.0

    with stage("instrumented") as sp:
        builder = TraceBuilder(keep_events=False)
    times.instrumented = sp.dur_ms / 1000.0

    with stage("profiling_run") as sp:
        result = execute(module, inputs, trace=True, keep_events=False)
    times.profiling_run = sp.dur_ms / 1000.0
    assert result.trace is not None
    profile_counts = result.trace.edge_counts
    del builder

    profile = _to_profile(profile_counts)
    program = module.program
    predictors = train_predictors(program, profile)

    with stage("greedy_program") as sp:
        greedy_layouts = align_program(
            program, profile, method="greedy", model=model
        )
        materialize_program(program, greedy_layouts, predictors)
    times.greedy_program = sp.dur_ms / 1000.0

    with stage("tsp_matrix") as sp:
        instances = {}
        for proc in program:
            edge_profile = profile.procedures.get(proc.name, EdgeProfile())
            # Through the pipeline's content-addressed cache: a warm cache
            # (e.g. the same case already aligned this session) serves the
            # matrices instead of rebuilding, and a cold run seeds it for
            # later passes.
            instances[proc.name] = instance_for(proc.cfg, edge_profile, model)
    times.tsp_matrix = sp.dur_ms / 1000.0

    with stage("tsp_solver") as sp:
        tours: dict[str, list[int]] = {}
        for index, (name, instance) in enumerate(instances.items()):
            try:
                tours[name] = solve_dtsp(
                    instance.matrix,
                    effort=effort,
                    # Same per-task derivation as the pipeline's align
                    # stage, so this standalone solver loop draws the
                    # "tsp" method's seed stream.
                    seed=derive_seed(seed, "tsp", index),
                    budget=budget,
                ).tour
            except SolverBudgetExceeded as exc:
                tours[name] = exc.best_so_far or identity_tour(instance.n)
                times.degraded_procs.append(name)
        sp["degraded"] = len(times.degraded_procs)
    times.tsp_solver = sp.dur_ms / 1000.0

    with stage("tsp_program") as sp:
        layouts = ProgramLayout()
        for name, instance in instances.items():
            layouts[name] = instance.layout_from_cycle(tours[name])
        materialize_program(program, layouts, predictors)
    times.tsp_program = sp.dur_ms / 1000.0
    return times


def _to_profile(edge_counts):
    from repro.profiles.edge_profile import ProgramProfile

    profile = ProgramProfile()
    for proc, edges in edge_counts.items():
        edge_profile = profile.profile(proc)
        for (src, dst), count in edges.items():
            edge_profile.add(src, dst, count)
    return profile


def worst_dataset(benchmark: str) -> str:
    """The longest-running data set (Table 2 reports "the worst data set
    for each benchmark")."""
    from repro.experiments.runner import profiled_run

    spec = get_benchmark(benchmark)
    return max(
        spec.dataset_names(),
        key=lambda ds: profiled_run(benchmark, ds).blocks,
    )
