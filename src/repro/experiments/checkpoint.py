"""Checkpoint/resume for experiment sweeps.

Figure runs execute dozens of (benchmark, data-set, train, method) cases;
one pathological case must not cost the completed ones.  Completed
:class:`~repro.experiments.runner.CaseResult`s persist to an append-only
JSON-lines file, one self-describing record per line:

    {"v": 1, "key": {...}, "sha": "<sha256 of the case payload>",
     "case": {...}}

* **Keying** — a :class:`CaseKey` captures everything that determines a
  case's numbers: (benchmark, dataset, train_dataset, methods, model,
  effort, seed, budget).  Resuming with different parameters recomputes
  rather than serving stale results.
* **Corruption** — every line carries a checksum of its payload.  A torn
  write (the process was killed mid-line) or bit rot fails the checksum;
  by default the loader *skips* such lines (the case is simply recomputed)
  and records them in :attr:`ExperimentCheckpoint.corrupt_lines`; with
  ``strict=True`` it raises :class:`~repro.errors.CheckpointCorruptError`.
* **Fidelity** — the serialized state includes per-method penalties, cost
  and timing breakdowns, layouts, and degradation records, so a resumed
  run produces byte-identical tables to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass

from repro import faults
from repro.budget import Budget
from repro.core.costmodel import CostBreakdown
from repro.core.layout import Layout, ProgramLayout
from repro.errors import CheckpointCorruptError
from repro.experiments.runner import CaseResult, MethodOutcome
from repro.machine.models import PenaltyModel
from repro.machine.timing import TimingBreakdown
from repro.tsp.solve import Effort, get_effort

CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CaseKey:
    """Identity of one experiment case in a checkpoint."""

    benchmark: str
    dataset: str
    train_dataset: str
    methods: tuple[str, ...]
    model: str
    effort: str
    seed: int
    budget_wall_ms: float | None = None
    budget_max_iterations: int | None = None

    @classmethod
    def for_case(
        cls,
        benchmark: str,
        dataset: str,
        train_dataset: str | None = None,
        *,
        methods: tuple[str, ...],
        model: "PenaltyModel | str",
        effort: "Effort | str",
        seed: int = 0,
        budget: Budget | None = None,
    ) -> "CaseKey":
        return cls(
            benchmark=benchmark,
            dataset=dataset,
            train_dataset=train_dataset or dataset,
            methods=tuple(methods),
            model=model if isinstance(model, str) else model.name,
            effort=get_effort(effort).name,
            seed=seed,
            budget_wall_ms=budget.wall_ms if budget else None,
            budget_max_iterations=budget.max_iterations if budget else None,
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "train_dataset": self.train_dataset,
            "methods": list(self.methods),
            "model": self.model,
            "effort": self.effort,
            "seed": self.seed,
            "budget_wall_ms": self.budget_wall_ms,
            "budget_max_iterations": self.budget_max_iterations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CaseKey":
        return cls(
            benchmark=payload["benchmark"],
            dataset=payload["dataset"],
            train_dataset=payload["train_dataset"],
            methods=tuple(payload["methods"]),
            model=payload["model"],
            effort=payload["effort"],
            seed=int(payload["seed"]),
            budget_wall_ms=payload.get("budget_wall_ms"),
            budget_max_iterations=payload.get("budget_max_iterations"),
        )


# -- CaseResult (de)serialization ---------------------------------------------


def case_to_state(case: CaseResult) -> dict:
    """Serialize everything a resumed run needs to reproduce this case's
    rows byte-for-byte (JSON floats round-trip exactly)."""
    return {
        "benchmark": case.benchmark,
        "dataset": case.dataset,
        "train_dataset": case.train_dataset,
        "lower_bound": case.lower_bound,
        # Lines are serialized with sorted keys (stable checksums), which
        # would lose the report-facing method order — keep it explicitly.
        "method_order": list(case.methods),
        "methods": {
            name: {
                "penalty": outcome.penalty,
                "breakdown": {
                    "redirect": outcome.breakdown.redirect,
                    "mispredict": outcome.breakdown.mispredict,
                    "jump": outcome.breakdown.jump,
                },
                "timing": {
                    "instruction_cycles": outcome.timing.instruction_cycles,
                    "control_stall_cycles": outcome.timing.control_stall_cycles,
                    "icache_stall_cycles": outcome.timing.icache_stall_cycles,
                    "icache_accesses": outcome.timing.icache_accesses,
                    "icache_misses": outcome.timing.icache_misses,
                },
                "align_seconds": outcome.align_seconds,
                "exttsp": outcome.exttsp,
                "layouts": {
                    proc: list(layout.order)
                    for proc, layout in outcome.layouts.items()
                },
                "degraded": dict(outcome.degraded),
                "warnings": list(outcome.warnings),
                "retried": outcome.retried,
                "quarantined": dict(outcome.quarantined),
            }
            for name, outcome in case.methods.items()
        },
    }


def case_from_state(state: dict) -> CaseResult:
    case = CaseResult(
        benchmark=state["benchmark"],
        dataset=state["dataset"],
        train_dataset=state["train_dataset"],
        lower_bound=state["lower_bound"],
    )
    order = state.get("method_order") or list(state["methods"])
    for name in order:
        payload = state["methods"][name]
        layouts = ProgramLayout()
        for proc, order in payload["layouts"].items():
            layouts[proc] = Layout(tuple(order))
        case.methods[name] = MethodOutcome(
            method=name,
            penalty=payload["penalty"],
            breakdown=CostBreakdown(**payload["breakdown"]),
            timing=TimingBreakdown(**payload["timing"]),
            align_seconds=payload["align_seconds"],
            layouts=layouts,
            # Tolerant default: records written before dual pricing load
            # with a zero score rather than failing the whole checkpoint.
            exttsp=float(payload.get("exttsp", 0.0)),
            degraded=dict(payload.get("degraded", {})),
            warnings=list(payload.get("warnings", [])),
            retried=int(payload.get("retried", 0)),
            quarantined=dict(payload.get("quarantined", {})),
        )
    return case


def _payload_sha(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- the checkpoint file ------------------------------------------------------


class ExperimentCheckpoint:
    """Append-only JSON-lines store of completed cases."""

    def __init__(
        self,
        path: "str | pathlib.Path",
        *,
        resume: bool = True,
        strict: bool = False,
    ):
        self.path = pathlib.Path(path)
        self._entries: dict[CaseKey, dict] = {}
        #: 1-based line numbers that failed to parse or checksum on load.
        self.corrupt_lines: list[int] = []
        # A crash mid-write leaves a final line with no trailing newline.
        # The loader drops the partial record (checksum fails), but the
        # *next* append must not concatenate onto the stump — remember
        # whether the file currently ends cleanly, resume or not.
        self._ends_with_newline = True
        if self.path.exists():
            try:
                with self.path.open("rb") as handle:
                    handle.seek(0, 2)
                    if handle.tell() > 0:
                        handle.seek(-1, 2)
                        self._ends_with_newline = handle.read(1) == b"\n"
            except OSError:
                pass  # unreadable tail: the append prefix is merely cosmetic
            if resume:
                self._load(strict=strict)

    def _load(self, *, strict: bool) -> None:
        for number, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    # json.loads happily returns scalars/lists; a truncated
                    # record must read as corruption, not an AttributeError.
                    raise ValueError("checkpoint record is not an object")
                if record.get("v") != CHECKPOINT_VERSION:
                    raise ValueError(
                        f"unsupported checkpoint version {record.get('v')!r}"
                    )
                key = CaseKey.from_dict(record["key"])
                state = record["case"]
                if _payload_sha(state) != record["sha"]:
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError) as exc:
                if strict:
                    raise CheckpointCorruptError(
                        f"{self.path}:{number}: corrupt checkpoint line "
                        f"({exc})",
                        line_number=number,
                    ) from exc
                self.corrupt_lines.append(number)
                continue
            # Later lines win: a case recomputed after a corrupt write
            # shadows the earlier record.
            self._entries[key] = state
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CaseKey) -> bool:
        return key in self._entries

    def keys(self) -> list[CaseKey]:
        return list(self._entries)

    def get(self, key: CaseKey) -> CaseResult | None:
        state = self._entries.get(key)
        return case_from_state(state) if state is not None else None

    def record(self, key: CaseKey, case: CaseResult) -> None:
        """Persist one completed case (and serve it for future ``get``s)."""
        state = case_to_state(case)
        self._entries[key] = state
        line = json.dumps(
            {
                "v": CHECKPOINT_VERSION,
                "key": key.to_dict(),
                "sha": _payload_sha(state),
                "case": state,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        line = faults.corrupt_checkpoint_line(line)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            if not self._ends_with_newline:
                # Seal off a crash-truncated final record so this append
                # starts a fresh line instead of corrupting itself too.
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
        self._ends_with_newline = True
