"""Cross-validation helpers (§4.2).

Thin wrappers over the runner for the train ≠ test protocol, plus the
degradation summary quoted in the paper's conclusions: cross-validation
"slightly reduced the benefits … but the ranking of the algorithms does
not change, and the bulk of the benefits remain."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import CaseResult, run_case


@dataclass
class CrossValidationSummary:
    """Self vs cross effectiveness of one method on one case."""

    label: str
    method: str
    self_removal: float
    cross_removal: float

    @property
    def dilution(self) -> float:
        """Benefit lost by training on the other data set (fraction of the
        original penalty)."""
        return self.self_removal - self.cross_removal

    @property
    def kept_bulk(self) -> bool:
        """Did cross-validation keep most of the self-trained benefit?"""
        if self.self_removal <= 0.02:
            return True  # nothing to keep (e.g. su2cor-like benchmarks)
        return self.cross_removal >= 0.5 * self.self_removal


def summarize_pair(
    self_case: CaseResult, cross_case: CaseResult, method: str
) -> CrossValidationSummary:
    return CrossValidationSummary(
        label=self_case.label,
        method=method,
        self_removal=1.0 - self_case.normalized_penalty(method),
        cross_removal=1.0 - cross_case.normalized_penalty(method),
    )


def cross_validate(
    benchmark: str,
    test_dataset: str,
    train_dataset: str,
    *,
    methods: tuple[str, ...] = ("original", "greedy", "tsp"),
    **case_kwargs,
) -> tuple[CaseResult, CaseResult]:
    """(self-trained case, cross-trained case) for one benchmark."""
    self_case = run_case(
        benchmark, test_dataset, methods=methods, **case_kwargs
    )
    cross_case = run_case(
        benchmark, test_dataset, train_dataset, methods=methods, **case_kwargs
    )
    return self_case, cross_case
