"""Machine-readable export of experiment results.

The benches write human-readable tables to ``benchmarks/results/``; this
module serializes the underlying numbers (JSON) so external tooling —
plotting scripts, dashboards, regression trackers — can consume them
without re-running the experiments.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.experiments.runner import CaseResult, SkippedCase
from repro.experiments.tables import Figure2Data, Figure3Data


def case_to_dict(case: CaseResult) -> dict:
    """Flatten one case's results."""
    return {
        "benchmark": case.benchmark,
        "dataset": case.dataset,
        "train_dataset": case.train_dataset,
        "cross_validated": case.cross_validated,
        "lower_bound": case.lower_bound,
        "methods": {
            name: {
                "penalty": outcome.penalty,
                "normalized_penalty": case.normalized_penalty(name),
                "exttsp_score": outcome.exttsp,
                "normalized_exttsp": case.normalized_exttsp(name),
                "cycles": outcome.cycles,
                "normalized_cycles": case.normalized_cycles(name),
                "redirect": outcome.breakdown.redirect,
                "mispredict": outcome.breakdown.mispredict,
                "jump": outcome.breakdown.jump,
                "icache_misses": outcome.timing.icache_misses,
                "align_seconds": outcome.align_seconds,
                "degraded": dict(outcome.degraded),
                "warnings": list(outcome.warnings),
            }
            for name, outcome in case.methods.items()
        },
    }


def skipped_to_dict(skip: SkippedCase) -> dict:
    """Flatten one skipped-case record."""
    return {
        "benchmark": skip.benchmark,
        "dataset": skip.dataset,
        "train_dataset": skip.train_dataset,
        "error": skip.error,
        "attempts": skip.attempts,
    }


def cases_to_json(cases: Mapping[str, CaseResult], *, indent: int = 1) -> str:
    payload = {label: case_to_dict(case) for label, case in cases.items()}
    return json.dumps(payload, indent=indent, sort_keys=True)


def figure2_to_json(data: Figure2Data, *, indent: int = 1) -> str:
    payload = {
        "cases": {
            label: case_to_dict(case) for label, case in data.cases.items()
        },
        "means": {
            "greedy_removal": data.mean_greedy_removal,
            "tsp_removal": data.mean_tsp_removal,
            "bound_removal": data.mean_bound_removal,
            "greedy_speedup": data.mean_greedy_speedup,
            "tsp_speedup": data.mean_tsp_speedup,
        },
        # Method-generic dual pricing: one block per method, penalty model
        # and Ext-TSP score side by side.
        "per_method": {
            method: {
                "removal": data.mean_removal(method),
                "speedup": data.mean_speedup(method),
                "exttsp": data.mean_exttsp(method),
            }
            for method in data.method_columns
        },
        "skipped": [skipped_to_dict(skip) for skip in data.skipped],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def figure3_to_json(data: Figure3Data, *, indent: int = 1) -> str:
    payload = {
        "self": {
            label: case_to_dict(case)
            for label, case in data.self_cases.items()
        },
        "cross": {
            label: case_to_dict(case)
            for label, case in data.cross_cases.items()
        },
        "means": {
            side: {
                method: data.mean_removal(method, cross=(side == "cross"))
                for method in data.method_columns
            }
            for side in ("self", "cross")
        },
        "exttsp_means": {
            side: {
                method: data.mean_exttsp(method, cross=(side == "cross"))
                for method in data.method_columns
            }
            for side in ("self", "cross")
        },
        "skipped": [skipped_to_dict(skip) for skip in data.skipped],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
