"""The appendix's DTSP quality statistics.

The paper reports, over the per-procedure instances of esp.tl:

* 71 of 179 procedures have AP bound == optimal tour; the median gap of the
  remaining 108 is 30% (15 instances have OPT > 10× AP),
* iterated 3-Opt finds its best tour on all 10 runs for 128 of 179
  procedures,
* the HK bound is never more than 0.9% below the tour found (mean < 0.3%).

This module computes the same statistics over a set of alignment
instances — the real esp procedures plus an esp-scale synthetic program
(the tiny-language esp has far fewer procedures than SPEC espresso; the
synthetic program restores the instance-count scale, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.core.costmatrix import build_alignment_instance
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.tsp.assignment import assignment_cycle_cover
from repro.tsp.held_karp import held_karp_bound_directed
from repro.tsp.solve import PAPER, Effort, solve_dtsp
from repro.workloads.synthetic import synthetic_workload


@dataclass
class InstanceQuality:
    """Solver/bound quality for one procedure's DTSP instance."""

    name: str
    cities: int
    tour_cost: float
    hk_bound: float
    ap_bound: float
    ap_is_tour: bool
    runs_finding_best: int
    runs_total: int
    #: Branch-and-bound certified optimum (None when the node budget ran
    #: out — rare on alignment instances).
    optimum: float | None = None

    @property
    def tour_is_optimal(self) -> bool | None:
        if self.optimum is None:
            return None
        return self.tour_cost <= self.optimum + 1e-6 * max(1.0, self.optimum)

    @property
    def hk_gap(self) -> float:
        if self.hk_bound <= 0:
            return 0.0 if self.tour_cost <= 1e-9 else float("inf")
        return (self.tour_cost - self.hk_bound) / self.hk_bound

    @property
    def ap_gap(self) -> float:
        if self.ap_bound <= 0:
            return 0.0 if self.tour_cost <= 1e-9 else float("inf")
        return (self.tour_cost - self.ap_bound) / self.ap_bound

    @property
    def ap_tight(self) -> bool:
        return self.ap_gap <= 1e-6


@dataclass
class AppendixStats:
    instances: list[InstanceQuality] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.instances)

    @property
    def ap_tight_count(self) -> int:
        return sum(1 for i in self.instances if i.ap_tight)

    @property
    def median_ap_gap_of_loose(self) -> float:
        loose = [i.ap_gap for i in self.instances if not i.ap_tight]
        return median(loose) if loose else 0.0

    @property
    def stable_count(self) -> int:
        """Instances whose best tour was found on every solver run."""
        return sum(
            1 for i in self.instances
            if i.runs_total and i.runs_finding_best == i.runs_total
        )

    @property
    def mean_hk_gap(self) -> float:
        gaps = [i.hk_gap for i in self.instances if i.hk_gap != float("inf")]
        return sum(gaps) / len(gaps) if gaps else 0.0

    @property
    def max_hk_gap(self) -> float:
        gaps = [i.hk_gap for i in self.instances if i.hk_gap != float("inf")]
        return max(gaps) if gaps else 0.0

    @property
    def certified_count(self) -> int:
        return sum(1 for i in self.instances if i.optimum is not None)

    @property
    def optimal_tour_count(self) -> int:
        return sum(1 for i in self.instances if i.tour_is_optimal)


def analyze_instances(
    named_instances,
    *,
    effort: Effort | str = PAPER,
    seed: int = 0,
    certify_nodes: int = 20_000,
) -> AppendixStats:
    """Compute appendix statistics over (name, matrix) DTSP instances.

    With ``certify_nodes > 0`` each instance is also solved exactly by
    branch and bound (when it certifies within the node budget), giving
    true optimality rates in addition to the paper's HK-relative gaps.
    """
    from repro.tsp.branch_and_bound import branch_and_bound

    stats = AppendixStats()
    for index, (name, matrix) in enumerate(named_instances):
        result = solve_dtsp(matrix, effort=effort, seed=seed + index)
        hk = held_karp_bound_directed(matrix, tour_upper_bound=result.cost)
        cover = assignment_cycle_cover(matrix)
        optimum = None
        if certify_nodes > 0:
            exact = branch_and_bound(
                matrix, upper_bound=result.cost,
                initial_tour=result.tour, max_nodes=certify_nodes,
            )
            if exact.optimal:
                optimum = exact.cost
        stats.instances.append(
            InstanceQuality(
                name=name,
                cities=matrix.shape[0],
                tour_cost=result.cost,
                hk_bound=min(hk.bound, result.cost),
                ap_bound=min(cover.cost, result.cost),
                ap_is_tour=cover.is_tour,
                runs_finding_best=sum(
                    1 for r in result.runs if r.cost <= result.cost + 1e-6
                ),
                runs_total=len(result.runs),
                optimum=optimum,
            )
        )
    return stats


def esp_scale_instances(
    *,
    procedures: int = 60,
    seed: int = 7,
    min_flow: int = 1,
    model: PenaltyModel = ALPHA_21164,
):
    """Alignment DTSP instances from an esp-scale synthetic program."""
    program, profile = synthetic_workload(procedures=procedures, seed=seed)
    instances = []
    for proc in program:
        edge_profile = profile.procedures.get(proc.name)
        if edge_profile is None or edge_profile.total() < min_flow:
            continue
        instance = build_alignment_instance(proc.cfg, edge_profile, model)
        instances.append((proc.name, instance.matrix))
    return instances
