"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("%", "").replace("x", "")
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
