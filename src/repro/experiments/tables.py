"""Regeneration of every table and figure in the paper's evaluation.

Each ``*_rows`` function returns (headers, rows) ready for
:func:`repro.experiments.report.format_table`; the benches print them and
assert the paper's qualitative shape (see EXPERIMENTS.md for the
paper-vs-measured record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.budget import Budget
from repro.experiments.report import arithmetic_mean
from repro.experiments.runner import (
    CaseResult,
    SkippedCase,
    profiled_run,
    run_case_cached,
    run_case_resilient,
)
from repro.workloads.suite import (
    SUITE,
    all_cases,
    compile_benchmark,
    train_test_pairs,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.experiments.checkpoint import ExperimentCheckpoint


def _resilient_case(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> "CaseResult | SkippedCase":
    """One figure case, fault-tolerantly.

    With a checkpoint the case goes through :func:`run_case_resilient`
    (checkpoint lookup → compute → persist).  Without one it uses the
    session-local memo cache, but still retries once and folds repeated
    failure into a :class:`SkippedCase` so one pathological case cannot
    sink the whole figure.  ``jobs`` parallelizes the per-procedure solves
    without changing any figure value.
    """
    if checkpoint is not None:
        return run_case_resilient(
            benchmark,
            dataset,
            train_dataset,
            budget=budget,
            checkpoint=checkpoint,
            jobs=jobs,
            **case_kwargs,
        )
    last_error: Exception | None = None
    for _attempt in range(2):
        try:
            # lru_cache does not cache exceptions, so the retry recomputes.
            return run_case_cached(
                benchmark, dataset, train_dataset, budget=budget, jobs=jobs,
                **case_kwargs,
            )
        except Exception as exc:  # noqa: BLE001 — figure survival by design
            last_error = exc
    return SkippedCase(
        benchmark=benchmark,
        dataset=dataset,
        train_dataset=train_dataset or dataset,
        error=f"{type(last_error).__name__}: {last_error}",
    )


# -- Table 1: benchmark and data-set descriptions ------------------------------


def table1_rows() -> tuple[list[str], list[list[object]]]:
    headers = [
        "benchmark", "abbr", "description", "dataset",
        "branch sites touched", "executed branch instructions",
    ]
    rows: list[list[object]] = []
    for benchmark, dataset in all_cases():
        spec = SUITE[benchmark]
        run = profiled_run(benchmark, dataset)
        module_program = compile_benchmark(benchmark).program
        rows.append([
            spec.full_name,
            benchmark,
            spec.description,
            dataset,
            run.profile.branch_sites_touched(module_program),
            run.profile.executed_branches(module_program),
        ])
    return headers, rows


# -- Table 4: original penalties, lower bounds, original run times -------------


def table4_rows(
    cases: dict[str, CaseResult],
) -> tuple[list[str], list[list[object]]]:
    headers = [
        "case", "original penalty (cycles)", "lower bound (cycles)",
        "original time (Mcycles)", "penalty/time",
    ]
    rows: list[list[object]] = []
    for label, case in cases.items():
        original = case.methods["original"]
        cycles = original.cycles
        rows.append([
            label,
            original.penalty,
            case.lower_bound,
            cycles / 1e6,
            original.penalty / cycles if cycles else 0.0,
        ])
    return headers, rows


# -- Figure 2: same training and testing data set ------------------------------


@dataclass
class Figure2Data:
    """Normalized control penalties and run times, train = test."""

    cases: dict[str, CaseResult] = field(default_factory=dict)
    #: Cases that failed every attempt (excluded from the means).
    skipped: list[SkippedCase] = field(default_factory=list)

    @property
    def mean_greedy_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_penalty("greedy") for c in self.cases.values()]
        )

    @property
    def mean_tsp_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_penalty("tsp") for c in self.cases.values()]
        )

    @property
    def mean_bound_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_bound for c in self.cases.values()]
        )

    @property
    def mean_greedy_speedup(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_cycles("greedy") for c in self.cases.values()]
        )

    @property
    def mean_tsp_speedup(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_cycles("tsp") for c in self.cases.values()]
        )

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = ["case", "greedy", "tsp", "lower bound"]
        rows = [
            [
                label,
                case.normalized_penalty("greedy"),
                case.normalized_penalty("tsp"),
                case.normalized_bound,
            ]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN",
            1.0 - self.mean_greedy_removal,
            1.0 - self.mean_tsp_removal,
            1.0 - self.mean_bound_removal,
        ])
        return headers, rows

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = ["case", "greedy", "tsp"]
        rows = [
            [
                label,
                case.normalized_cycles("greedy"),
                case.normalized_cycles("tsp"),
            ]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN",
            1.0 - self.mean_greedy_speedup,
            1.0 - self.mean_tsp_speedup,
        ])
        return headers, rows


def figure2_data(
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> Figure2Data:
    """Run every benchmark case with train = test (the paper's §4.1).

    Fault-tolerant: a case that fails twice becomes a ``data.skipped`` row
    instead of aborting the figure; with ``checkpoint``, completed cases
    persist and an interrupted run resumes where it stopped.  ``jobs``
    parallelizes per-procedure solves; the figure is identical for every
    worker count.
    """
    data = Figure2Data()
    for benchmark, dataset in all_cases():
        outcome = _resilient_case(
            benchmark, dataset, checkpoint=checkpoint, budget=budget,
            jobs=jobs, **case_kwargs,
        )
        if isinstance(outcome, SkippedCase):
            data.skipped.append(outcome)
        else:
            data.cases[outcome.label] = outcome
    return data


# -- Figure 3: cross-validation ------------------------------------------------


@dataclass
class Figure3Data:
    """Self-trained vs cross-validated penalties and run times."""

    self_cases: dict[str, CaseResult] = field(default_factory=dict)
    cross_cases: dict[str, CaseResult] = field(default_factory=dict)
    #: Cases where either half of the pair failed every attempt.
    skipped: list[SkippedCase] = field(default_factory=list)

    def mean_removal(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_penalty(method) for c in cases.values()]
        )

    def mean_speedup(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_cycles(method) for c in cases.values()]
        )

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = [
            "case", "greedy self", "greedy cross", "tsp self", "tsp cross",
        ]
        rows = []
        for label in self.self_cases:
            self_case = self.self_cases[label]
            cross_case = self.cross_cases[label]
            rows.append([
                label,
                self_case.normalized_penalty("greedy"),
                cross_case.normalized_penalty("greedy"),
                self_case.normalized_penalty("tsp"),
                cross_case.normalized_penalty("tsp"),
            ])
        rows.append([
            "MEAN",
            1.0 - self.mean_removal("greedy", cross=False),
            1.0 - self.mean_removal("greedy", cross=True),
            1.0 - self.mean_removal("tsp", cross=False),
            1.0 - self.mean_removal("tsp", cross=True),
        ])
        return headers, rows

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = [
            "case", "greedy self", "greedy cross", "tsp self", "tsp cross",
        ]
        rows = []
        for label in self.self_cases:
            self_case = self.self_cases[label]
            cross_case = self.cross_cases[label]
            rows.append([
                label,
                self_case.normalized_cycles("greedy"),
                cross_case.normalized_cycles("greedy"),
                self_case.normalized_cycles("tsp"),
                cross_case.normalized_cycles("tsp"),
            ])
        rows.append([
            "MEAN",
            1.0 - self.mean_speedup("greedy", cross=False),
            1.0 - self.mean_speedup("greedy", cross=True),
            1.0 - self.mean_speedup("tsp", cross=False),
            1.0 - self.mean_speedup("tsp", cross=True),
        ])
        return headers, rows


def figure3_data(
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> Figure3Data:
    """Run every case twice: train = test, and train = sibling data set.

    Fault-tolerant like :func:`figure2_data`; a pair is only included when
    both halves complete, so the self/cross rows stay aligned.
    """
    data = Figure3Data()
    for benchmark, test_dataset, train_dataset in train_test_pairs():
        self_case = _resilient_case(
            benchmark, test_dataset, checkpoint=checkpoint, budget=budget,
            jobs=jobs, **case_kwargs,
        )
        cross_case = _resilient_case(
            benchmark, test_dataset, train_dataset,
            checkpoint=checkpoint, budget=budget, jobs=jobs, **case_kwargs,
        )
        skipped = [
            half for half in (self_case, cross_case)
            if isinstance(half, SkippedCase)
        ]
        if skipped:
            data.skipped.extend(skipped)
            continue
        data.self_cases[self_case.label] = self_case
        data.cross_cases[cross_case.label] = cross_case
    return data
