"""Regeneration of every table and figure in the paper's evaluation.

Each ``*_rows`` function returns (headers, rows) ready for
:func:`repro.experiments.report.format_table`; the benches print them and
assert the paper's qualitative shape (see EXPERIMENTS.md for the
paper-vs-measured record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.budget import Budget
from repro.experiments.report import arithmetic_mean
from repro.experiments.runner import (
    CaseResult,
    SkippedCase,
    profiled_run,
    run_case_cached,
    run_case_resilient,
)
from repro.workloads.suite import (
    SUITE,
    all_cases,
    compile_benchmark,
    train_test_pairs,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.experiments.checkpoint import ExperimentCheckpoint


def _resilient_case(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> "CaseResult | SkippedCase":
    """One figure case, fault-tolerantly.

    With a checkpoint the case goes through :func:`run_case_resilient`
    (checkpoint lookup → compute → persist).  Without one it uses the
    session-local memo cache, but still retries once and folds repeated
    failure into a :class:`SkippedCase` so one pathological case cannot
    sink the whole figure.  ``jobs`` parallelizes the per-procedure solves
    without changing any figure value.
    """
    if checkpoint is not None:
        return run_case_resilient(
            benchmark,
            dataset,
            train_dataset,
            budget=budget,
            checkpoint=checkpoint,
            jobs=jobs,
            **case_kwargs,
        )
    last_error: Exception | None = None
    for _attempt in range(2):
        try:
            # lru_cache does not cache exceptions, so the retry recomputes.
            return run_case_cached(
                benchmark, dataset, train_dataset, budget=budget, jobs=jobs,
                **case_kwargs,
            )
        except Exception as exc:  # noqa: BLE001 — figure survival by design
            last_error = exc
    return SkippedCase(
        benchmark=benchmark,
        dataset=dataset,
        train_dataset=train_dataset or dataset,
        error=f"{type(last_error).__name__}: {last_error}",
    )


# -- Table 1: benchmark and data-set descriptions ------------------------------


def table1_rows() -> tuple[list[str], list[list[object]]]:
    headers = [
        "benchmark", "abbr", "description", "dataset",
        "branch sites touched", "executed branch instructions",
    ]
    rows: list[list[object]] = []
    for benchmark, dataset in all_cases():
        spec = SUITE[benchmark]
        run = profiled_run(benchmark, dataset)
        module_program = compile_benchmark(benchmark).program
        rows.append([
            spec.full_name,
            benchmark,
            spec.description,
            dataset,
            run.profile.branch_sites_touched(module_program),
            run.profile.executed_branches(module_program),
        ])
    return headers, rows


# -- Table 4: original penalties, lower bounds, original run times -------------


def table4_rows(
    cases: dict[str, CaseResult],
) -> tuple[list[str], list[list[object]]]:
    headers = [
        "case", "original penalty (cycles)", "lower bound (cycles)",
        "original time (Mcycles)", "penalty/time",
    ]
    rows: list[list[object]] = []
    for label, case in cases.items():
        original = case.methods["original"]
        cycles = original.cycles
        rows.append([
            label,
            original.penalty,
            case.lower_bound,
            cycles / 1e6,
            original.penalty / cycles if cycles else 0.0,
        ])
    return headers, rows


# -- Figure 2: same training and testing data set ------------------------------


@dataclass
class Figure2Data:
    """Normalized control penalties and run times, train = test.

    Rows are *method-dynamic*: whatever methods the cases were run with
    (by default the paper's three plus the Ext-TSP pair) become columns,
    priced under the paper's penalty model (``penalty_rows``), simulated
    run time (``runtime_rows``), and the Ext-TSP score (``exttsp_rows``)
    — the dual-pricing head-to-head.
    """

    cases: dict[str, CaseResult] = field(default_factory=dict)
    #: Cases that failed every attempt (excluded from the means).
    skipped: list[SkippedCase] = field(default_factory=list)

    @property
    def method_columns(self) -> tuple[str, ...]:
        """The non-baseline methods present, in case method order."""
        for case in self.cases.values():
            return tuple(m for m in case.methods if m != "original")
        return ("greedy", "tsp")

    def mean_removal(self, method: str) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_penalty(method) for c in self.cases.values()]
        )

    def mean_speedup(self, method: str) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_cycles(method) for c in self.cases.values()]
        )

    def mean_exttsp(self, method: str) -> float:
        """Mean normalized Ext-TSP score (> 1 beats the original layout)."""
        return arithmetic_mean(
            [c.normalized_exttsp(method) for c in self.cases.values()]
        )

    @property
    def mean_greedy_removal(self) -> float:
        return self.mean_removal("greedy")

    @property
    def mean_tsp_removal(self) -> float:
        return self.mean_removal("tsp")

    @property
    def mean_bound_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_bound for c in self.cases.values()]
        )

    @property
    def mean_greedy_speedup(self) -> float:
        return self.mean_speedup("greedy")

    @property
    def mean_tsp_speedup(self) -> float:
        return self.mean_speedup("tsp")

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        methods = self.method_columns
        headers = ["case", *methods, "lower bound"]
        rows = [
            [
                label,
                *[case.normalized_penalty(m) for m in methods],
                case.normalized_bound,
            ]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN",
            *[1.0 - self.mean_removal(m) for m in methods],
            1.0 - self.mean_bound_removal,
        ])
        return headers, rows

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        methods = self.method_columns
        headers = ["case", *methods]
        rows = [
            [label, *[case.normalized_cycles(m) for m in methods]]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN", *[1.0 - self.mean_speedup(m) for m in methods],
        ])
        return headers, rows

    def exttsp_rows(self) -> tuple[list[str], list[list[object]]]:
        """Normalized Ext-TSP scores (score / original layout's score)."""
        methods = self.method_columns
        headers = ["case", *methods]
        rows = [
            [label, *[case.normalized_exttsp(m) for m in methods]]
            for label, case in self.cases.items()
        ]
        rows.append(["MEAN", *[self.mean_exttsp(m) for m in methods]])
        return headers, rows


def figure2_data(
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> Figure2Data:
    """Run every benchmark case with train = test (the paper's §4.1).

    Fault-tolerant: a case that fails twice becomes a ``data.skipped`` row
    instead of aborting the figure; with ``checkpoint``, completed cases
    persist and an interrupted run resumes where it stopped.  ``jobs``
    parallelizes per-procedure solves; the figure is identical for every
    worker count.
    """
    data = Figure2Data()
    for benchmark, dataset in all_cases():
        outcome = _resilient_case(
            benchmark, dataset, checkpoint=checkpoint, budget=budget,
            jobs=jobs, **case_kwargs,
        )
        if isinstance(outcome, SkippedCase):
            data.skipped.append(outcome)
        else:
            data.cases[outcome.label] = outcome
    return data


# -- Figure 3: cross-validation ------------------------------------------------


@dataclass
class Figure3Data:
    """Self-trained vs cross-validated penalties and run times."""

    self_cases: dict[str, CaseResult] = field(default_factory=dict)
    cross_cases: dict[str, CaseResult] = field(default_factory=dict)
    #: Cases where either half of the pair failed every attempt.
    skipped: list[SkippedCase] = field(default_factory=list)

    @property
    def method_columns(self) -> tuple[str, ...]:
        """The non-baseline methods present, in case method order."""
        for case in self.self_cases.values():
            return tuple(m for m in case.methods if m != "original")
        return ("greedy", "tsp")

    def mean_removal(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_penalty(method) for c in cases.values()]
        )

    def mean_speedup(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_cycles(method) for c in cases.values()]
        )

    def mean_exttsp(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [c.normalized_exttsp(method) for c in cases.values()]
        )

    def _paired_rows(self, value, mean) -> tuple[list[str], list[list[object]]]:
        methods = self.method_columns
        headers = ["case"]
        for method in methods:
            headers += [f"{method} self", f"{method} cross"]
        rows = []
        for label in self.self_cases:
            self_case = self.self_cases[label]
            cross_case = self.cross_cases[label]
            row: list[object] = [label]
            for method in methods:
                row += [value(self_case, method), value(cross_case, method)]
            rows.append(row)
        mean_row: list[object] = ["MEAN"]
        for method in methods:
            mean_row += [mean(method, False), mean(method, True)]
        rows.append(mean_row)
        return headers, rows

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        return self._paired_rows(
            lambda case, m: case.normalized_penalty(m),
            lambda m, cross: 1.0 - self.mean_removal(m, cross=cross),
        )

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        return self._paired_rows(
            lambda case, m: case.normalized_cycles(m),
            lambda m, cross: 1.0 - self.mean_speedup(m, cross=cross),
        )

    def exttsp_rows(self) -> tuple[list[str], list[list[object]]]:
        """Normalized Ext-TSP scores, self-trained vs cross-validated."""
        return self._paired_rows(
            lambda case, m: case.normalized_exttsp(m),
            lambda m, cross: self.mean_exttsp(m, cross=cross),
        )


def figure3_data(
    *,
    checkpoint: "ExperimentCheckpoint | None" = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    **case_kwargs,
) -> Figure3Data:
    """Run every case twice: train = test, and train = sibling data set.

    Fault-tolerant like :func:`figure2_data`; a pair is only included when
    both halves complete, so the self/cross rows stay aligned.
    """
    data = Figure3Data()
    for benchmark, test_dataset, train_dataset in train_test_pairs():
        self_case = _resilient_case(
            benchmark, test_dataset, checkpoint=checkpoint, budget=budget,
            jobs=jobs, **case_kwargs,
        )
        cross_case = _resilient_case(
            benchmark, test_dataset, train_dataset,
            checkpoint=checkpoint, budget=budget, jobs=jobs, **case_kwargs,
        )
        skipped = [
            half for half in (self_case, cross_case)
            if isinstance(half, SkippedCase)
        ]
        if skipped:
            data.skipped.extend(skipped)
            continue
        data.self_cases[self_case.label] = self_case
        data.cross_cases[cross_case.label] = cross_case
    return data
