"""Regeneration of every table and figure in the paper's evaluation.

Each ``*_rows`` function returns (headers, rows) ready for
:func:`repro.experiments.report.format_table`; the benches print them and
assert the paper's qualitative shape (see EXPERIMENTS.md for the
paper-vs-measured record).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import arithmetic_mean
from repro.experiments.runner import CaseResult, profiled_run, run_case_cached
from repro.workloads.suite import (
    SUITE,
    all_cases,
    compile_benchmark,
    train_test_pairs,
)


# -- Table 1: benchmark and data-set descriptions ------------------------------


def table1_rows() -> tuple[list[str], list[list[object]]]:
    headers = [
        "benchmark", "abbr", "description", "dataset",
        "branch sites touched", "executed branch instructions",
    ]
    rows: list[list[object]] = []
    for benchmark, dataset in all_cases():
        spec = SUITE[benchmark]
        run = profiled_run(benchmark, dataset)
        module_program = compile_benchmark(benchmark).program
        rows.append([
            spec.full_name,
            benchmark,
            spec.description,
            dataset,
            run.profile.branch_sites_touched(module_program),
            run.profile.executed_branches(module_program),
        ])
    return headers, rows


# -- Table 4: original penalties, lower bounds, original run times -------------


def table4_rows(
    cases: dict[str, CaseResult],
) -> tuple[list[str], list[list[object]]]:
    headers = [
        "case", "original penalty (cycles)", "lower bound (cycles)",
        "original time (Mcycles)", "penalty/time",
    ]
    rows: list[list[object]] = []
    for label, case in cases.items():
        original = case.methods["original"]
        cycles = original.cycles
        rows.append([
            label,
            original.penalty,
            case.lower_bound,
            cycles / 1e6,
            original.penalty / cycles if cycles else 0.0,
        ])
    return headers, rows


# -- Figure 2: same training and testing data set ------------------------------


@dataclass
class Figure2Data:
    """Normalized control penalties and run times, train = test."""

    cases: dict[str, CaseResult] = field(default_factory=dict)

    @property
    def mean_greedy_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_penalty("greedy") for c in self.cases.values()]
        )

    @property
    def mean_tsp_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_penalty("tsp") for c in self.cases.values()]
        )

    @property
    def mean_bound_removal(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_bound for c in self.cases.values()]
        )

    @property
    def mean_greedy_speedup(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_cycles("greedy") for c in self.cases.values()]
        )

    @property
    def mean_tsp_speedup(self) -> float:
        return arithmetic_mean(
            [1.0 - c.normalized_cycles("tsp") for c in self.cases.values()]
        )

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = ["case", "greedy", "tsp", "lower bound"]
        rows = [
            [
                label,
                case.normalized_penalty("greedy"),
                case.normalized_penalty("tsp"),
                case.normalized_bound,
            ]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN",
            1.0 - self.mean_greedy_removal,
            1.0 - self.mean_tsp_removal,
            1.0 - self.mean_bound_removal,
        ])
        return headers, rows

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = ["case", "greedy", "tsp"]
        rows = [
            [
                label,
                case.normalized_cycles("greedy"),
                case.normalized_cycles("tsp"),
            ]
            for label, case in self.cases.items()
        ]
        rows.append([
            "MEAN",
            1.0 - self.mean_greedy_speedup,
            1.0 - self.mean_tsp_speedup,
        ])
        return headers, rows


def figure2_data(**case_kwargs) -> Figure2Data:
    """Run every benchmark case with train = test (the paper's §4.1)."""
    data = Figure2Data()
    for benchmark, dataset in all_cases():
        case = run_case_cached(benchmark, dataset, **case_kwargs)
        data.cases[case.label] = case
    return data


# -- Figure 3: cross-validation ------------------------------------------------


@dataclass
class Figure3Data:
    """Self-trained vs cross-validated penalties and run times."""

    self_cases: dict[str, CaseResult] = field(default_factory=dict)
    cross_cases: dict[str, CaseResult] = field(default_factory=dict)

    def mean_removal(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_penalty(method) for c in cases.values()]
        )

    def mean_speedup(self, method: str, *, cross: bool) -> float:
        cases = self.cross_cases if cross else self.self_cases
        return arithmetic_mean(
            [1.0 - c.normalized_cycles(method) for c in cases.values()]
        )

    def penalty_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = [
            "case", "greedy self", "greedy cross", "tsp self", "tsp cross",
        ]
        rows = []
        for label in self.self_cases:
            self_case = self.self_cases[label]
            cross_case = self.cross_cases[label]
            rows.append([
                label,
                self_case.normalized_penalty("greedy"),
                cross_case.normalized_penalty("greedy"),
                self_case.normalized_penalty("tsp"),
                cross_case.normalized_penalty("tsp"),
            ])
        rows.append([
            "MEAN",
            1.0 - self.mean_removal("greedy", cross=False),
            1.0 - self.mean_removal("greedy", cross=True),
            1.0 - self.mean_removal("tsp", cross=False),
            1.0 - self.mean_removal("tsp", cross=True),
        ])
        return headers, rows

    def runtime_rows(self) -> tuple[list[str], list[list[object]]]:
        headers = [
            "case", "greedy self", "greedy cross", "tsp self", "tsp cross",
        ]
        rows = []
        for label in self.self_cases:
            self_case = self.self_cases[label]
            cross_case = self.cross_cases[label]
            rows.append([
                label,
                self_case.normalized_cycles("greedy"),
                cross_case.normalized_cycles("greedy"),
                self_case.normalized_cycles("tsp"),
                cross_case.normalized_cycles("tsp"),
            ])
        rows.append([
            "MEAN",
            1.0 - self.mean_speedup("greedy", cross=False),
            1.0 - self.mean_speedup("greedy", cross=True),
            1.0 - self.mean_speedup("tsp", cross=False),
            1.0 - self.mean_speedup("tsp", cross=True),
        ])
        return headers, rows


def figure3_data(**case_kwargs) -> Figure3Data:
    """Run every case twice: train = test, and train = sibling data set."""
    data = Figure3Data()
    for benchmark, test_dataset, train_dataset in train_test_pairs():
        self_case = run_case_cached(benchmark, test_dataset, **case_kwargs)
        cross_case = run_case_cached(
            benchmark, test_dataset, train_dataset, **case_kwargs
        )
        data.self_cases[self_case.label] = self_case
        data.cross_cases[cross_case.label] = cross_case
    return data
