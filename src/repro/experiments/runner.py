"""End-to-end experiment runner.

Drives the full pipeline for one (benchmark, testing-data-set) case,
optionally cross-validated (train on a sibling data set): compile →
profile → align (per method) → evaluate penalties → simulate run time.
Profiling runs are cached per (benchmark, data set) because every figure
reuses them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.align import align_program
from repro.core.aligners.tsp_aligner import alignment_lower_bound, tsp_align
from repro.core.costmodel import CostBreakdown
from repro.core.evaluate import evaluate_program, train_predictors
from repro.core.layout import ProgramLayout
from repro.machine.icache import DirectMappedICache
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.machine.timing import TimingBreakdown, simulate_timing
from repro.lang.vm import run_and_profile
from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.trace import CompactTrace
from repro.tsp.solve import DEFAULT, Effort
from repro.workloads.suite import SUITE, compile_benchmark

DEFAULT_METHODS = ("original", "greedy", "tsp")


@dataclass
class ProfiledRun:
    """A cached profiling run of one benchmark on one data set."""

    benchmark: str
    dataset: str
    profile: ProgramProfile
    trace: CompactTrace
    instructions: int
    blocks: int
    run_seconds: float
    returned: int


@lru_cache(maxsize=None)
def profiled_run(benchmark: str, dataset: str) -> ProfiledRun:
    """Execute one benchmark/data-set pair under instrumentation (cached)."""
    module = compile_benchmark(benchmark)
    inputs = SUITE[benchmark].inputs(dataset)
    started = time.perf_counter()
    result, profile = run_and_profile(module, inputs)
    elapsed = time.perf_counter() - started
    assert result.trace is not None
    compact = CompactTrace(result.trace.trace)
    return ProfiledRun(
        benchmark=benchmark,
        dataset=dataset,
        profile=profile,
        trace=compact,
        instructions=result.instructions_executed,
        blocks=result.blocks_executed,
        run_seconds=elapsed,
        returned=result.returned,
    )


@dataclass
class MethodOutcome:
    """One alignment method's results on one case."""

    method: str
    penalty: float
    breakdown: CostBreakdown
    timing: TimingBreakdown
    align_seconds: float
    layouts: ProgramLayout

    @property
    def cycles(self) -> float:
        return self.timing.total_cycles


@dataclass
class CaseResult:
    """Everything the tables/figures need for one benchmark case."""

    benchmark: str
    dataset: str            # the testing data set
    train_dataset: str      # equals `dataset` unless cross-validating
    methods: dict[str, MethodOutcome] = field(default_factory=dict)
    lower_bound: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.benchmark}.{self.dataset}"

    @property
    def cross_validated(self) -> bool:
        return self.dataset != self.train_dataset

    def normalized_penalty(self, method: str) -> float:
        original = self.methods["original"].penalty
        if original == 0:
            return 1.0
        return self.methods[method].penalty / original

    def normalized_cycles(self, method: str) -> float:
        original = self.methods["original"].cycles
        if original == 0:
            return 1.0
        return self.methods[method].cycles / original

    @property
    def normalized_bound(self) -> float:
        original = self.methods["original"].penalty
        if original == 0:
            return 1.0
        return self.lower_bound / original


def run_case(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    compute_bound: bool = True,
    icache_bytes: int = 8192,
    icache_line: int = 32,
) -> CaseResult:
    """Run one case: test on ``dataset``, train on ``train_dataset`` (same
    data set when omitted — the paper's §4.1 configuration)."""
    train_dataset = train_dataset or dataset
    module = compile_benchmark(benchmark)
    program = module.program
    training = profiled_run(benchmark, train_dataset)
    testing = (
        training
        if train_dataset == dataset
        else profiled_run(benchmark, dataset)
    )
    predictors = train_predictors(program, training.profile)

    case = CaseResult(
        benchmark=benchmark, dataset=dataset, train_dataset=train_dataset
    )
    for method in methods:
        started = time.perf_counter()
        layouts = align_program(
            program,
            training.profile,
            method=method,
            model=model,
            effort=effort,
            seed=seed,
        )
        align_seconds = time.perf_counter() - started
        penalty = evaluate_program(
            program, layouts, testing.profile, model, predictors=predictors
        )
        timing = simulate_timing(
            program,
            layouts,
            testing.profile,
            testing.trace,
            model,
            predictors=predictors,
            icache=DirectMappedICache(icache_bytes, icache_line),
        )
        case.methods[method] = MethodOutcome(
            method=method,
            penalty=penalty.total,
            breakdown=penalty.breakdown,
            timing=timing,
            align_seconds=align_seconds,
            layouts=layouts,
        )

    if compute_bound:
        case.lower_bound = case_lower_bound(
            benchmark, dataset, model=model, effort=effort, seed=seed
        )
    return case


@lru_cache(maxsize=None)
def run_case_cached(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
) -> CaseResult:
    """Memoized :func:`run_case` — figures share cases within a session.

    Treat the result as read-only.
    """
    return run_case(
        benchmark,
        dataset,
        train_dataset,
        methods=methods,
        model=model,
        effort=effort,
        seed=seed,
    )


@lru_cache(maxsize=None)
def case_lower_bound(
    benchmark: str,
    dataset: str,
    *,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
) -> float:
    """Held–Karp lower bound for one case, with TSP tours as the subgradient
    targets (cached — every figure reuses it)."""
    module = compile_benchmark(benchmark)
    run = profiled_run(benchmark, dataset)
    total = 0.0
    for index, proc in enumerate(module.program):
        edge_profile = run.profile.procedures.get(proc.name)
        if edge_profile is None or edge_profile.total() == 0:
            continue
        alignment = tsp_align(
            proc.cfg, edge_profile, model, effort=effort, seed=seed + index
        )
        total += alignment_lower_bound(
            proc.cfg,
            edge_profile,
            model,
            instance=alignment.instance,
            upper_bound=alignment.cost,
        )
    return total
