"""End-to-end experiment runner.

Drives the full pipeline for one (benchmark, testing-data-set) case,
optionally cross-validated (train on a sibling data set): compile →
profile → align (per method) → evaluate penalties → simulate run time.
Profiling runs are cached per (benchmark, data set) because every figure
reuses them.

Resilience (see ``docs/robustness.md``): a per-procedure solver
:class:`~repro.budget.Budget` makes every case finish in bounded time
(procedures that cannot be solved in budget degrade down the aligner's
ladder, recorded per method in :attr:`MethodOutcome.degraded`), and
:func:`run_cases` sweeps many cases fault-tolerantly — each case is
retried once, recorded as a skipped row on repeated failure, and persisted
to a checkpoint so an interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Sequence

from repro import obs
from repro.budget import Budget, RetryPolicy
from repro.core.align import AlignmentReport, align_program
from repro.core.costmodel import CostBreakdown
from repro.core.evaluate import evaluate_program, train_predictors
from repro.core.exttsp import exttsp_program_score
from repro.core.layout import ProgramLayout
from repro.pipeline.executor import resolve_jobs
from repro.pipeline.registry import normalize_method
from repro.pipeline.stages import run_align_tasks, run_bound_tasks
from repro.pipeline.task import BoundTask, procedure_tasks
from repro.machine.icache import DirectMappedICache
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.machine.timing import TimingBreakdown, simulate_timing
from repro.lang.vm import run_and_profile
from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.trace import CompactTrace
from repro.tsp.solve import DEFAULT, Effort, get_effort
from repro.workloads.suite import compile_benchmark, get_benchmark

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.experiments.checkpoint import ExperimentCheckpoint

#: The sweep default: the paper's three methods plus the modern Ext-TSP
#: pair, so the 1997 near-optimal alignment and the 2020 BOLT-style
#: heuristics face off on every figure (both are cheap next to ``tsp``).
DEFAULT_METHODS = ("original", "greedy", "tsp", "exttsp", "chain-merge")


@dataclass
class ProfiledRun:
    """A cached profiling run of one benchmark on one data set."""

    benchmark: str
    dataset: str
    profile: ProgramProfile
    trace: CompactTrace
    instructions: int
    blocks: int
    run_seconds: float
    returned: int


@lru_cache(maxsize=None)
def profiled_run(benchmark: str, dataset: str) -> ProfiledRun:
    """Execute one benchmark/data-set pair under instrumentation (cached)."""
    module = compile_benchmark(benchmark)
    inputs = get_benchmark(benchmark).inputs(dataset)
    started = time.perf_counter()
    result, profile = run_and_profile(module, inputs)
    elapsed = time.perf_counter() - started
    assert result.trace is not None
    compact = CompactTrace(result.trace.trace)
    return ProfiledRun(
        benchmark=benchmark,
        dataset=dataset,
        profile=profile,
        trace=compact,
        instructions=result.instructions_executed,
        blocks=result.blocks_executed,
        run_seconds=elapsed,
        returned=result.returned,
    )


@dataclass
class MethodOutcome:
    """One alignment method's results on one case."""

    method: str
    penalty: float
    breakdown: CostBreakdown
    timing: TimingBreakdown
    align_seconds: float
    layouts: ProgramLayout
    #: The layouts' Ext-TSP score on the *testing* profile (dual pricing:
    #: every method is priced under the paper's penalty model and the
    #: Ext-TSP objective; higher is better here).
    exttsp: float = 0.0
    #: Procedures laid out by a fallback rung (proc → rung name); empty when
    #: every procedure got the full solve.
    degraded: dict[str, str] = field(default_factory=dict)
    #: Structured warnings explaining each degradation.
    warnings: list[str] = field(default_factory=list)
    #: Retry attempts the supervised executor spent on this method.
    retried: int = 0
    #: Procedures poisoned out of the align stage (proc → final error);
    #: they keep their identity layout.
    quarantined: dict[str, str] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.timing.total_cycles

    @property
    def degraded_summary(self) -> str:
        """Compact report-cell form, e.g. ``construction×3``."""
        if not self.degraded:
            return ""
        counts: dict[str, int] = {}
        for rung in self.degraded.values():
            counts[rung] = counts.get(rung, 0) + 1
        return ",".join(
            f"{rung}×{n}" if n > 1 else rung
            for rung, n in sorted(counts.items())
        )


@dataclass
class CaseResult:
    """Everything the tables/figures need for one benchmark case."""

    benchmark: str
    dataset: str            # the testing data set
    train_dataset: str      # equals `dataset` unless cross-validating
    methods: dict[str, MethodOutcome] = field(default_factory=dict)
    lower_bound: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.benchmark}.{self.dataset}"

    @property
    def cross_validated(self) -> bool:
        return self.dataset != self.train_dataset

    def normalized_penalty(self, method: str) -> float:
        original = self.methods["original"].penalty
        if original == 0:
            return 1.0
        return self.methods[method].penalty / original

    def normalized_cycles(self, method: str) -> float:
        original = self.methods["original"].cycles
        if original == 0:
            return 1.0
        return self.methods[method].cycles / original

    def normalized_exttsp(self, method: str) -> float:
        """Ext-TSP score relative to the original layout (> 1 is better —
        the objective is a reward, not a penalty)."""
        original = self.methods["original"].exttsp
        if original == 0:
            return 1.0
        return self.methods[method].exttsp / original

    @property
    def normalized_bound(self) -> float:
        original = self.methods["original"].penalty
        if original == 0:
            return 1.0
        return self.lower_bound / original

    @property
    def degraded(self) -> bool:
        """True when any method degraded any procedure."""
        return any(outcome.degraded for outcome in self.methods.values())

    @property
    def retried(self) -> int:
        """Total supervised-executor retries across all methods."""
        return sum(outcome.retried for outcome in self.methods.values())

    @property
    def quarantined(self) -> int:
        """Total quarantined procedures across all methods."""
        return sum(
            len(outcome.quarantined) for outcome in self.methods.values()
        )


def run_case(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    compute_bound: bool = True,
    icache_bytes: int = 8192,
    icache_line: int = 32,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> CaseResult:
    """Run one case: test on ``dataset``, train on ``train_dataset`` (same
    data set when omitted — the paper's §4.1 configuration).

    ``budget`` bounds each procedure's TSP solve; procedures that blow it
    degrade down the aligner's ladder, recorded in the method's outcome.
    ``jobs`` > 1 aligns procedures in parallel worker processes; every
    field of the result except the wall-clock ``align_seconds`` is
    identical for every worker count.
    """
    train_dataset = train_dataset or dataset
    methods = tuple(normalize_method(m) for m in methods)
    module = compile_benchmark(benchmark)
    program = module.program
    training = profiled_run(benchmark, train_dataset)
    testing = (
        training
        if train_dataset == dataset
        else profiled_run(benchmark, dataset)
    )
    predictors = train_predictors(program, training.profile)

    case = CaseResult(
        benchmark=benchmark, dataset=dataset, train_dataset=train_dataset
    )
    with obs.span(
        "case", benchmark=benchmark, dataset=dataset, train=train_dataset
    ):
        for method in methods:
            with obs.span("method", method=method):
                with obs.span("align", method=method) as align_span:
                    align_report = AlignmentReport()
                    layouts = align_program(
                        program,
                        training.profile,
                        method=method,
                        model=model,
                        effort=effort,
                        seed=seed,
                        budget=budget,
                        report=align_report,
                        jobs=jobs,
                        policy=policy,
                    )
                penalty = evaluate_program(
                    program, layouts, testing.profile, model,
                    predictors=predictors,
                )
                timing = simulate_timing(
                    program,
                    layouts,
                    testing.profile,
                    testing.trace,
                    model,
                    predictors=predictors,
                    icache=DirectMappedICache(icache_bytes, icache_line),
                )
            case.methods[method] = MethodOutcome(
                method=method,
                penalty=penalty.total,
                breakdown=penalty.breakdown,
                timing=timing,
                align_seconds=align_span.dur_ms / 1000.0,
                layouts=layouts,
                exttsp=exttsp_program_score(
                    program, layouts, testing.profile
                ),
                degraded=align_report.degraded,
                warnings=align_report.warnings,
                retried=align_report.retried,
                quarantined=align_report.quarantined,
            )

        if compute_bound:
            case.lower_bound = case_lower_bound(
                benchmark,
                dataset,
                model=model,
                effort=effort,
                seed=seed,
                budget=budget,
                jobs=jobs,
                policy=policy,
            )
    return case


@lru_cache(maxsize=None)
def _run_case_cached(
    benchmark: str,
    dataset: str,
    train_dataset: str,
    *,
    methods: tuple[str, ...],
    model: PenaltyModel,
    effort: Effort,
    seed: int,
    budget: Budget | None,
    jobs: int,
    policy: RetryPolicy | None,
) -> CaseResult:
    return run_case(
        benchmark,
        dataset,
        train_dataset,
        methods=methods,
        model=model,
        effort=effort,
        seed=seed,
        budget=budget,
        jobs=jobs,
        policy=policy,
    )


def run_case_cached(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> CaseResult:
    """Memoized :func:`run_case` — figures share cases within a session.

    Arguments are normalized *before* the cache boundary, so the spellings
    ``(bm, ds)``, ``(bm, ds, ds)``, ``effort="default"`` vs the Effort
    object, and method aliases (``"dtsp"`` vs ``"tsp"``) all hit one
    entry.  Treat the result as read-only.
    """
    return _run_case_cached(
        benchmark,
        dataset,
        train_dataset or dataset,
        methods=tuple(normalize_method(m) for m in methods),
        model=model,
        effort=get_effort(effort),
        seed=seed,
        budget=budget,
        jobs=resolve_jobs(jobs),
        policy=policy,
    )


run_case_cached.cache_clear = _run_case_cached.cache_clear  # type: ignore[attr-defined]
run_case_cached.cache_info = _run_case_cached.cache_info  # type: ignore[attr-defined]


@lru_cache(maxsize=None)
def _case_lower_bound(
    benchmark: str,
    dataset: str,
    *,
    model: PenaltyModel,
    effort: Effort,
    seed: int,
    budget: Budget | None,
    jobs: int,
    policy: RetryPolicy | None = None,
) -> float:
    module = compile_benchmark(benchmark)
    run = profiled_run(benchmark, dataset)
    # The TSP tours serve as the subgradient targets.  Going through the
    # align stage means these solves are shared, via the artifact cache,
    # with the case's own ``tsp`` method — one solve feeds both.
    tasks = procedure_tasks(
        module.program,
        run.profile,
        method="tsp",
        model=model,
        effort=effort,
        seed=seed,
        budget=budget,
    )
    aligned = run_align_tasks(tasks, jobs=jobs, policy=policy)
    bound_tasks = [
        BoundTask(
            name=task.name,
            cfg=task.cfg,
            profile=task.profile,
            model=task.model,
            index=task.index,
            upper_bound=result.cost,
            budget=budget,
            instance=result.instance,
        )
        for task, result in zip(tasks, aligned)
        if task.profile.total()
    ]
    return sum(
        r.bound
        for r in run_bound_tasks(bound_tasks, jobs=jobs, policy=policy)
    )


def case_lower_bound(
    benchmark: str,
    dataset: str,
    *,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> float:
    """Held–Karp lower bound for one case, with TSP tours as the subgradient
    targets (cached — every figure reuses it; arguments are normalized
    before the cache boundary)."""
    return _case_lower_bound(
        benchmark,
        dataset,
        model=model,
        effort=get_effort(effort),
        seed=seed,
        budget=budget,
        jobs=resolve_jobs(jobs),
        policy=policy,
    )


case_lower_bound.cache_clear = _case_lower_bound.cache_clear  # type: ignore[attr-defined]
case_lower_bound.cache_info = _case_lower_bound.cache_info  # type: ignore[attr-defined]


# -- fault-tolerant sweeps ----------------------------------------------------


@dataclass(frozen=True)
class SkippedCase:
    """A case that failed every attempt of a sweep — recorded, not raised."""

    benchmark: str
    dataset: str
    train_dataset: str
    error: str
    attempts: int = 2

    @property
    def label(self) -> str:
        return f"{self.benchmark}.{self.dataset}"


@dataclass
class SweepResult:
    """Outcome of :func:`run_cases` over many cases."""

    cases: list[CaseResult] = field(default_factory=list)
    skipped: list[SkippedCase] = field(default_factory=list)
    #: How many cases were served from the checkpoint vs computed fresh.
    from_checkpoint: int = 0
    computed: int = 0


def run_case_resilient(
    benchmark: str,
    dataset: str,
    train_dataset: str | None = None,
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    compute_bound: bool = True,
    checkpoint: "ExperimentCheckpoint | None" = None,
    retries: int = 1,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> "CaseResult | SkippedCase":
    """:func:`run_case` with checkpoint lookup, retry, and skip-on-failure.

    A case already in ``checkpoint`` is served from it (no recompute); a
    fresh case is persisted to ``checkpoint`` on success.  A case that
    raises is retried ``retries`` more times; if every attempt fails the
    failure is folded into a :class:`SkippedCase` instead of propagating —
    one pathological case must not sink a whole figure run.

    ``jobs`` deliberately does not participate in the checkpoint key: a
    case's results are identical for every worker count, so a checkpoint
    written at ``jobs=1`` resumes byte-identically at ``jobs=4``.
    """
    from repro.experiments.checkpoint import CaseKey  # local: import cycle

    methods = tuple(normalize_method(m) for m in methods)
    key = None
    if checkpoint is not None:
        key = CaseKey.for_case(
            benchmark,
            dataset,
            train_dataset,
            methods=methods,
            model=model,
            effort=effort,
            seed=seed,
            budget=budget,
        )
        cached = checkpoint.get(key)
        if cached is not None:
            return cached

    last_error: Exception | None = None
    for _attempt in range(retries + 1):
        try:
            case = run_case(
                benchmark,
                dataset,
                train_dataset,
                methods=methods,
                model=model,
                effort=effort,
                seed=seed,
                budget=budget,
                compute_bound=compute_bound,
                jobs=jobs,
                policy=policy,
            )
        except Exception as exc:  # noqa: BLE001 — sweep survival by design
            last_error = exc
            continue
        if checkpoint is not None and key is not None:
            checkpoint.record(key, case)
        return case
    return SkippedCase(
        benchmark=benchmark,
        dataset=dataset,
        train_dataset=train_dataset or dataset,
        error=f"{type(last_error).__name__}: {last_error}",
        attempts=retries + 1,
    )


def run_cases(
    specs: Iterable[Sequence[str]],
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    compute_bound: bool = True,
    checkpoint: "ExperimentCheckpoint | None" = None,
    retries: int = 1,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> SweepResult:
    """Run a sweep of cases fault-tolerantly.

    ``specs`` is an iterable of ``(benchmark, dataset)`` or
    ``(benchmark, dataset, train_dataset)`` tuples.  Completed cases land
    in ``result.cases`` in spec order; failures land in ``result.skipped``.
    ``jobs`` parallelizes the per-procedure solves *within* each case
    (cases themselves stay sequential so checkpoints grow in spec order).
    """
    from repro.experiments.checkpoint import CaseKey  # local: import cycle

    methods = tuple(normalize_method(m) for m in methods)
    result = SweepResult()
    for spec in specs:
        benchmark, dataset = spec[0], spec[1]
        train_dataset = spec[2] if len(spec) > 2 else None
        was_checkpointed = False
        if checkpoint is not None:
            was_checkpointed = (
                CaseKey.for_case(
                    benchmark,
                    dataset,
                    train_dataset,
                    methods=methods,
                    model=model,
                    effort=effort,
                    seed=seed,
                    budget=budget,
                )
                in checkpoint
            )
        outcome = run_case_resilient(
            benchmark,
            dataset,
            train_dataset,
            methods=methods,
            model=model,
            effort=effort,
            seed=seed,
            budget=budget,
            compute_bound=compute_bound,
            checkpoint=checkpoint,
            retries=retries,
            jobs=jobs,
            policy=policy,
        )
        if isinstance(outcome, SkippedCase):
            result.skipped.append(outcome)
        else:
            result.cases.append(outcome)
            if was_checkpointed:
                result.from_checkpoint += 1
            else:
                result.computed += 1
    return result
