"""Experiment harness: runners, stage timers, and table/figure generators."""

from repro.experiments.appendix import (
    AppendixStats,
    InstanceQuality,
    analyze_instances,
    esp_scale_instances,
)
from repro.experiments.crossval import (
    CrossValidationSummary,
    cross_validate,
    summarize_pair,
)
from repro.experiments.export import (
    case_to_dict,
    cases_to_json,
    figure2_to_json,
    figure3_to_json,
)
from repro.experiments.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    percent,
)
from repro.experiments.runner import (
    CaseResult,
    MethodOutcome,
    ProfiledRun,
    case_lower_bound,
    profiled_run,
    run_case,
)
from repro.experiments.stages import StageTimes, time_stages, worst_dataset
from repro.experiments.tables import (
    Figure2Data,
    Figure3Data,
    figure2_data,
    figure3_data,
    table1_rows,
    table4_rows,
)

__all__ = [
    "AppendixStats",
    "CaseResult",
    "CrossValidationSummary",
    "Figure2Data",
    "Figure3Data",
    "InstanceQuality",
    "MethodOutcome",
    "ProfiledRun",
    "StageTimes",
    "analyze_instances",
    "arithmetic_mean",
    "case_lower_bound",
    "case_to_dict",
    "cases_to_json",
    "cross_validate",
    "figure2_to_json",
    "figure3_to_json",
    "esp_scale_instances",
    "figure2_data",
    "figure3_data",
    "format_table",
    "geometric_mean",
    "percent",
    "profiled_run",
    "run_case",
    "summarize_pair",
    "table1_rows",
    "table4_rows",
    "time_stages",
    "worst_dataset",
]
