"""Experiment harness: runners, stage timers, and table/figure generators."""

from repro.experiments.appendix import (
    AppendixStats,
    InstanceQuality,
    analyze_instances,
    esp_scale_instances,
)
from repro.experiments.crossval import (
    CrossValidationSummary,
    cross_validate,
    summarize_pair,
)
from repro.experiments.checkpoint import (
    CaseKey,
    ExperimentCheckpoint,
    case_from_state,
    case_to_state,
)
from repro.experiments.export import (
    case_to_dict,
    cases_to_json,
    figure2_to_json,
    figure3_to_json,
    skipped_to_dict,
)
from repro.experiments.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    percent,
)
from repro.experiments.runner import (
    CaseResult,
    MethodOutcome,
    ProfiledRun,
    SkippedCase,
    SweepResult,
    case_lower_bound,
    profiled_run,
    run_case,
    run_case_cached,
    run_case_resilient,
    run_cases,
)
from repro.experiments.stages import StageTimes, time_stages, worst_dataset
from repro.experiments.tables import (
    Figure2Data,
    Figure3Data,
    figure2_data,
    figure3_data,
    table1_rows,
    table4_rows,
)

__all__ = [
    "AppendixStats",
    "CaseKey",
    "CaseResult",
    "CrossValidationSummary",
    "ExperimentCheckpoint",
    "Figure2Data",
    "Figure3Data",
    "InstanceQuality",
    "MethodOutcome",
    "ProfiledRun",
    "SkippedCase",
    "StageTimes",
    "SweepResult",
    "analyze_instances",
    "arithmetic_mean",
    "case_from_state",
    "case_lower_bound",
    "case_to_dict",
    "case_to_state",
    "cases_to_json",
    "cross_validate",
    "figure2_to_json",
    "figure3_to_json",
    "esp_scale_instances",
    "figure2_data",
    "figure3_data",
    "format_table",
    "geometric_mean",
    "percent",
    "profiled_run",
    "run_case",
    "run_case_cached",
    "run_case_resilient",
    "run_cases",
    "skipped_to_dict",
    "table1_rows",
    "table4_rows",
    "time_stages",
    "worst_dataset",
]
