"""The observability event schema.

Every line of a JSONL trace is one *event* — a flat JSON object carrying a
schema version (``v``) and a ``type``:

* ``meta`` — one per trace, written when the trace starts: schema version,
  producing process, and a free-form label (the CLI records its command).
* ``span`` — one timed region of the pipeline: a ``name`` from the span
  taxonomy (``docs/observability.md``), string-keyed ``attrs``, monotonic
  ``t0_ms``/``dur_ms``, and identity fields (``pid``, ``span_id``,
  ``parent_id``, ``seq``) that let a reader rebuild the span tree.
* ``counter`` — one named total, written when the trace is finalized.
  ``stable`` marks counters whose value is a pure function of the work
  requested (retries, quarantines, solver kicks): these are identical for
  every worker count.  Unstable counters (cache and store activity) are
  honest observations of *this* process and may legitimately differ
  between runs.

Two comparisons are derived from the schema:

* :func:`span_identity` — the timing- and identity-free view of a span
  (``name`` + sorted ``attrs``).  The multiset of span identities is the
  worker-count-invariant content of a trace.
* :func:`validate_event` / :func:`validate_trace_lines` — structural
  validation used by tests, CI's trace smoke job, and
  ``repro trace validate``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

SCHEMA_VERSION = 1

EVENT_TYPES = ("meta", "span", "counter")

#: JSON-safe attribute value types (``None`` marks "absent").
_ATTR_TYPES = (str, int, float, bool, type(None))

_SPAN_FIELDS = {
    "name": str,
    "attrs": dict,
    "t0_ms": (int, float),
    "dur_ms": (int, float),
    "pid": int,
    "span_id": str,
    "seq": int,
}

_COUNTER_FIELDS = {
    "name": str,
    "value": (int, float),
    "stable": bool,
}

#: Fields excluded from determinism comparisons: wall-clock / monotonic
#: timing plus process- and ordering-identity.
TIMING_FIELDS = frozenset({"t0_ms", "dur_ms"})
IDENTITY_FIELDS = frozenset({"pid", "span_id", "parent_id", "seq"})


def meta_event(label: str | None = None, **extra: Any) -> dict:
    event: dict[str, Any] = {"v": SCHEMA_VERSION, "type": "meta"}
    if label is not None:
        event["label"] = label
    event.update(extra)
    return event


def span_identity(event: dict) -> tuple:
    """The timing-free identity of a span event: what it measured, not
    when, where, or how long.  Two traces of the same work agree on the
    multiset of span identities at any worker count."""
    attrs = event.get("attrs") or {}
    return (event.get("name"), tuple(sorted(attrs.items())))


def validate_event(event: object) -> list[str]:
    """Structural problems with one event (empty list = schema-valid)."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"event must be a JSON object, got {type(event).__name__}"]
    if event.get("v") != SCHEMA_VERSION:
        problems.append(f"unsupported schema version {event.get('v')!r}")
    kind = event.get("type")
    if kind not in EVENT_TYPES:
        problems.append(f"unknown event type {kind!r}")
        return problems
    if kind == "meta":
        return problems
    fields = _SPAN_FIELDS if kind == "span" else _COUNTER_FIELDS
    for name, types in fields.items():
        if name not in event:
            problems.append(f"{kind} event missing field {name!r}")
            continue
        value = event[name]
        # bool is an int subclass: accept it only where bool is expected.
        bad = (
            not isinstance(value, bool)
            if types is bool
            else isinstance(value, bool) or not isinstance(value, types)
        )
        if bad:
            problems.append(
                f"{kind} field {name!r} has type {type(value).__name__}"
            )
    if kind == "span":
        parent = event.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            problems.append("span field 'parent_id' must be a string or null")
        for key, value in (event.get("attrs") or {}).items():
            if not isinstance(key, str):
                problems.append(f"span attr key {key!r} is not a string")
            elif not isinstance(value, _ATTR_TYPES):
                problems.append(
                    f"span attr {key!r} has non-scalar type "
                    f"{type(value).__name__}"
                )
        if isinstance(event.get("dur_ms"), (int, float)) and event["dur_ms"] < 0:
            problems.append("span field 'dur_ms' is negative")
    return problems


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Problems across a whole JSONL trace, each prefixed ``line N:``."""
    problems: list[str] = []
    count = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        count += 1
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {number}: not valid JSON ({exc})")
            continue
        for problem in validate_event(event):
            problems.append(f"line {number}: {problem}")
    if count == 0:
        problems.append("trace is empty")
    return problems


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace into events, raising ``ValueError`` naming the
    first malformed line (readers that want per-line diagnostics use
    :func:`validate_trace_lines`)."""
    import pathlib

    events = []
    text = pathlib.Path(path).read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not valid JSON ({exc})") from None
    return events
