"""``repro.obs`` — structured observability for the alignment pipeline.

Spans (hierarchical monotonic timers), counters/gauges, and a JSONL trace
sink whose events merge deterministically across worker processes.  See
``docs/observability.md`` for the event schema and span taxonomy.
"""

from .events import (
    IDENTITY_FIELDS,
    SCHEMA_VERSION,
    TIMING_FIELDS,
    load_trace,
    span_identity,
    validate_event,
    validate_trace_lines,
)
from .trace import (
    TRACE_ENV,
    Span,
    Tracer,
    absorb,
    collect,
    count,
    counters,
    finish_trace,
    gauge,
    install_tracer,
    reset_tracer,
    span,
    start_trace,
    tracer,
)
from .summarize import (
    counter_rollup,
    span_rollup,
    span_tree_rollup,
    summarize_events,
    summarize_trace,
)

__all__ = [
    "IDENTITY_FIELDS",
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "TRACE_ENV",
    "Span",
    "Tracer",
    "absorb",
    "collect",
    "count",
    "counter_rollup",
    "counters",
    "finish_trace",
    "gauge",
    "install_tracer",
    "load_trace",
    "reset_tracer",
    "span",
    "span_identity",
    "span_rollup",
    "span_tree_rollup",
    "start_trace",
    "summarize_events",
    "summarize_trace",
    "tracer",
    "validate_event",
    "validate_trace_lines",
]
