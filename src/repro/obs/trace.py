"""Spans, counters, and the JSONL trace sink.

One :class:`Tracer` lives per process, reached through a ``ContextVar`` so
fault-injection-style scoping (``collect()``) composes with threads.  Two
costs are kept separate by design:

* **Counters are always on.**  ``count()``/``gauge()`` are dict updates —
  cheap enough to leave unconditionally in hot paths (cache lookups, 3-Opt
  kicks) so benchmark snapshots work without a trace file.
* **Spans are recorded only while a trace is active** (a sink is attached
  via ``start_trace`` or events are being captured via ``collect``).  The
  ``span()`` context manager still *times* its body regardless, and hands
  the caller a mutable handle, so code like ``experiments/stages.py`` can
  read ``sp.dur_ms`` without a sink attached.

Worker processes never see the parent's sink.  Instead the executor wraps
each handler call in ``collect()``, ships the captured events back with
the result (exactly like fault-plan counters), and the parent ``absorb``s
them: span events are re-written into the parent trace, *stable* counters
are merged, and unstable (per-process observational) counters are
dropped — which is what keeps a merged trace deterministic for any worker
count.  See ``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from .events import SCHEMA_VERSION, meta_event

TRACE_ENV = "REPRO_TRACE"

_SEQ = itertools.count(1)


class TraceSink:
    """Appends JSONL events to a file, one ``os.write`` per line.

    The file is opened with ``O_APPEND``, so concurrent writers (the
    parent plus any process handed the same path) interleave at line
    granularity — POSIX guarantees each single ``write`` of a line is
    atomic with respect to other appenders.  In practice only the parent
    writes (worker events arrive via ``absorb``), but the sink stays safe
    if that ever changes.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def write(self, event: dict) -> None:
        if self._fd is None:
            return
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        try:
            os.write(self._fd, line.encode("utf-8") + b"\n")
        except OSError:
            # A full disk or yanked mount must not take the run down:
            # tracing is an observer, never a participant.
            self.close()

    def close(self) -> None:
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                os.close(fd)
            except OSError:
                pass  # already-dead fd: nothing left to release


@dataclass
class Span:
    """Mutable handle returned by ``Tracer.span``.

    Attribute assignment via item access (``sp["cities"] = 12``) adds
    trace attributes up until the span closes.  ``dur_ms`` is populated
    on exit whether or not the span was recorded.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    t0_ms: float = 0.0
    dur_ms: float = 0.0
    span_id: str = ""
    parent_id: str | None = None

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]


class Tracer:
    """Per-process span/counter accumulator with an optional JSONL sink."""

    def __init__(self) -> None:
        self._sink: TraceSink | None = None
        self._buffer: list[dict] | None = None
        self._stack: list[Span] = []
        self._counters: dict[str, float] = {}
        self._stable: dict[str, bool] = {}
        self._epoch = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while span events have somewhere to go."""
        return self._sink is not None or self._buffer is not None

    def open_sink(self, path: str | os.PathLike[str], label: str | None = None) -> None:
        self.close_sink()
        # Counter totals flush into the trace when it closes; resetting
        # here scopes them to exactly the traced window, even when one
        # process opens several traces in sequence (tests, library use).
        self.reset_counters()
        self._sink = TraceSink(path)
        self._emit(meta_event(label=label, pid=os.getpid()))

    def close_sink(self) -> None:
        """Flush counter totals as events, then close the file."""
        if self._sink is not None:
            for event in self.counter_events():
                self._sink.write(event)
            self._sink.close()
            self._sink = None

    # -- spans -------------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            name=name,
            attrs=dict(attrs),
            span_id=f"{os.getpid():x}-{next(_SEQ):x}",
            parent_id=parent.span_id if parent else None,
        )
        start = time.monotonic()
        sp.t0_ms = (start - self._epoch) * 1000.0
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.dur_ms = (time.monotonic() - start) * 1000.0
            self._stack.pop()
            if self.active:
                self._emit(self._span_event(sp))

    def _span_event(self, sp: Span) -> dict:
        return {
            "v": SCHEMA_VERSION,
            "type": "span",
            "name": sp.name,
            "attrs": dict(sp.attrs),
            "t0_ms": round(sp.t0_ms, 3),
            "dur_ms": round(sp.dur_ms, 3),
            "pid": os.getpid(),
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "seq": next(_SEQ),
        }

    # -- counters ----------------------------------------------------------

    def count(self, name: str, n: float = 1, *, stable: bool = True) -> None:
        """Add ``n`` to a named total.  ``stable=False`` marks counters
        whose value depends on process placement (per-worker caches);
        they are reported but never merged across processes or compared
        for determinism."""
        self._counters[name] = self._counters.get(name, 0) + n
        # Once unstable, always unstable: mixed-origin totals cannot be
        # promoted back to deterministic.
        self._stable[name] = self._stable.get(name, True) and stable

    def gauge(self, name: str, value: float, *, stable: bool = True) -> None:
        """Set a named value to its latest observation."""
        self._counters[name] = value
        self._stable[name] = stable

    def counters(self, *, stable_only: bool = False) -> dict[str, float]:
        return {
            name: value
            for name, value in sorted(self._counters.items())
            if not stable_only or self._stable.get(name, True)
        }

    def counter_events(self) -> list[dict]:
        return [
            {
                "v": SCHEMA_VERSION,
                "type": "counter",
                "name": name,
                "value": value,
                "stable": self._stable.get(name, True),
            }
            for name, value in sorted(self._counters.items())
        ]

    def reset_counters(self) -> None:
        self._counters.clear()
        self._stable.clear()

    # -- worker capture / parent merge --------------------------------------

    @contextlib.contextmanager
    def collect(self) -> Iterator[list[dict]]:
        """Capture span events (and, on exit, counter deltas) into a list
        instead of a sink — the worker half of the merge protocol."""
        outer_buffer = self._buffer
        before = dict(self._counters)
        captured: list[dict] = []
        self._buffer = captured
        try:
            yield captured
        finally:
            self._buffer = outer_buffer
            for name, value in sorted(self._counters.items()):
                delta = value - before.get(name, 0)
                if delta:
                    captured.append(
                        {
                            "v": SCHEMA_VERSION,
                            "type": "counter",
                            "name": name,
                            "value": delta,
                            "stable": self._stable.get(name, True),
                        }
                    )

    def absorb(self, events: list[dict] | None) -> None:
        """Merge a worker's captured events into this tracer: span events
        pass through to the active trace; stable counter deltas merge;
        unstable deltas are dropped (their totals are per-process facts,
        not properties of the work).

        Span events whose parent is not part of the same batch — worker
        root spans, whose inherited parent link points at whatever the
        parent process had open when the pool forked — are re-anchored to
        the span active *here and now* (the executor's batch span), so the
        merged tree reads as if the work ran in-process.
        """
        if not events:
            return
        local_ids = {
            e.get("span_id") for e in events if e.get("type") == "span"
        }
        anchor = self._stack[-1].span_id if self._stack else None
        for event in events:
            kind = event.get("type")
            if kind == "span":
                if event.get("parent_id") not in local_ids:
                    event = {**event, "parent_id": anchor}
                if self.active:
                    self._emit(event)
            elif kind == "counter" and event.get("stable", True):
                self.count(event["name"], event.get("value", 0))

    def drain_events(self) -> list[dict]:
        """Span events captured so far plus current counter totals —
        used by in-process consumers (bench snapshots, tests)."""
        events = list(self._buffer or [])
        events.extend(self.counter_events())
        return events

    # -- plumbing ----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if self._buffer is not None:
            self._buffer.append(event)
        elif self._sink is not None:
            self._sink.write(event)


_TRACER: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_tracer", default=None
)


def tracer() -> Tracer:
    """The process-wide tracer, created on first use."""
    current = _TRACER.get()
    if current is None:
        current = Tracer()
        _TRACER.set(current)
    return current


def install_tracer(t: Tracer) -> None:
    """Make ``t`` the tracer for the *current* context.

    ``ContextVar`` state is per-thread: a thread spawned after a trace
    starts would otherwise mint a fresh, sink-less tracer and silently
    drop everything it records.  Long-lived worker threads (the alignment
    service's request loop) call this once at startup with the tracer
    their parent thread captured, so spans and counters from both threads
    land in one place.
    """
    _TRACER.set(t)


def reset_tracer() -> None:
    """Discard all tracer state (tests)."""
    current = _TRACER.get()
    if current is not None:
        current.close_sink()
    _TRACER.set(None)


# -- module-level conveniences (the instrumented call sites use these) ------


def span(name: str, **attrs: Any):
    return tracer().span(name, **attrs)


def count(name: str, n: float = 1, *, stable: bool = True) -> None:
    tracer().count(name, n, stable=stable)


def gauge(name: str, value: float, *, stable: bool = True) -> None:
    tracer().gauge(name, value, stable=stable)


def collect():
    return tracer().collect()


def absorb(events: list[dict] | None) -> None:
    tracer().absorb(events)


def counters(*, stable_only: bool = False) -> dict[str, float]:
    return tracer().counters(stable_only=stable_only)


def start_trace(path: str | os.PathLike[str] | None = None, label: str | None = None) -> bool:
    """Attach a JSONL sink from an explicit path or ``$REPRO_TRACE``.
    Returns True if a trace was started."""
    target = path or os.environ.get(TRACE_ENV) or None
    if not target or str(target).lower() == "off":
        return False
    tracer().open_sink(target, label=label)
    return True


def finish_trace() -> None:
    """Flush counters into the trace and close it."""
    tracer().close_sink()
