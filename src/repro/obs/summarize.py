"""Render a JSONL trace as human-readable tables.

``repro trace summarize PATH`` prints three sections built from the raw
events alone (no pipeline state is consulted):

* a **span rollup** — per span name: count, total/mean/max duration.
  Because the per-stage timers in ``experiments/stages.py`` are spans,
  this table *is* the Table 2-style per-stage timing report.
* a **span tree** — names aggregated along parent paths, so the report
  shows how time nests (``case > method > stage:align > tsp_solver``)
  without printing one line per procedure.
* a **counter table** — final totals, with unstable (per-process
  observational) counters marked.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from .events import load_trace, validate_event


def split_events(events: Iterable[dict]) -> tuple[list[dict], list[dict], list[dict]]:
    """Partition events into (meta, spans, counters)."""
    meta: list[dict] = []
    spans: list[dict] = []
    counters: list[dict] = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            spans.append(event)
        elif kind == "counter":
            counters.append(event)
        elif kind == "meta":
            meta.append(event)
    return meta, spans, counters


def span_rollup(spans: Sequence[dict]) -> list[tuple[str, int, float, float, float]]:
    """Aggregate spans by name: ``(name, count, total_ms, mean_ms, max_ms)``,
    sorted by total duration descending."""
    totals: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        totals[span["name"]].append(float(span.get("dur_ms", 0.0)))
    rollup = [
        (name, len(durs), sum(durs), sum(durs) / len(durs), max(durs))
        for name, durs in totals.items()
    ]
    rollup.sort(key=lambda row: (-row[2], row[0]))
    return rollup


def span_tree_rollup(spans: Sequence[dict]) -> list[tuple[str, int, float]]:
    """Aggregate spans by their *name path* from the root:
    ``(indented name, count, total_ms)`` rows in tree order.

    Spans arrive close-ordered (a parent's event is written after its
    children's), so paths are rebuilt from ``parent_id`` links.
    """
    by_id = {span["span_id"]: span for span in spans if "span_id" in span}

    def path_of(span: dict) -> tuple[str, ...]:
        names: list[str] = []
        current: dict | None = span
        seen = set()
        while current is not None and current.get("span_id") not in seen:
            seen.add(current.get("span_id"))
            names.append(current.get("name", "?"))
            parent = current.get("parent_id")
            current = by_id.get(parent) if parent else None
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], list[float]] = defaultdict(list)
    for span in spans:
        totals[path_of(span)].append(float(span.get("dur_ms", 0.0)))

    rows = []
    for path in sorted(totals):
        durs = totals[path]
        rows.append(("  " * (len(path) - 1) + path[-1], len(durs), sum(durs)))
    return rows


def counter_rollup(counters: Sequence[dict]) -> list[tuple[str, float, bool]]:
    """Merge counter events by name (a trace appended to across runs may
    carry several totals for one name)."""
    values: dict[str, float] = defaultdict(float)
    stable: dict[str, bool] = {}
    for event in counters:
        name = event.get("name", "?")
        values[name] += float(event.get("value", 0))
        stable[name] = stable.get(name, True) and bool(event.get("stable", True))
    return [(name, values[name], stable[name]) for name in sorted(values)]


def summarize_events(events: Sequence[dict]) -> str:
    # Local import: ``repro.experiments`` instruments itself with this
    # package, so pulling its report module in at import time would cycle.
    from repro.experiments.report import format_table

    meta, spans, counters = split_events(events)
    sections: list[str] = []

    label = next((m.get("label") for m in meta if m.get("label")), None)
    header = (
        f"trace: {len(spans)} span(s), {len(counters)} counter(s)"
        + (f", label: {label}" if label else "")
    )
    sections.append(header)

    if spans:
        sections.append(
            format_table(
                ["span", "count", "total_s", "mean_ms", "max_ms"],
                [
                    (name, count, round(total / 1000.0, 4), round(mean, 3), round(peak, 3))
                    for name, count, total, mean, peak in span_rollup(spans)
                ],
                title="Per-stage timing (span rollup)",
            )
        )
        sections.append(
            format_table(
                ["span tree", "count", "total_s"],
                [
                    (name, count, round(total / 1000.0, 4))
                    for name, count, total in span_tree_rollup(spans)
                ],
                title="Span tree",
            )
        )

    if counters:
        sections.append(
            format_table(
                ["counter", "value", "scope"],
                [
                    (
                        name,
                        int(value) if value == int(value) else value,
                        "stable" if is_stable else "per-process",
                    )
                    for name, value, is_stable in counter_rollup(counters)
                ],
                title="Counters",
            )
        )

    return "\n\n".join(sections)


def summarize_trace(path) -> str:
    """Load, schema-check, and render one JSONL trace file."""
    events = load_trace(path)
    problems = [p for event in events for p in validate_event(event)]
    if problems:
        raise ValueError(
            f"{path}: {len(problems)} schema problem(s); first: {problems[0]}"
        )
    return summarize_events(events)
