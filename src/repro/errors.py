"""Error taxonomy for the whole pipeline.

Production block-layout pipelines treat the optimizer as a best-effort
pass: a procedure that cannot be aligned within budget ships with a cheaper
layout and the run continues.  That policy needs errors the upper tiers can
*reason about* — "the solver ran out of budget" (degrade) is handled very
differently from "this profile does not describe this CFG" (reject the
input) or from a genuine ``KeyError`` (a bug; let it propagate with a
traceback).

Every intentional failure raised by this package derives from
:class:`ReproError`.  Catching ``ReproError`` at a tier boundary (the CLI,
the experiment runner, a degradation ladder) is therefore safe: it can
never mask an unrelated programming error.

Compatibility notes
-------------------
* :class:`UnknownNameError` also subclasses :class:`KeyError` and
  :class:`ValueError` so long-standing call sites (and tests) that caught
  those builtins for unknown model/effort/data-set names keep working.  It
  overrides ``KeyError.__str__`` (which quotes its argument) so messages
  print cleanly.
* :class:`VMRunawayError` must subclass the VM's ``VMError`` (itself a
  ``LangError``); it is defined in :mod:`repro.lang.vm` and re-exported
  here lazily to avoid an import cycle.
* ``ProfileError`` remains available in :mod:`repro.profiles.edge_profile`
  as an alias of :class:`ProfileMismatchError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the taxonomy: every intentional failure in this package."""


class UsageError(ReproError):
    """Bad command-line usage (malformed inputs, flag combinations).

    The CLI reports these with ``error: ...`` and exit status 2.
    """


class UnknownNameError(ReproError, KeyError, ValueError):
    """A lookup by user-supplied name failed (model, effort, benchmark,
    data set, alignment method)."""

    # KeyError.__str__ shows repr(args[0]) — "error: 'name'" told users
    # nothing.  Print the message verbatim instead.
    __str__ = Exception.__str__


class ProfileMismatchError(ReproError):
    """A profile is inconsistent with the CFG/program it claims to describe."""


class ProfileValidationError(ProfileMismatchError, ValueError):
    """A profile carries an edge frequency no training run could produce:
    negative, NaN, or otherwise non-finite.

    Raised while *loading* a profile, naming the offending edge, so bad
    input is rejected at the boundary instead of poisoning cost matrices
    downstream.  The CLI reports it with exit status 2 (bad input), the
    alignment service with a 400-equivalent response.  Subclasses
    ``ValueError`` for call sites that historically caught that for
    negative counts.
    """


class SolverBudgetExceeded(ReproError):
    """A solver hit its wall-clock or iteration budget.

    Raised at iteration boundaries; callers degrade to a cheaper rung.
    ``best_so_far`` optionally carries the best feasible tour found before
    the deadline so fallback rungs can reuse the work.
    """

    def __init__(
        self,
        message: str,
        *,
        where: str = "solver",
        elapsed_ms: float | None = None,
        iterations: int | None = None,
        best_so_far: list[int] | None = None,
    ):
        super().__init__(message)
        self.where = where
        self.elapsed_ms = elapsed_ms
        self.iterations = iterations
        self.best_so_far = best_so_far


class DegradationError(ReproError):
    """A fallback rung of the degradation ladder failed.

    Only the fault-injection harness raises this in practice; the ladder
    catches it and falls through to the next rung.
    """


class CheckpointCorruptError(ReproError):
    """A checkpoint line failed to parse or its checksum does not match."""

    def __init__(self, message: str, *, line_number: int | None = None):
        super().__init__(message)
        self.line_number = line_number


class WorkerCrashError(ReproError):
    """A worker process died mid-task (OOM, signal, ``BrokenProcessPool``).

    The supervised executor converts pool breakage into this error, retries
    the affected tasks, and rebuilds the pool — a crash costs one attempt,
    never the sweep.
    """


class TaskTimeoutError(ReproError):
    """A supervised task exceeded its per-task deadline.

    Distinct from :class:`SolverBudgetExceeded` (a *cooperative* deadline
    the solver checks itself): this is the executor's outer guard for tasks
    that stop responding entirely.
    """

    def __init__(self, message: str, *, timeout_ms: float | None = None):
        super().__init__(message)
        self.timeout_ms = timeout_ms


class PoisonTaskError(ReproError):
    """A task failed every attempt of its retry budget and was quarantined.

    Carries the final underlying failure; the executor records it in the
    quarantine report rather than raising, so callers only ever see this
    type through :func:`repro.pipeline.executor.run_tasks` (the strict,
    raise-on-failure wrapper).
    """

    def __init__(self, message: str, *, attempts: int = 1,
                 last_error: str | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ArtifactStoreError(ReproError):
    """The on-disk artifact store could not serve a request.

    Store failures are *never* fatal to a run — the store degrades to a
    cache miss — so this class mostly appears inside the store's own
    accounting and in strict-mode tests.
    """


class ArtifactIntegrityError(ArtifactStoreError):
    """A store entry failed its sha256 checksum (torn write, bit rot).

    The store evicts the entry and reports a miss; strict readers
    (tests) can observe the eviction counters instead of the exception.
    """


class ServiceError(ReproError):
    """Root of the alignment service's failure taxonomy.

    Every serving-layer rejection the HTTP tier maps to a status code
    derives from this class, so the service loop can absorb exactly the
    failures it is designed for without masking pipeline bugs.
    """


class ServiceOverloadError(ServiceError):
    """Admission control shed a request: the bounded queue was full.

    The 429-equivalent: the client should back off and retry.  Carries
    the queue depth the request was shed against so operators can tell
    "queue too small" from "traffic storm", and optionally the server's
    backoff hint (``retry_after_s``), which the HTTP tier emits as a
    ``Retry-After`` header.
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s


class DeadlineShedError(ServiceOverloadError):
    """Adaptive admission shed a request that could not meet its deadline.

    The queue-deadline-aware gate estimates how long a request would wait
    behind the current backlog; one whose deadline would expire *in the
    queue* is shed immediately with this typed 429 instead of being
    admitted only to time out downstream.  Subclasses
    :class:`ServiceOverloadError` so every existing 429 path (status
    mapping, client retries, accounting) applies unchanged.
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        retry_after_s: float | None = None,
        expected_wait_ms: float | None = None,
        deadline_ms: float | None = None,
    ):
        super().__init__(
            message, queue_depth=queue_depth, retry_after_s=retry_after_s
        )
        self.expected_wait_ms = expected_wait_ms
        self.deadline_ms = deadline_ms


class ServiceUnavailableError(ServiceError):
    """The service is draining (or stopped) and no longer admits work.

    The 503-equivalent: raised for requests arriving after SIGTERM began
    a graceful drain.  In-flight requests are unaffected.
    """


class ShardFailoverError(ServiceError):
    """The shard tier could not land a request on any live shard.

    Raised by the supervisor when a request's primary shard (and, where
    hedging applies, its sibling) stayed dead or unreachable through the
    failover budget.  Clients treat it like a 503: back off and retry.
    """


class LayoutVerificationError(ServiceError):
    """An emitted layout failed independent re-verification.

    The response verifier checks permutation validity, aligner-vs-
    evaluator cost agreement, and the Held–Karp floor before anything is
    served; a violation means a pipeline bug, so the response is
    quarantined — recorded, counted, never returned as a layout.
    """

    def __init__(self, message: str, *, violations: "list[str] | None" = None):
        super().__init__(message)
        self.violations = list(violations or [])


class JournalError(ServiceError):
    """The write-ahead request journal could not append a record.

    The journal absorbs this into degraded-durability mode (the server
    keeps serving, ``/readyz`` reports ``durability: off``) rather than
    letting a disk fault kill serving; the class exists so the fault
    harness and the journal speak a typed failure.
    """


class ServiceRetryExhaustedError(ServiceError):
    """A client retry policy gave up.

    The typed give-up of :class:`repro.service.client.RetryPolicy`:
    every attempt was answered with a retryable status (429/503) or a
    transport failure.  Carries the attempt count and the last outcome
    so callers can report *why* the request was abandoned.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: int = 0,
        last_status: "int | None" = None,
        last_error: "BaseException | None" = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_status = last_status
        self.last_error = last_error


def __getattr__(name: str):
    # Lazy re-export: VMRunawayError subclasses repro.lang.vm.VMError, and
    # vm.py imports this module, so an eager import here would cycle.
    if name == "VMRunawayError":
        from repro.lang.vm import VMRunawayError

        return VMRunawayError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactIntegrityError",
    "ArtifactStoreError",
    "CheckpointCorruptError",
    "DegradationError",
    "JournalError",
    "LayoutVerificationError",
    "PoisonTaskError",
    "ProfileMismatchError",
    "ProfileValidationError",
    "ReproError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceRetryExhaustedError",
    "ServiceUnavailableError",
    "SolverBudgetExceeded",
    "TaskTimeoutError",
    "UnknownNameError",
    "UsageError",
    "VMRunawayError",
    "WorkerCrashError",
]
