"""Execution traces.

A trace is the whole-program, interleaved sequence of basic-block executions:
``(procedure name, block id)`` events in execution order.  Traces feed two
consumers:

* :class:`~repro.profiles.edge_profile.ProgramProfile` — per-procedure edge
  frequencies (what the aligner trains on), and
* the machine simulators in :mod:`repro.machine` — pipeline penalty replay
  and instruction-cache simulation over the laid-out address stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass
class ExecutionTrace:
    """Block-granularity execution trace of one program run."""

    events: list[tuple[str, int]] = field(default_factory=list)

    def append(self, proc: str, block_id: int) -> None:
        self.events.append((proc, block_id))

    def extend(self, events: Iterable[tuple[str, int]]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self.events)

    def procedures(self) -> set[str]:
        return {proc for proc, _ in self.events}

    def per_procedure_transitions(self) -> dict[str, dict[tuple[int, int], int]]:
        """Count intra-procedural block transitions.

        Consecutive events within the *same procedure activation* form a
        transition.  The trace is flat, so activations are recovered with a
        shadow call stack: the VM emits ``CALL_MARK``/``RETURN_MARK``
        pseudo-events via :class:`TraceBuilder`; traces built without marks
        (e.g. single-procedure synthetic walks) simply count consecutive
        same-procedure pairs, which is exact when there are no calls.
        """
        counts: dict[str, dict[tuple[int, int], int]] = {}
        prev: tuple[str, int] | None = None
        for event in self.events:
            proc, block_id = event
            if prev is not None and prev[0] == proc:
                per_proc = counts.setdefault(proc, {})
                key = (prev[1], block_id)
                per_proc[key] = per_proc.get(key, 0) + 1
            prev = event
        return counts


class CompactTrace:
    """A memory-efficient, read-only view of an execution trace.

    Stores procedure indices and block ids in numpy arrays (~6 bytes/event
    instead of ~100 for a list of tuples) — the experiment runner keeps one
    of these per benchmark run for cache replay.
    """

    def __init__(self, trace: ExecutionTrace):
        procs: dict[str, int] = {}
        proc_indices = np.empty(len(trace), dtype=np.uint16)
        block_ids = np.empty(len(trace), dtype=np.uint32)
        for i, (proc, block_id) in enumerate(trace):
            index = procs.setdefault(proc, len(procs))
            proc_indices[i] = index
            block_ids[i] = block_id
        self._proc_names = list(procs)
        self._proc_indices = proc_indices
        self._block_ids = block_ids

    def __len__(self) -> int:
        return len(self._block_ids)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        names = self._proc_names
        for index, block_id in zip(
            self._proc_indices.tolist(), self._block_ids.tolist()
        ):
            yield names[index], block_id

    def procedures(self) -> set[str]:
        return set(self._proc_names)

    # Array views for vectorized consumers (the icache replay fast path).
    # Callers must not mutate them.

    @property
    def proc_names(self) -> list[str]:
        """Interned procedure names; index with :attr:`proc_indices`."""
        return self._proc_names

    @property
    def proc_indices(self) -> np.ndarray:
        """uint16 (events,) index into :attr:`proc_names` per event."""
        return self._proc_indices

    @property
    def block_ids(self) -> np.ndarray:
        """uint32 (events,) executed block id per event."""
        return self._block_ids


class TraceBuilder:
    """Builds an :class:`ExecutionTrace` plus *exact* per-procedure edge
    counts in the presence of calls, using a shadow call stack.

    The VM calls :meth:`enter` / :meth:`leave` around procedure activations
    and :meth:`visit` for each executed block.  Intra-procedural transitions
    are recorded between consecutive blocks of the same activation even when
    callee blocks execute in between.
    """

    def __init__(
        self,
        *,
        keep_events: bool = True,
        max_events: int | None = None,
        keep_transitions: bool = False,
    ):
        self.trace = ExecutionTrace()
        self._keep_events = keep_events
        self._max_events = max_events
        self._keep_transitions = keep_transitions
        self._stack: list[tuple[str, int | None]] = []
        #: proc -> (src, dst) -> count
        self.edge_counts: dict[str, dict[tuple[int, int], int]] = {}
        #: proc -> block -> count
        self.block_counts: dict[str, dict[int, int]] = {}
        #: proc -> ordered (src, dst) transitions; only with keep_transitions
        #: (feeds the dynamic branch-predictor replay, paper §6 future work).
        self.transition_log: dict[str, list[tuple[int, int]]] = {}
        #: proc -> number of activations (calls).
        self.activation_counts: dict[str, int] = {}
        #: (caller, callee) -> call count (the dynamic call graph, used by
        #: interprocedural procedure ordering).
        self.call_pair_counts: dict[tuple[str, str], int] = {}
        self.dropped_events = 0

    def enter(self, proc: str) -> None:
        if self._stack:
            caller = self._stack[-1][0]
            key = (caller, proc)
            self.call_pair_counts[key] = self.call_pair_counts.get(key, 0) + 1
        self._stack.append((proc, None))
        self.edge_counts.setdefault(proc, {})
        self.block_counts.setdefault(proc, {})
        self.activation_counts[proc] = self.activation_counts.get(proc, 0) + 1

    def visit(self, block_id: int) -> None:
        if not self._stack:
            raise RuntimeError("visit() outside any procedure activation")
        proc, prev_block = self._stack[-1]
        if prev_block is not None:
            edges = self.edge_counts[proc]
            key = (prev_block, block_id)
            edges[key] = edges.get(key, 0) + 1
            if self._keep_transitions:
                self.transition_log.setdefault(proc, []).append(key)
        blocks = self.block_counts[proc]
        blocks[block_id] = blocks.get(block_id, 0) + 1
        self._stack[-1] = (proc, block_id)
        if self._keep_events:
            if self._max_events is None or len(self.trace) < self._max_events:
                self.trace.append(proc, block_id)
            else:
                self.dropped_events += 1

    def leave(self) -> None:
        if not self._stack:
            raise RuntimeError("leave() without matching enter()")
        self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)
