"""Profiling substrate: traces, edge profiles, synthetic profile generation."""

from repro.profiles.edge_profile import (
    EdgeProfile,
    ProfileError,
    ProgramProfile,
    merge_profiles,
    profile_from_counts,
)
from repro.profiles.synthesize import (
    BiasAssignment,
    expected_profile,
    random_bias_assignment,
    synthesize_profile,
    walk_cfg,
)
from repro.profiles.static_estimate import (
    estimate_edge_profile,
    estimate_program_profile,
)
from repro.profiles.trace import CompactTrace, ExecutionTrace, TraceBuilder

__all__ = [
    "BiasAssignment",
    "CompactTrace",
    "EdgeProfile",
    "ExecutionTrace",
    "ProfileError",
    "ProgramProfile",
    "TraceBuilder",
    "estimate_edge_profile",
    "estimate_program_profile",
    "expected_profile",
    "merge_profiles",
    "profile_from_counts",
    "random_bias_assignment",
    "synthesize_profile",
    "walk_cfg",
]
