"""Static (profile-free) edge-weight estimation.

Profile-guided alignment needs a training run; when none is available,
compilers fall back to static heuristics in the Ball–Larus tradition.
This estimator assigns heuristic edge weights from CFG structure alone:

* loop back edges are hot — each loop level multiplies expected frequency
  by an assumed trip count,
* loop-exit edges get the leak probability,
* conditionals otherwise split near-evenly (with a slight taken bias),
* multiway targets split evenly across table slots,
* edges that lead straight to a RETURN are deprioritized (the "exit
  heuristic").

The result is a :class:`~repro.profiles.edge_profile.EdgeProfile` that can
feed any aligner, and the ablation bench measures how much of the
profile-guided benefit survives with estimated weights — a question the
paper motivates by stressing that "profile-based optimizations require
good profiles to be effective".
"""

from __future__ import annotations

from repro.cfg.analysis import loop_nesting_depth, natural_loops
from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Program
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile

#: Assumed iterations per loop level (Ball–Larus-style magic constant).
DEFAULT_TRIP_COUNT = 10.0
#: Mild bias toward the first (frontend "then") arm of a conditional.
THEN_BIAS = 0.55
#: Penalty multiplier for arms that immediately return.
EXIT_DISCOUNT = 0.25

_SCALE = 1000  # estimates are scaled to integers at this resolution


def estimate_edge_profile(
    cfg: ControlFlowGraph,
    *,
    entries: float = 1.0,
    trip_count: float = DEFAULT_TRIP_COUNT,
    max_passes: int = 200,
) -> EdgeProfile:
    """Heuristic edge counts for one procedure (scaled to integers)."""
    depth = loop_nesting_depth(cfg)
    loop_headers = {loop.header: loop for loop in natural_loops(cfg)}

    def branch_probabilities(block) -> dict[int, float]:
        term = block.terminator
        if term.kind is TerminatorKind.UNCONDITIONAL:
            return {term.targets[0]: 1.0}
        if term.kind is TerminatorKind.MULTIWAY:
            probabilities: dict[int, float] = {}
            share = 1.0 / len(term.targets)
            for target in term.targets:
                probabilities[target] = probabilities.get(target, 0.0) + share
            return probabilities
        # Conditional: loop heuristic first, then exit heuristic, then bias.
        true_target, false_target = term.targets
        if true_target == false_target:
            return {true_target: 1.0}
        block_depth = depth.get(block.block_id, 0)
        stay = 1.0 - 1.0 / max(trip_count, 2.0)
        scores = {}
        for target in (true_target, false_target):
            target_depth = depth.get(target, 0)
            if target_depth > block_depth:
                score = stay  # entering/continuing a loop
            elif target_depth < block_depth:
                score = 1.0 - stay  # leaving a loop
            else:
                score = THEN_BIAS if target == true_target else 1.0 - THEN_BIAS
            if cfg.block(target).kind is TerminatorKind.RETURN:
                score *= EXIT_DISCOUNT
            scores[target] = score
        # Back edge to a dominating header: continuing the loop, hot.
        for target in (true_target, false_target):
            if target in loop_headers and block.block_id in loop_headers[target].body:
                scores[target] = stay
                other = false_target if target == true_target else true_target
                scores[other] = 1.0 - stay
        total = sum(scores.values())
        return {t: s / total for t, s in scores.items()}

    # Propagate flow iteratively (loops converge because every cycle leaks).
    flow: dict[tuple[int, int], float] = {}
    pending = {cfg.entry: entries}
    for _ in range(max_passes):
        if not pending:
            break
        next_pending: dict[int, float] = {}
        for block_id, amount in pending.items():
            if amount < 1e-9:
                continue
            block = cfg.block(block_id)
            if block.kind is TerminatorKind.RETURN:
                continue
            for target, probability in branch_probabilities(block).items():
                if probability <= 0:
                    continue
                key = (block_id, target)
                flow[key] = flow.get(key, 0.0) + amount * probability
                next_pending[target] = (
                    next_pending.get(target, 0.0) + amount * probability
                )
        pending = next_pending

    profile = EdgeProfile()
    for (src, dst), amount in flow.items():
        count = int(round(amount * _SCALE))
        if count > 0:
            profile.add(src, dst, count)
    return profile


def estimate_program_profile(
    program: Program, *, trip_count: float = DEFAULT_TRIP_COUNT
) -> ProgramProfile:
    """Static profile for a whole program (every procedure entered once)."""
    profile = ProgramProfile()
    for proc in program:
        profile.procedures[proc.name] = estimate_edge_profile(
            proc.cfg, trip_count=trip_count
        )
        profile.call_counts[proc.name] = _SCALE
    return profile
