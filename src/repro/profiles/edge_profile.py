"""Edge-frequency profiles.

An :class:`EdgeProfile` holds, for one procedure, the execution count of each
CFG edge from a training run.  This is the sole dynamic input to branch
alignment (§2 of the paper: "Once the program input is fixed, the resulting
execution trace is fixed as well").
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Program
from repro.errors import ProfileMismatchError, ProfileValidationError

#: Historical name; the class now lives in the :mod:`repro.errors` taxonomy
#: so tier boundaries (CLI, experiment runner) can catch it as a ReproError.
ProfileError = ProfileMismatchError


def _validate_count(src, dst, n, *, procedure: str | None = None):
    """Reject counts no training run could produce — negative, NaN, or
    otherwise non-finite — naming the offending edge.  Returns ``n`` as an
    ``int`` (JSON hands us floats; ``int(nan)`` would raise a bare
    ``ValueError`` deep in a loader traceback instead)."""
    where = f"edge ({src},{dst})"
    if procedure is not None:
        where = f"procedure {procedure!r} {where}"
    if isinstance(n, float) and not math.isfinite(n):
        raise ProfileValidationError(
            f"{where}: frequency {n!r} is not finite"
        )
    try:
        value = int(n)
    except (TypeError, ValueError) as exc:
        raise ProfileValidationError(
            f"{where}: frequency {n!r} is not a number"
        ) from exc
    if value < 0:
        raise ProfileValidationError(
            f"{where}: frequency {value} is negative"
        )
    return value


@dataclass
class EdgeProfile:
    """Per-procedure edge execution counts."""

    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def count(self, src: int, dst: int) -> int:
        return self.counts.get((src, dst), 0)

    def add(self, src: int, dst: int, n: int = 1) -> None:
        n = _validate_count(src, dst, n)
        key = (src, dst)
        self.counts[key] = self.counts.get(key, 0) + n

    def out_counts(self, src: int) -> dict[int, int]:
        """Counts of every profiled edge leaving ``src``."""
        return {
            dst: n for (s, dst), n in self.counts.items() if s == src and n > 0
        }

    def block_entry_count(self, block_id: int, entry: int | None = None) -> int:
        """Times ``block_id`` was entered via CFG edges (plus procedure calls
        when it is the entry block — only derivable with block counts; here
        we return in-edge flow only)."""
        return sum(n for (_, dst), n in self.counts.items() if dst == block_id)

    def block_exit_count(self, block_id: int) -> int:
        return sum(n for (src, _), n in self.counts.items() if src == block_id)

    def total(self) -> int:
        return sum(self.counts.values())

    def scaled(self, factor: float) -> "EdgeProfile":
        """A copy with all counts scaled and rounded (used by tests)."""
        return EdgeProfile(
            {k: int(round(v * factor)) for k, v in self.counts.items()}
        )

    def most_frequent_successor(self, src: int) -> int | None:
        """The statically predicted successor of ``src``: the CFG successor
        with the highest training count (ties broken by smaller block id, so
        prediction is deterministic).  ``None`` when ``src`` never executed.
        """
        outs = self.out_counts(src)
        if not outs:
            return None
        return min(outs, key=lambda dst: (-outs[dst], dst))

    def check_against(self, cfg: ControlFlowGraph) -> None:
        """Raise :class:`ProfileError` if any profiled edge is not a CFG edge."""
        for (src, dst), n in self.counts.items():
            if n == 0:
                continue
            if src not in cfg or dst not in cfg:
                raise ProfileError(f"profiled edge ({src},{dst}) has unknown block")
            if dst not in cfg.successors(src):
                raise ProfileError(
                    f"profiled edge ({src},{dst}) is not a CFG edge"
                )


@dataclass
class ProgramProfile:
    """Whole-program profile: one :class:`EdgeProfile` per procedure, plus
    procedure call counts (how many times each procedure was entered)."""

    procedures: dict[str, EdgeProfile] = field(default_factory=dict)
    call_counts: dict[str, int] = field(default_factory=dict)
    #: Dynamic call graph: (caller, callee) -> call count.
    call_pairs: dict[tuple[str, str], int] = field(default_factory=dict)

    def profile(self, proc: str) -> EdgeProfile:
        return self.procedures.setdefault(proc, EdgeProfile())

    def __getitem__(self, proc: str) -> EdgeProfile:
        return self.procedures[proc]

    def __contains__(self, proc: str) -> bool:
        return proc in self.procedures

    def check_against(self, program: Program) -> None:
        for name, profile in self.procedures.items():
            if name not in program:
                raise ProfileError(f"profiled procedure {name!r} not in program")
            try:
                profile.check_against(program[name].cfg)
            except ProfileError as exc:
                raise ProfileError(f"procedure {name!r}: {exc}") from exc

    # -- paper statistics ---------------------------------------------------

    def branch_sites_touched(self, program: Program) -> int:
        """Table 1's "Branch Sites Touched": conditional/multiway blocks
        executed at least once under this profile."""
        touched = 0
        for proc in program:
            profile = self.procedures.get(proc.name)
            if profile is None:
                continue
            for block_id in proc.branch_sites():
                if profile.block_exit_count(block_id) > 0:
                    touched += 1
        return touched

    def executed_branches(self, program: Program) -> int:
        """Table 1's "Executed Branch Instructions": dynamic executions of
        conditional/multiway terminators."""
        total = 0
        for proc in program:
            profile = self.procedures.get(proc.name)
            if profile is None:
                continue
            cfg = proc.cfg
            for block in cfg:
                if block.kind in (
                    TerminatorKind.CONDITIONAL,
                    TerminatorKind.MULTIWAY,
                ):
                    total += profile.block_exit_count(block.block_id)
        return total

    # -- serialization --------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "call_counts": self.call_counts,
            "call_pairs": [
                [caller, callee, n]
                for (caller, callee), n in sorted(self.call_pairs.items())
            ],
            "procedures": {
                name: [[src, dst, n] for (src, dst), n in sorted(p.counts.items())]
                for name, p in self.procedures.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgramProfile":
        payload = json.loads(text)
        profile = cls(call_counts=dict(payload.get("call_counts", {})))
        for caller, callee, n in payload.get("call_pairs", []):
            profile.call_pairs[(caller, callee)] = int(n)
        for name, triples in payload.get("procedures", {}).items():
            edge_profile = profile.profile(name)
            for src, dst, n in triples:
                # Validate before int(): json.loads accepts NaN/Infinity
                # literals, and int(nan) raises a bare ValueError with no
                # hint of which edge was bad.
                n = _validate_count(src, dst, n, procedure=name)
                edge_profile.add(int(src), int(dst), n)
        return profile


def merge_profiles(profiles: Iterable[ProgramProfile]) -> ProgramProfile:
    """Sum several profiles (e.g. multiple training inputs)."""
    merged = ProgramProfile()
    for profile in profiles:
        for name, edge_profile in profile.procedures.items():
            target = merged.profile(name)
            for (src, dst), n in edge_profile.counts.items():
                target.add(src, dst, n)
        for name, n in profile.call_counts.items():
            merged.call_counts[name] = merged.call_counts.get(name, 0) + n
    return merged


def profile_from_counts(
    counts: Mapping[str, Mapping[tuple[int, int], int]],
    call_counts: Mapping[str, int] | None = None,
) -> ProgramProfile:
    """Build a :class:`ProgramProfile` from nested dicts (test convenience)."""
    profile = ProgramProfile(call_counts=dict(call_counts or {}))
    for name, edges in counts.items():
        edge_profile = profile.profile(name)
        for (src, dst), n in edges.items():
            edge_profile.add(src, dst, n)
    return profile
