"""Synthetic profile generation: Markov random walks over a CFG.

The synthetic workloads (the scale/stress side of the suite) attach a branch
*bias assignment* to each data set — probabilities for every conditional and
multiway decision — and generate traces by walking the CFG.  Different data
sets for the same benchmark use different bias assignments, which is exactly
what makes cross-validation (Figure 3) meaningful: the CFG is shared, the
edge frequencies are not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Procedure, Program
from repro.profiles.edge_profile import ProgramProfile
from repro.profiles.trace import TraceBuilder


@dataclass
class BiasAssignment:
    """Branch probabilities for one procedure.

    ``probabilities[block_id]`` is the distribution over the block's
    terminator *targets* (by slot, matching ``Terminator.targets`` order).
    Missing blocks default to uniform.
    """

    probabilities: dict[int, tuple[float, ...]] = field(default_factory=dict)

    def distribution(self, cfg: ControlFlowGraph, block_id: int) -> tuple[float, ...]:
        targets = cfg.block(block_id).terminator.targets
        probs = self.probabilities.get(block_id)
        if probs is None:
            return tuple(1.0 / len(targets) for _ in targets)
        if len(probs) != len(targets):
            raise ValueError(
                f"block {block_id}: {len(probs)} probabilities for "
                f"{len(targets)} targets"
            )
        total = sum(probs)
        if total <= 0:
            raise ValueError(f"block {block_id}: non-positive distribution")
        return tuple(p / total for p in probs)


def random_bias_assignment(
    cfg: ControlFlowGraph,
    rng: random.Random,
    *,
    skew: float = 0.85,
    jitter: float = 0.10,
) -> BiasAssignment:
    """Assign realistic biased probabilities to every decision block.

    Real branches are heavily biased (the premise of static prediction): each
    conditional gets probability ``skew ± jitter`` on a random arm; multiway
    blocks get a geometric-ish decay over a random permutation of slots.
    """
    assignment = BiasAssignment()
    for block in cfg:
        targets = block.terminator.targets
        if block.kind is TerminatorKind.CONDITIONAL:
            p = min(0.99, max(0.5, rng.gauss(skew, jitter)))
            hot = rng.randrange(2)
            probs = [1.0 - p, 1.0 - p]
            probs[hot] = p
            assignment.probabilities[block.block_id] = (probs[0], probs[1])
        elif block.kind is TerminatorKind.MULTIWAY and len(targets) > 1:
            slots = list(range(len(targets)))
            rng.shuffle(slots)
            weight = 1.0
            probs = [0.0] * len(targets)
            for slot in slots:
                probs[slot] = weight * rng.uniform(0.5, 1.5)
                weight *= rng.uniform(0.25, 0.6)
            assignment.probabilities[block.block_id] = tuple(probs)
    return assignment


def walk_cfg(
    cfg: ControlFlowGraph,
    bias: BiasAssignment,
    rng: random.Random,
    *,
    max_steps: int,
) -> list[int]:
    """One random walk from entry to a RETURN block (or ``max_steps``)."""
    path = [cfg.entry]
    block_id = cfg.entry
    for _ in range(max_steps):
        block = cfg.block(block_id)
        if block.kind is TerminatorKind.RETURN:
            break
        targets = block.terminator.targets
        if len(targets) == 1:
            block_id = targets[0]
        else:
            probs = bias.distribution(cfg, block_id)
            block_id = rng.choices(targets, weights=probs, k=1)[0]
        path.append(block_id)
    return path


def synthesize_profile(
    program: Program,
    biases: dict[str, BiasAssignment],
    *,
    seed: int,
    walks_per_procedure: int = 20,
    max_steps: int = 20_000,
    trace_builder: TraceBuilder | None = None,
) -> ProgramProfile:
    """Generate a program profile by random walks over every procedure.

    Walks are independent per procedure (synthetic programs have no real
    call semantics); ``trace_builder`` optionally captures the concatenated
    block trace for the machine simulators.
    """
    rng = random.Random(seed)
    profile = ProgramProfile()
    for proc in program:
        bias = biases.get(proc.name, BiasAssignment())
        edge_profile = profile.profile(proc.name)
        profile.call_counts[proc.name] = walks_per_procedure
        for _ in range(walks_per_procedure):
            path = walk_cfg(proc.cfg, bias, rng, max_steps=max_steps)
            if trace_builder is not None:
                trace_builder.enter(proc.name)
            prev = None
            for block_id in path:
                if trace_builder is not None:
                    trace_builder.visit(block_id)
                if prev is not None:
                    edge_profile.add(prev, block_id)
                prev = block_id
            if trace_builder is not None:
                trace_builder.leave()
    return profile


def expected_profile(
    proc: Procedure,
    bias: BiasAssignment,
    *,
    entries: float = 1.0,
    max_iterations: int = 10_000,
    tolerance: float = 1e-9,
) -> dict[tuple[int, int], float]:
    """Closed-form expected edge frequencies of the Markov walk.

    Solves the flow equations iteratively: entry receives ``entries`` units
    of flow; every block forwards its in-flow along its out-distribution.
    Useful for deterministic tests of the synthetic machinery (the empirical
    walk counts converge to these values).
    """
    cfg = proc.cfg
    flow = {block_id: 0.0 for block_id in cfg.block_ids}
    flow[cfg.entry] = entries
    edge_flow: dict[tuple[int, int], float] = {}
    # Iterate to a fixed point; loops converge geometrically because every
    # cycle leaks probability toward an exit (validated CFGs can always exit).
    pending = {cfg.entry: entries}
    for _ in range(max_iterations):
        if not pending:
            break
        next_pending: dict[int, float] = {}
        for block_id, amount in pending.items():
            if amount < tolerance:
                continue
            block = cfg.block(block_id)
            if block.kind is TerminatorKind.RETURN:
                continue
            targets = block.terminator.targets
            probs = (
                (1.0,) if len(targets) == 1 else bias.distribution(cfg, block_id)
            )
            for target, p in zip(targets, probs):
                if p <= 0:
                    continue
                key = (block_id, target)
                edge_flow[key] = edge_flow.get(key, 0.0) + amount * p
                next_pending[target] = next_pending.get(target, 0.0) + amount * p
        pending = next_pending
    return edge_flow
