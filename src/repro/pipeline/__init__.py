"""The staged alignment pipeline.

Decomposes program alignment into typed stages with explicit intermediate
artifacts (see :mod:`repro.pipeline.stages` for the stage graph and
``docs/architecture.md`` for the design):

* :mod:`repro.pipeline.task` — typed work units (:class:`ProcedureTask`,
  :class:`ProcedureResult`, :class:`BoundTask`, :class:`BoundResult`).
* :mod:`repro.pipeline.registry` — the aligner registry;
  ``ALIGN_METHODS`` is a live view over it.
* :mod:`repro.pipeline.artifacts` — the content-addressed artifact cache.
* :mod:`repro.pipeline.executor` — per-procedure parallel execution with a
  serial fallback (``jobs=`` / ``REPRO_JOBS``).
* :mod:`repro.pipeline.stages` — the stages themselves: cost-matrix,
  align, evaluate, and lower-bound.
"""

from repro.pipeline.artifacts import (
    ArtifactCache,
    CacheStats,
    artifact_cache,
    reset_artifact_cache,
)
from repro.pipeline.executor import (
    JOBS_ENV,
    register_handler,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)
from repro.pipeline.registry import (
    AlignerSpec,
    MethodsView,
    aligner_names,
    get_aligner,
    normalize_method,
    register_aligner,
    unregister_aligner,
)
from repro.pipeline.stages import (
    align_one,
    align_procedures,
    bound_one,
    evaluate_procedures,
    instance_for,
    lower_bound_procedures,
    run_align_tasks,
    run_bound_tasks,
)
from repro.pipeline.task import (
    BoundResult,
    BoundTask,
    ProcedureResult,
    ProcedureTask,
    procedure_tasks,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "artifact_cache",
    "reset_artifact_cache",
    "JOBS_ENV",
    "register_handler",
    "resolve_jobs",
    "run_tasks",
    "shutdown_pool",
    "AlignerSpec",
    "MethodsView",
    "aligner_names",
    "get_aligner",
    "normalize_method",
    "register_aligner",
    "unregister_aligner",
    "align_one",
    "align_procedures",
    "bound_one",
    "evaluate_procedures",
    "instance_for",
    "lower_bound_procedures",
    "run_align_tasks",
    "run_bound_tasks",
    "BoundResult",
    "BoundTask",
    "ProcedureResult",
    "ProcedureTask",
    "procedure_tasks",
]
