"""The staged alignment pipeline.

Decomposes program alignment into typed stages with explicit intermediate
artifacts (see :mod:`repro.pipeline.stages` for the stage graph and
``docs/architecture.md`` for the design):

* :mod:`repro.pipeline.task` — typed work units (:class:`ProcedureTask`,
  :class:`ProcedureResult`, :class:`BoundTask`, :class:`BoundResult`).
* :mod:`repro.pipeline.registry` — the aligner registry;
  ``ALIGN_METHODS`` is a live view over it.
* :mod:`repro.pipeline.artifacts` — the content-addressed artifact cache
  (in-memory tier plus the on-disk :class:`ArtifactStore`, ``--store`` /
  ``REPRO_STORE``).
* :mod:`repro.pipeline.executor` — supervised per-procedure parallel
  execution with a serial fallback (``jobs=`` / ``REPRO_JOBS``): worker
  crashes and task timeouts are detected, retried under a
  :class:`~repro.budget.RetryPolicy`, and poison tasks are quarantined.
* :mod:`repro.pipeline.stages` — the stages themselves: cost-matrix,
  align, evaluate, and lower-bound.
"""

from repro.pipeline.artifacts import (
    STORE_ENV,
    ArtifactCache,
    ArtifactStore,
    CacheStats,
    StoreStats,
    artifact_cache,
    default_store,
    reset_artifact_cache,
    reset_default_store,
    resolve_store_path,
    set_default_store,
)
from repro.pipeline.executor import (
    JOBS_ENV,
    RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    SupervisionReport,
    TaskOutcome,
    register_handler,
    resolve_jobs,
    resolve_policy,
    run_tasks,
    run_tasks_supervised,
    shutdown_pool,
)
from repro.pipeline.registry import (
    AlignerSpec,
    MethodsView,
    aligner_names,
    get_aligner,
    normalize_method,
    register_aligner,
    unregister_aligner,
)
from repro.pipeline.stages import (
    align_one,
    align_procedures,
    bound_one,
    evaluate_procedures,
    instance_for,
    lower_bound_procedures,
    run_align_tasks,
    run_bound_tasks,
)
from repro.pipeline.task import (
    BoundResult,
    BoundTask,
    ProcedureResult,
    ProcedureTask,
    derive_seed,
    procedure_tasks,
)

__all__ = [
    "ArtifactCache",
    "ArtifactStore",
    "CacheStats",
    "StoreStats",
    "STORE_ENV",
    "artifact_cache",
    "default_store",
    "reset_artifact_cache",
    "reset_default_store",
    "resolve_store_path",
    "set_default_store",
    "JOBS_ENV",
    "RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "SupervisionReport",
    "TaskOutcome",
    "register_handler",
    "resolve_jobs",
    "resolve_policy",
    "run_tasks",
    "run_tasks_supervised",
    "shutdown_pool",
    "AlignerSpec",
    "MethodsView",
    "aligner_names",
    "get_aligner",
    "normalize_method",
    "register_aligner",
    "unregister_aligner",
    "align_one",
    "align_procedures",
    "bound_one",
    "evaluate_procedures",
    "instance_for",
    "lower_bound_procedures",
    "run_align_tasks",
    "run_bound_tasks",
    "BoundResult",
    "BoundTask",
    "ProcedureResult",
    "ProcedureTask",
    "derive_seed",
    "procedure_tasks",
]
