"""The staged alignment pipeline.

Decomposes ``align_program``'s historical monolithic loop into explicit,
individually cacheable stages with typed intermediate artifacts::

    ProcedureTask ──▶ AlignmentInstance ──▶ solved tour ──▶ Layout ──▶ penalty
       (task.py)        (cost-matrix           (align           (evaluate
                         stage, cached)         stage,            stage)
                                                cached,
                                                parallel)

* The **cost-matrix stage** (:func:`instance_for`) builds the §2.2 DTSP
  instance, content-addressed by (CFG, profile, model, predictor) — so
  greedy/tsp/lower-bound passes over the same procedure share one matrix.
* The **align stage** (:func:`align_procedures`) dispatches each task to
  its registered aligner, fanning out over worker processes
  (:mod:`repro.pipeline.executor`) and serving repeated tasks from the
  artifact cache.  Results merge in program order, so layouts, reports,
  checkpoints, and tables are identical for any worker count.
* The **evaluate stage** (:func:`evaluate_procedures`) is the single
  penalty-evaluation code path — ``evaluate_program`` delegates here, and
  the DTSP tour cost of an instance provably equals this stage's control
  penalty for the materialized layout (pinned by
  ``tests/properties/test_property_pipeline.py``).
* The **bound stage** (:func:`lower_bound_procedures`) computes certified
  per-procedure Held–Karp/branch-and-bound floors, cached and parallel.

Budgets stay per-procedure (each task starts its own countdown, exactly as
the serial loop did), the degradation ladder lives untouched inside the
aligners, and fault-injection plans are shipped to workers by the executor.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro import obs
from repro.budget import Budget, RetryPolicy
from repro.cfg.graph import Program
from repro.core.aligners.tsp_aligner import alignment_lower_bound
from repro.core.costmatrix import AlignmentInstance, build_alignment_instance
from repro.core.exttsp import DEFAULT_PARAMS
from repro.core.layout import ProgramLayout, original_layout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.pipeline.artifacts import (
    ArtifactCache,
    artifact_cache,
    fingerprint_budget,
    fingerprint_cfg,
    fingerprint_effort,
    fingerprint_model,
    fingerprint_predictor,
    fingerprint_profile,
)
from repro.pipeline.executor import (
    SupervisionReport,
    register_handler,
    run_tasks_supervised,
)
from repro.pipeline.registry import get_aligner
from repro.pipeline.task import (
    BoundResult,
    BoundTask,
    ProcedureResult,
    ProcedureTask,
    procedure_tasks,
)
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile
from repro.tsp.solve import DEFAULT, Effort, get_effort

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.core.evaluate import ProgramPenalty


# -- cost-matrix stage --------------------------------------------------------


def instance_key(
    cfg, profile: EdgeProfile, model: PenaltyModel,
    predictor: StaticPredictor | None,
) -> str:
    return ArtifactCache.key(
        "instance",
        fingerprint_cfg(cfg),
        fingerprint_profile(profile),
        fingerprint_model(model),
        fingerprint_predictor(predictor),
    )


def instance_for(
    cfg,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
    cache: ArtifactCache | None = None,
) -> AlignmentInstance:
    """The DTSP instance for one procedure, served content-addressed.

    The key covers everything the matrix depends on — effort, seed, and
    budget deliberately excluded — so every method and every sweep over the
    same (CFG, profile, model, predictor) shares a single build.
    """
    cache = cache if cache is not None else artifact_cache()
    return cache.get_or_build(
        instance_key(cfg, profile, model, predictor),
        lambda: build_alignment_instance(
            cfg, profile, model, predictor=predictor
        ),
    )


# -- align stage --------------------------------------------------------------


def align_one(task: ProcedureTask) -> ProcedureResult:
    """Run one task through its registered aligner (no caching: pure compute;
    this is the function worker processes execute)."""
    if task.method != "original" and task.profile.total() == 0:
        # No training data: every method keeps the original layout (the
        # historical align_program behaviour).  An empty profile scores
        # zero under the Ext-TSP objective by definition.
        return ProcedureResult(
            task.name, original_layout(task.cfg), exttsp_score=0.0
        )
    return get_aligner(task.method).fn(task)


register_handler("align", align_one)


def _is_trivial(task: ProcedureTask) -> bool:
    return task.method == "original" or task.profile.total() == 0


def align_key(task: ProcedureTask) -> str:
    # Every align artifact now carries dual pricing (penalty + Ext-TSP
    # score), so the key covers the Ext-TSP scoring parameters: changing a
    # weight or window must miss, not serve a stale score — and for the
    # exttsp-family aligners the parameters also shape the layout itself.
    return ArtifactCache.key(
        "align",
        task.method,
        fingerprint_cfg(task.cfg),
        fingerprint_profile(task.profile),
        fingerprint_model(task.model),
        fingerprint_predictor(task.predictor),
        fingerprint_effort(task.effort),
        task.effective_seed,
        fingerprint_budget(task.budget),
        DEFAULT_PARAMS.fingerprint(),
    )


def quarantined_result(task: ProcedureTask, error: str | None) -> ProcedureResult:
    """The degraded stand-in for a poisoned align task: the procedure keeps
    its identity layout (always valid, never worse than the original under
    the evaluation contract) and the failure is carried as a warning."""
    return ProcedureResult(
        name=task.name,
        layout=original_layout(task.cfg),
        degraded="quarantined",
        warning=error or "task quarantined",
        quarantined=True,
    )


def run_align_tasks(
    tasks: list[ProcedureTask],
    *,
    jobs: int | None = None,
    cache: ArtifactCache | None = None,
    policy: RetryPolicy | None = None,
    supervision: SupervisionReport | None = None,
) -> list[ProcedureResult]:
    """The align stage: cache lookup → supervised parallel solve of misses
    → store.

    Returns one :class:`ProcedureResult` per task, in task order.  Trivial
    tasks (method ``original`` or an empty profile slice) resolve inline;
    cache misses fan out through the supervised executor under ``policy``
    (retry/backoff/quarantine — see :mod:`repro.pipeline.executor`).  A
    task that exhausts its retry budget yields its *identity* layout,
    flagged ``quarantined``, instead of sinking the batch.  Pass a
    :class:`SupervisionReport` as ``supervision`` to observe retry and
    quarantine accounting.
    """
    cache = cache if cache is not None else artifact_cache()
    results: list[ProcedureResult | None] = [None] * len(tasks)
    miss_indices: list[int] = []
    with obs.span("stage:align", tasks=len(tasks)) as sp:
        for i, task in enumerate(tasks):
            if _is_trivial(task):
                results[i] = align_one(task)
                continue
            cached = cache.get(align_key(task))
            if cached is not None:
                results[i] = dataclasses.replace(cached, from_cache=True)
            else:
                miss_indices.append(i)
        # Stage-level hit/miss totals come from this parent-side scan, so
        # (unlike the per-process cache.* counters) they are worker-count
        # invariant.
        hits = sum(
            1 for r in results if r is not None and r.from_cache
        )
        sp["hits"] = hits
        sp["misses"] = len(miss_indices)
        obs.count("align.cache_hits", hits)
        obs.count("align.cache_misses", len(miss_indices))

        if miss_indices:
            report = run_tasks_supervised(
                "align", [tasks[i] for i in miss_indices], jobs=jobs,
                policy=policy,
            )
            if supervision is not None:
                supervision.merge_from(report)
            for i, outcome in zip(miss_indices, report.outcomes):
                if outcome.quarantined:
                    # Poison task: keep the procedure with its original
                    # order; deliberately NOT cached — a later run with a
                    # healthier environment should get a real solve.
                    results[i] = quarantined_result(tasks[i], outcome.error)
                    continue
                result = outcome.result
                results[i] = result
                cache.put(align_key(tasks[i]), result)
                if result.instance is not None:
                    # Seed the cost-matrix cache from the worker's build so
                    # the bound stage (and other methods) reuse it.
                    task = tasks[i]
                    cache.put(
                        instance_key(
                            task.cfg, task.profile, task.model, task.predictor
                        ),
                        result.instance,
                    )
    return results  # type: ignore[return-value]


def align_procedures(
    program: Program,
    profile: ProgramProfile,
    *,
    method: str,
    model: PenaltyModel,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    jobs: int | None = None,
    cache: ArtifactCache | None = None,
    policy: RetryPolicy | None = None,
    report=None,
) -> ProgramLayout:
    """Align every procedure of ``program``: the full task → solve → layout
    pipeline behind :func:`repro.core.align.align_program`.

    ``report`` (an :class:`~repro.core.align.AlignmentReport`-shaped object)
    is populated from solver diagnostics in program order, keeping its
    contents deterministic and independent of worker count; it also
    receives retry/quarantine accounting from the supervised executor.
    """
    tasks = procedure_tasks(
        program,
        profile,
        method=method,
        model=model,
        effort=get_effort(effort),
        seed=seed,
        budget=budget,
    )
    supervision = SupervisionReport()
    results = run_align_tasks(
        tasks, jobs=jobs, cache=cache, policy=policy, supervision=supervision
    )
    layouts = ProgramLayout()
    for result in results:
        layouts[result.name] = result.layout
        if report is None:
            continue
        if result.quarantined and hasattr(report, "quarantined"):
            report.quarantined[result.name] = result.warning or "quarantined"
            report.warnings.append(
                f"{result.name}: quarantined after repeated failures, "
                f"kept identity layout ({result.warning})"
            )
            continue
        if result.exttsp_score is not None and hasattr(report, "exttsp_scores"):
            report.exttsp_scores[result.name] = result.exttsp_score
        if result.cities is not None:
            report.cities[result.name] = result.cities
            report.costs[result.name] = result.cost
            report.runs_finding_best[result.name] = (
                result.runs_finding_best,
                result.runs_total,
            )
            if result.degraded != "none":
                report.degraded[result.name] = result.degraded
                if result.warning:
                    report.warnings.append(
                        f"{result.name}: degraded to "
                        f"{result.degraded!r} ({result.warning})"
                    )
    if report is not None and hasattr(report, "retried"):
        report.retried += supervision.retried
    if report is not None and hasattr(report, "worker_crashes"):
        report.worker_crashes += supervision.worker_crashes
    if report is not None and hasattr(report, "timeouts"):
        report.timeouts += supervision.timeouts
    return layouts


# -- evaluate stage -----------------------------------------------------------


def evaluate_procedures(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    model: PenaltyModel,
    *,
    predictors: dict[str, StaticPredictor] | None = None,
) -> "ProgramPenalty":
    """The single penalty-evaluation code path.

    ``evaluate_program`` delegates here; per-procedure breakdowns are
    computed by :func:`repro.core.evaluate.evaluate_layout` (the walk the
    §2.2 matrix is built from) and merged in program order, so totals are
    bit-stable.  Evaluation stays in-process: it is a cheap linear walk,
    and shipping CFGs to workers would cost more than the walk itself.
    """
    from repro.core.evaluate import (  # local: import cycle
        CostBreakdown,
        ProgramPenalty,
        evaluate_layout,
        train_predictors,
    )

    with obs.span("stage:evaluate", procs=len(program.procedures)):
        if predictors is None:
            predictors = train_predictors(program, profile)
        result = ProgramPenalty()
        for proc in program:
            edge_profile = profile.procedures.get(proc.name)
            if edge_profile is None:
                result.per_procedure[proc.name] = CostBreakdown()
                continue
            result.per_procedure[proc.name] = evaluate_layout(
                proc.cfg,
                layouts[proc.name],
                edge_profile,
                model,
                predictor=predictors[proc.name],
            )
        return result


# -- bound stage --------------------------------------------------------------


def bound_one(task: BoundTask) -> BoundResult:
    """Certified lower bound for one procedure (worker-executable)."""
    if task.profile.total() == 0:
        return BoundResult(task.name, 0.0)
    return BoundResult(
        task.name,
        alignment_lower_bound(
            task.cfg,
            task.profile,
            task.model,
            instance=task.instance,
            upper_bound=task.upper_bound,
            iterations=task.iterations,
            budget=task.budget,
        ),
    )


register_handler("bound", bound_one)


def bound_key(task: BoundTask) -> str:
    # ``upper_bound`` is deliberately NOT part of the key: it only tightens
    # the subgradient schedule (a warm-start hint), and any certified floor
    # is valid for the (cfg, profile, model) instance regardless of which
    # hint produced it.  Keying on it split identical artifacts — an
    # align-then-bound run (hint = tour cost) could never hit the entry a
    # bound-only run (hint = None) had written, pinning the bound stage's
    # cross-run hit rate at zero.
    return ArtifactCache.key(
        "bound",
        fingerprint_cfg(task.cfg),
        fingerprint_profile(task.profile),
        fingerprint_model(task.model),
        repr(task.iterations),
        fingerprint_budget(task.budget),
    )


def run_bound_tasks(
    tasks: list[BoundTask],
    *,
    jobs: int | None = None,
    cache: ArtifactCache | None = None,
    policy: RetryPolicy | None = None,
    supervision: SupervisionReport | None = None,
) -> list[BoundResult]:
    """The bound stage: cache lookup → supervised parallel certification of
    misses.  A poisoned bound task degrades to 0.0 — the loosest certified
    bound — so program totals stay well-defined (and conservative)."""
    cache = cache if cache is not None else artifact_cache()
    results: list[BoundResult | None] = [None] * len(tasks)
    miss_indices: list[int] = []
    with obs.span("stage:bound", tasks=len(tasks)) as sp:
        for i, task in enumerate(tasks):
            if task.profile.total() == 0:
                results[i] = BoundResult(task.name, 0.0)
                continue
            cached = cache.get(bound_key(task))
            if cached is not None:
                results[i] = dataclasses.replace(cached, from_cache=True)
            else:
                miss_indices.append(i)
        hits = sum(1 for r in results if r is not None and r.from_cache)
        sp["hits"] = hits
        sp["misses"] = len(miss_indices)
        obs.count("bound.cache_hits", hits)
        obs.count("bound.cache_misses", len(miss_indices))
        if miss_indices:
            report = run_tasks_supervised(
                "bound", [tasks[i] for i in miss_indices], jobs=jobs,
                policy=policy,
            )
            if supervision is not None:
                supervision.merge_from(report)
            for i, outcome in zip(miss_indices, report.outcomes):
                if outcome.quarantined:
                    results[i] = BoundResult(
                        tasks[i].name, 0.0, quarantined=True
                    )
                    continue
                results[i] = outcome.result
                cache.put(bound_key(tasks[i]), outcome.result)
    return results  # type: ignore[return-value]


def lower_bound_procedures(
    program: Program,
    profile: ProgramProfile,
    *,
    model: PenaltyModel,
    iterations: int | None = None,
    upper_bounds: dict[str, float] | None = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    cache: ArtifactCache | None = None,
    policy: RetryPolicy | None = None,
) -> dict[str, float]:
    """Per-procedure certified lower bounds, in program order."""
    tasks = []
    for index, proc in enumerate(program):
        edge_profile = profile.procedures.get(proc.name, EdgeProfile())
        tasks.append(BoundTask(
            name=proc.name,
            cfg=proc.cfg,
            profile=edge_profile,
            model=model,
            index=index,
            upper_bound=(upper_bounds or {}).get(proc.name),
            iterations=iterations,
            budget=budget,
            instance=(
                cache_lookup_instance(proc.cfg, edge_profile, model, cache)
                if edge_profile.total() else None
            ),
        ))
    results = run_bound_tasks(tasks, jobs=jobs, cache=cache, policy=policy)
    return {result.name: result.bound for result in results}


def cache_lookup_instance(
    cfg, profile: EdgeProfile, model: PenaltyModel,
    cache: ArtifactCache | None = None,
    predictor: StaticPredictor | None = None,
) -> AlignmentInstance | None:
    """A cached cost matrix if one exists — used to hand already-built
    instances to bound tasks without forcing a build."""
    cache = cache if cache is not None else artifact_cache()
    return cache.get(instance_key(cfg, profile, model, predictor))
