"""Typed units of work flowing through the staged alignment pipeline.

A :class:`ProcedureTask` is everything one procedure's alignment depends on
— CFG, profile slice, machine model, predictor, solver effort, seed, and
budget — detached from the surrounding :class:`~repro.cfg.graph.Program` so
it can be fingerprinted for the artifact cache and shipped to a worker
process.  A :class:`ProcedureResult` is the corresponding output artifact:
the layout plus solver diagnostics.

Tasks are deterministic by construction: the effective solver seed is
:func:`derive_seed` over ``(seed, method, index)`` — a pure function of
what the task *is*, never of which worker (or how many workers) executed
it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.budget import Budget
from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.layout import Layout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile
from repro.tsp.solve import Effort

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.core.costmatrix import AlignmentInstance


def derive_seed(seed: int, method: str, index: int) -> int:
    """Per-task solver seed: a stable 63-bit hash of ``(seed, method, index)``.

    The historical ``seed + index`` derivation made every method in a sweep
    draw the *same* per-procedure seed stream, so methods that both use the
    randomized solver (e.g. ``tsp`` and a future restart variant) were
    correlated rather than independent.  Hashing the method name in
    decorrelates them; hashing rather than offsetting also prevents
    adjacent base seeds from producing overlapping streams.  blake2b is
    seeded with nothing process-specific, so the derivation is stable
    across runs, platforms, and worker counts.
    """
    tag = f"{seed}/{method}/{index}".encode()
    return int.from_bytes(
        hashlib.blake2b(tag, digest_size=8).digest(), "big"
    ) >> 1


@dataclass
class ProcedureTask:
    """One procedure's alignment job, self-contained and picklable."""

    name: str
    cfg: ControlFlowGraph
    profile: EdgeProfile
    method: str
    model: PenaltyModel
    effort: Effort
    #: Position of the procedure in program order; drives the per-procedure
    #: solver seed and the deterministic merge of parallel results.
    index: int = 0
    seed: int = 0
    predictor: StaticPredictor | None = None
    budget: Budget | None = None

    @property
    def effective_seed(self) -> int:
        """Per-procedure solver seed — see :func:`derive_seed`."""
        return derive_seed(self.seed, self.method, self.index)


@dataclass
class ProcedureResult:
    """The artifact one task produces: a layout plus solver diagnostics."""

    name: str
    layout: Layout
    #: Tour cost under the task's DTSP instance (TSP aligner only).
    cost: float | None = None
    #: The layout's Ext-TSP score (dual pricing: every aligner's layout is
    #: priced under both the paper's penalty model and the Ext-TSP
    #: objective — see :mod:`repro.core.exttsp`).  ``None`` only on the
    #: quarantine stand-in, where no pricing happened at all.
    exttsp_score: float | None = None
    #: City count of the DTSP instance (TSP aligner only).
    cities: int | None = None
    runs_finding_best: int = 0
    runs_total: int = 0
    degraded: str = "none"
    warning: str | None = None
    #: The DTSP instance the solve used, carried back so the parent process
    #: can seed its cost-matrix cache (matrices on alignment instances are
    #: small).  ``None`` for aligners that never build one.
    instance: "AlignmentInstance | None" = None
    #: Whether this result was served from the artifact cache.
    from_cache: bool = False
    #: Whether the task was poisoned (failed its whole retry budget) and
    #: this result is the identity-layout stand-in.
    quarantined: bool = False


@dataclass
class BoundTask:
    """One procedure's certified-lower-bound job."""

    name: str
    cfg: ControlFlowGraph
    profile: EdgeProfile
    model: PenaltyModel
    index: int = 0
    seed: int = 0
    effort: Effort | None = None
    upper_bound: float | None = None
    iterations: int | None = None
    budget: Budget | None = None
    instance: "AlignmentInstance | None" = None


@dataclass
class BoundResult:
    """A certified per-procedure penalty lower bound."""

    name: str
    bound: float
    from_cache: bool = False
    #: Whether the bound task was poisoned; 0.0 (the loosest certified
    #: bound) stands in, keeping program totals well-defined.
    quarantined: bool = False


def procedure_tasks(
    program: Program,
    profile: ProgramProfile,
    *,
    method: str,
    model: PenaltyModel,
    effort: Effort,
    seed: int = 0,
    predictor_for: dict[str, StaticPredictor] | None = None,
    budget: Budget | None = None,
) -> list[ProcedureTask]:
    """One task per procedure, in program order."""
    tasks = []
    for index, proc in enumerate(program):
        tasks.append(ProcedureTask(
            name=proc.name,
            cfg=proc.cfg,
            profile=profile.procedures.get(proc.name, EdgeProfile()),
            method=method,
            model=model,
            effort=effort,
            index=index,
            seed=seed,
            predictor=(predictor_for or {}).get(proc.name),
            budget=budget,
        ))
    return tasks
