"""Content-addressed artifact cache and durable on-disk store.

Every intermediate artifact of the staged pipeline (cost matrices, solved
alignments, certified lower bounds) is a pure function of its inputs: the
CFG, the profile slice, the machine model, the predictor, the solver effort,
the seed, and the budget.  Fingerprinting those inputs yields a stable
content address, so

* greedy / tsp / lower-bound passes over the same procedure share one cost
  matrix instead of rebuilding it per method,
* cross-validation sweeps reuse alignment instances across train profiles,
* a repeated figure case is served from memory instead of re-solving,
* with a store configured (``--store PATH`` / ``$REPRO_STORE``), expensive
  solves survive process restarts and are shared between concurrent runs.

Keys are sha256 hexdigests of a canonical JSON encoding; the first key
component names the artifact *kind* (``instance`` / ``align`` / ``bound``)
so hit rates can be reported per stage.

The in-memory cache fronts the optional :class:`ArtifactStore`, which is
built for hostile conditions (see ``docs/robustness.md``): entries are
written to a temp file and published by atomic ``os.replace``; every entry
carries a sha256 checksum verified on read; a corrupt entry (torn write,
bit rot) is *evicted* and reported as a miss, never returned and never
fatal; writers take per-entry lock files with stale-lock stealing so
parallel workers and concurrent CLI invocations share one store safely.

Both tiers are deliberately bypassed while a fault-injection plan arms any
*pipeline* site: injected failures must reach the code under test, not be
papered over by a clean cached artifact.  A plan arming only the store's
own fault sites (``store_corrupt`` / ``store_io_error``) leaves the store
live — it has to, for the injected damage to reach it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import faults, obs
from repro.budget import Budget
from repro.cfg.graph import ControlFlowGraph
from repro.errors import ArtifactStoreError
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile
from repro.tsp.solve import Effort

STORE_ENV = "REPRO_STORE"

#: Conventional store location when the user asks for one without naming a
#: path (``--store auto``).
DEFAULT_STORE_DIR = pathlib.Path("~/.cache/repro").expanduser()

# -- input fingerprints -------------------------------------------------------


def _digest(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def fingerprint_cfg(cfg: ControlFlowGraph) -> str:
    """Stable digest of everything about a CFG that alignment can observe:
    block ids, sizes, and terminator shapes/targets."""
    blocks = [
        (
            block.block_id,
            block.kind.value,
            list(block.terminator.targets),
            block.body_words,
        )
        for block in sorted(cfg, key=lambda b: b.block_id)
    ]
    return _digest({"entry": cfg.entry, "blocks": blocks})


def fingerprint_profile(profile: EdgeProfile) -> str:
    triples = sorted(
        [src, dst, n] for (src, dst), n in profile.counts.items() if n
    )
    return _digest(triples)


def fingerprint_model(model: PenaltyModel) -> str:
    return _digest({
        "name": model.name,
        "conditional": [
            model.conditional.p_tt, model.conditional.p_tn,
            model.conditional.p_nt, model.conditional.p_nn,
        ],
        "multiway": [
            model.multiway.p_tt, model.multiway.p_tn,
            model.multiway.p_nt, model.multiway.p_nn,
        ],
        "unconditional": model.unconditional,
    })


def fingerprint_predictor(predictor: StaticPredictor | None) -> str:
    """``None`` means "train on the task's own profile" — since the profile
    is fingerprinted separately, the derived predictor is fully determined
    and a constant tag suffices."""
    if predictor is None:
        return "auto"
    return _digest(sorted(predictor.predictions.items()))


def fingerprint_effort(effort: Effort) -> str:
    return _digest({
        "name": effort.name,
        "starts": list(effort.starts),
        "iterations": effort.iterations,
        "neighbors": effort.neighbors,
        "exact_threshold": effort.exact_threshold,
    })


def fingerprint_budget(budget: Budget | None) -> str:
    if budget is None or budget.unlimited:
        return "unlimited"
    return _digest([budget.wall_ms, budget.max_iterations])


# -- the on-disk store --------------------------------------------------------


@dataclass
class StoreStats:
    """Operation counters for one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries deleted because their checksum or framing failed on read.
    evictions: int = 0
    #: Reads/writes absorbed after an I/O failure (never raised to callers).
    io_errors: int = 0
    #: Writes skipped because another writer held the entry lock too long.
    lock_contention: int = 0
    #: Writes skipped because the store is in sticky degraded mode.
    degraded_writes: int = 0


class EntryLock:
    """A single-writer advisory lock for one store entry.

    ``O_CREAT | O_EXCL`` on a ``.lock`` sibling is atomic on every platform
    and filesystem we care about.  A lock older than ``stale_ms`` is
    presumed abandoned (its writer crashed mid-publish) and stolen.  Lock
    acquisition failing within ``timeout_ms`` is *not* an error — the store
    is a cache, so the caller simply skips the write.

    Lock age mixes clocks by necessity: the wait deadline is monotonic,
    but ``st_mtime`` only compares against wall-clock ``time.time()``.  A
    future-dated mtime (clock skew, a copied store, a stepped clock)
    therefore yields a *negative* age — which must not be allowed to park
    the lock forever, so beyond a small skew tolerance it is treated as
    stale-eligible, and small negatives clamp to zero.
    """

    #: Wall-clock skew we attribute to clock granularity rather than a
    #: broken mtime (seconds).
    SKEW_TOLERANCE_S = 1.0

    def __init__(
        self,
        path: pathlib.Path,
        *,
        timeout_ms: float = 2000.0,
        stale_ms: float = 30_000.0,
        poll_ms: float = 20.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.path = path
        self.timeout_ms = timeout_ms
        self.stale_ms = stale_ms
        self.poll_ms = poll_ms
        self._sleep = sleep
        self._fd: int | None = None

    def acquire(self) -> bool:
        deadline = time.monotonic() + self.timeout_ms / 1000.0
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(self._fd, str(os.getpid()).encode())
                return True
            except FileExistsError:
                try:
                    # An injected clock_skew fault reads this clock in the
                    # future, the shape that makes fresh locks look stale.
                    now = time.time() + faults.clock_skew_s()
                    age_s = now - self.path.stat().st_mtime
                except FileNotFoundError:
                    continue  # raced: owner released or stole first
                except OSError:
                    # The lock exists but cannot be inspected — its age is
                    # unknowable, so waiting on it can never terminate:
                    # treat it as stale-eligible.
                    age_s = float("inf")
                if age_s < 0:
                    # Future-dated mtime: a tiny negative is clock
                    # granularity (clamp and keep waiting); anything
                    # larger is skew/corruption and no amount of waiting
                    # makes it look stale, so steal now.
                    age_s = 0.0 if -age_s <= self.SKEW_TOLERANCE_S else float("inf")
                if age_s * 1000.0 > self.stale_ms:
                    # The owner is presumed dead; steal the lock.
                    try:
                        self.path.unlink()
                    except OSError:
                        continue  # raced: another waiter stole it first
                    obs.count("store.lock_steals", stable=False)
                    continue
                if time.monotonic() >= deadline:
                    return False
                self._sleep(self.poll_ms / 1000.0)
            except OSError:
                return False

    def release(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


class ArtifactStore:
    """Crash-safe, content-addressed, on-disk artifact store.

    Layout: ``<root>/v1/<kind>/<aa>/<digest>.art`` where ``aa`` is the
    first two hex digits of the key digest (keeps directories small).
    Each entry is a one-line JSON header — ``{"v": 1, "key": ..., "sha":
    <sha256 of body>}`` — followed by the pickled artifact.  The header is
    parsed and the body checksummed on every read; any mismatch evicts the
    entry and reports a miss.

    Pickle is the value codec (artifacts hold numpy matrices and nested
    dataclasses); like any pickle-based cache the store must only be
    pointed at directories the user controls.
    """

    VERSION = 1
    SUFFIX = ".art"

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        lock_timeout_ms: float = 2000.0,
        lock_stale_ms: float = 30_000.0,
    ):
        self.root = pathlib.Path(root).expanduser()
        self.lock_timeout_ms = lock_timeout_ms
        self.lock_stale_ms = lock_stale_ms
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._tmp_serial = 0
        #: Sticky read-only mode: a write failed at the OS level (disk
        #: full, I/O error), so the store stops attempting writes — reads
        #: still serve whatever was published — until a new store is
        #: constructed.  Sticky by design: a full disk does not un-fill
        #: itself between artifacts, and every retried write would pay
        #: the failure on the solve path.
        self.degraded = False

    # - paths -

    def path_for(self, key: str) -> pathlib.Path:
        kind, _, digest = key.partition(":")
        return (
            self.root / f"v{self.VERSION}" / kind / digest[:2]
            / f"{digest}{self.SUFFIX}"
        )

    # - accounting -

    def _count(self, counter: str, n: int = 1) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + n)
        # Mirrored into obs so a trace's store.* totals equal this store's
        # ``stats`` by construction.  Per-process observational: a worker's
        # store activity depends on task placement.
        obs.count(f"store.{counter}", n, stable=False)

    # - the store contract: get() never raises, put() never raises -

    def get(self, key: str) -> Any | None:
        """The stored artifact, or ``None`` — after verifying the entry's
        checksum.  A corrupt or unreadable entry is evicted, not returned."""
        path = self.path_for(key)
        try:
            faults.check_store_io()
            data = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except (ArtifactStoreError, OSError):
            self._count("io_errors")
            self._count("misses")
            return None
        value = self._decode(data, key)
        if value is None:
            self.evict(key)
            self._count("misses")
            return None
        self._count("hits")
        return value

    def _decode(self, data: bytes, key: str) -> Any | None:
        try:
            header_raw, _, body = data.partition(b"\n")
            header = json.loads(header_raw)
            if header.get("v") != self.VERSION or header.get("key") != key:
                return None
            if hashlib.sha256(body).hexdigest() != header.get("sha"):
                return None
            return pickle.loads(body)
        except Exception:  # noqa: BLE001 — any damage shape is "corrupt"
            return None

    def put(self, key: str, value: Any) -> bool:
        """Persist one artifact: serialize, checksum, write to a temp file,
        publish with atomic ``os.replace`` under a per-entry lock.  Returns
        whether the entry was published; failures are absorbed (a cache
        that cannot write is slow, not broken)."""
        if self.degraded:
            self._count("degraded_writes")
            return False
        path = self.path_for(key)
        try:
            body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — unpicklable artifact: skip
            return False
        header = json.dumps(
            {"v": self.VERSION, "key": key,
             "sha": hashlib.sha256(body).hexdigest()},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        data = header + b"\n" + body
        # The torn-write fault truncates what lands on disk, exactly as a
        # power loss after the rename but before the data sync would.
        data = faults.corrupt_store_bytes(data)
        lock = EntryLock(
            path.with_suffix(path.suffix + ".lock"),
            timeout_ms=self.lock_timeout_ms,
            stale_ms=self.lock_stale_ms,
        )
        try:
            faults.check_store_io()
            faults.check_store_enospc()
            path.parent.mkdir(parents=True, exist_ok=True)
            if not lock.acquire():
                self._count("lock_contention")
                return False
            try:
                with self._lock:
                    self._tmp_serial += 1
                    serial = self._tmp_serial
                tmp = path.with_suffix(f".tmp.{os.getpid()}.{serial}")
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            finally:
                lock.release()
        except ArtifactStoreError:
            # Injected transient store I/O: absorbed per-operation, the
            # store keeps trying (this is the shape chaos soaks arm).
            self._count("io_errors")
            return False
        except OSError:
            # The OS refused a write — ENOSPC, EIO, a read-only remount.
            # That is not transient: degrade to sticky read-only so the
            # solve path never pays (or sees) the failing disk again.
            self._count("io_errors")
            self._degrade()
            return False
        self._count("writes")
        return True

    def _degrade(self) -> None:
        if not self.degraded:
            self.degraded = True
            obs.count("store.degraded", stable=False)

    def evict(self, key: str) -> None:
        """Delete one entry (corrupt, or superseded); missing is fine."""
        try:
            self.path_for(key).unlink()
        except OSError:
            pass
        self._count("evictions")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob(f"*{self.SUFFIX}"))

    def clear(self) -> None:
        for entry in list(self.root.rglob(f"*{self.SUFFIX}")):
            try:
                entry.unlink()
            except OSError:
                pass


# -- default-store resolution -------------------------------------------------

_DEFAULT_STORE: ArtifactStore | None = None
_DEFAULT_STORE_SOURCE: str | None = None


def resolve_store_path(arg: "str | os.PathLike[str] | None") -> pathlib.Path | None:
    """Normalize a store spec: an explicit path wins, else ``$REPRO_STORE``,
    else no store.  ``auto``/``default`` name the conventional location;
    ``0``/``off``/``none`` (in either source) disable the store."""
    raw = str(arg) if arg is not None else os.environ.get(STORE_ENV, "")
    raw = raw.strip()
    if not raw or raw.lower() in ("0", "off", "none", "false"):
        return None
    if raw.lower() in ("auto", "default"):
        return DEFAULT_STORE_DIR
    return pathlib.Path(raw).expanduser()


def set_default_store(
    store: "ArtifactStore | str | os.PathLike[str] | None",
) -> ArtifactStore | None:
    """Install the process-default store (CLI ``--store``, tests).  Accepts
    a built store, a path, or ``None`` to disable.  Returns the store."""
    global _DEFAULT_STORE, _DEFAULT_STORE_SOURCE
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    _DEFAULT_STORE = store
    _DEFAULT_STORE_SOURCE = "explicit"
    return store


def default_store() -> ArtifactStore | None:
    """The process-default store: whatever :func:`set_default_store`
    installed, else one lazily resolved from ``$REPRO_STORE`` (re-resolved
    when the variable changes, so tests can flip it per-case)."""
    global _DEFAULT_STORE, _DEFAULT_STORE_SOURCE
    if _DEFAULT_STORE_SOURCE == "explicit":
        return _DEFAULT_STORE
    env = os.environ.get(STORE_ENV, "").strip()
    if env != _DEFAULT_STORE_SOURCE:
        _DEFAULT_STORE_SOURCE = env
        path = resolve_store_path(None)
        _DEFAULT_STORE = ArtifactStore(path) if path is not None else None
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Forget any installed/resolved default store (tests)."""
    global _DEFAULT_STORE, _DEFAULT_STORE_SOURCE
    _DEFAULT_STORE = None
    _DEFAULT_STORE_SOURCE = None


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters for one artifact kind."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """In-memory content-addressed cache of pipeline artifacts, optionally
    fronting a durable :class:`ArtifactStore`.

    Artifacts are treated as immutable once stored; callers must not mutate
    a cached value.  Thread-safe: lookups and stores take a lock (the
    artifacts themselves are computed outside it).

    ``store=None`` (the default) tracks the *process-default* store — the
    one installed by the CLI's ``--store`` flag or resolved from
    ``$REPRO_STORE`` — so enabling persistence never requires rebuilding
    caches.  Pass a built :class:`ArtifactStore` to pin one explicitly.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        *,
        store: ArtifactStore | None = None,
    ):
        self.max_entries = max_entries
        self._pinned_store = store
        self._entries: dict[str, Any] = {}
        self._stats: dict[str, CacheStats] = {}
        self._lock = threading.Lock()

    @property
    def store(self) -> ArtifactStore | None:
        """The durable tier this cache consults, if any."""
        # Explicit None check: an *empty* store is len() == 0 and falsy.
        if self._pinned_store is not None:
            return self._pinned_store
        return default_store()

    @staticmethod
    def key(kind: str, *components: str | int | float | None) -> str:
        return f"{kind}:{_digest([kind, *components])}"

    @staticmethod
    def _kind(key: str) -> str:
        return key.split(":", 1)[0]

    @property
    def enabled(self) -> bool:
        """Caching (both tiers) is suspended while a fault plan arms any
        pipeline site — injected failures must reach the stage code, not
        be served from cache.  A plan arming only store sites leaves the
        cache live so the injected damage can reach the store."""
        plan = faults.active()
        return plan is None or not plan.arms_pipeline_sites()

    def get(self, key: str) -> Any | None:
        if not self.enabled:
            return None
        kind = self._kind(key)
        with self._lock:
            stats = self._stats.setdefault(kind, CacheStats())
            if key in self._entries:
                stats.hits += 1
                obs.count(f"cache.{kind}.hits", stable=False)
                return self._entries[key]
        store = self.store
        if store is not None:
            # Durable tier: checksum-verified read, outside our lock (disk
            # I/O must not serialize in-memory lookups).
            value = store.get(key)
            if value is not None:
                with self._lock:
                    self._entries[key] = value
                    stats.hits += 1
                obs.count(f"cache.{kind}.hits", stable=False)
                return value
        with self._lock:
            stats.misses += 1
        obs.count(f"cache.{kind}.misses", stable=False)
        return None

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            if (
                self.max_entries is not None
                and key not in self._entries
                and len(self._entries) >= self.max_entries
            ):
                # FIFO eviction: drop the oldest inserted artifact.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = value
        store = self.store
        if store is not None:
            store.put(key, value)

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        found = self.get(key)
        if found is not None:
            return found
        value = builder()
        self.put(key, value)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self, kind: str | None = None) -> CacheStats:
        """Counters for one artifact kind, or the aggregate when omitted."""
        with self._lock:
            if kind is not None:
                return self._stats.get(kind, CacheStats())
            total = CacheStats()
            for stats in self._stats.values():
                total.hits += stats.hits
                total.misses += stats.misses
            return total

    def stats_by_kind(self) -> dict[str, CacheStats]:
        with self._lock:
            return {
                kind: CacheStats(s.hits, s.misses)
                for kind, s in self._stats.items()
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats.clear()


#: The process-wide default cache all pipeline stages consult.
_DEFAULT_CACHE = ArtifactCache()


def artifact_cache() -> ArtifactCache:
    return _DEFAULT_CACHE


def reset_artifact_cache() -> None:
    """Drop every cached artifact and all counters (tests, benchmarks)."""
    _DEFAULT_CACHE.clear()
