"""Content-addressed artifact cache for the alignment pipeline.

Every intermediate artifact of the staged pipeline (cost matrices, solved
alignments, certified lower bounds) is a pure function of its inputs: the
CFG, the profile slice, the machine model, the predictor, the solver effort,
the seed, and the budget.  Fingerprinting those inputs yields a stable
content address, so

* greedy / tsp / lower-bound passes over the same procedure share one cost
  matrix instead of rebuilding it per method,
* cross-validation sweeps reuse alignment instances across train profiles,
* a repeated figure case is served from memory instead of re-solving.

Keys are sha256 hexdigests of a canonical JSON encoding; the first key
component names the artifact *kind* (``instance`` / ``align`` / ``bound``)
so hit rates can be reported per stage.

The cache is deliberately bypassed while a fault-injection plan is armed:
injected failures must reach the code under test, not be papered over by a
clean cached artifact.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import faults
from repro.budget import Budget
from repro.cfg.graph import ControlFlowGraph
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile
from repro.tsp.solve import Effort

# -- input fingerprints -------------------------------------------------------


def _digest(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def fingerprint_cfg(cfg: ControlFlowGraph) -> str:
    """Stable digest of everything about a CFG that alignment can observe:
    block ids, sizes, and terminator shapes/targets."""
    blocks = [
        (
            block.block_id,
            block.kind.value,
            list(block.terminator.targets),
            block.body_words,
        )
        for block in sorted(cfg, key=lambda b: b.block_id)
    ]
    return _digest({"entry": cfg.entry, "blocks": blocks})


def fingerprint_profile(profile: EdgeProfile) -> str:
    triples = sorted(
        [src, dst, n] for (src, dst), n in profile.counts.items() if n
    )
    return _digest(triples)


def fingerprint_model(model: PenaltyModel) -> str:
    return _digest({
        "name": model.name,
        "conditional": [
            model.conditional.p_tt, model.conditional.p_tn,
            model.conditional.p_nt, model.conditional.p_nn,
        ],
        "multiway": [
            model.multiway.p_tt, model.multiway.p_tn,
            model.multiway.p_nt, model.multiway.p_nn,
        ],
        "unconditional": model.unconditional,
    })


def fingerprint_predictor(predictor: StaticPredictor | None) -> str:
    """``None`` means "train on the task's own profile" — since the profile
    is fingerprinted separately, the derived predictor is fully determined
    and a constant tag suffices."""
    if predictor is None:
        return "auto"
    return _digest(sorted(predictor.predictions.items()))


def fingerprint_effort(effort: Effort) -> str:
    return _digest({
        "name": effort.name,
        "starts": list(effort.starts),
        "iterations": effort.iterations,
        "neighbors": effort.neighbors,
        "exact_threshold": effort.exact_threshold,
    })


def fingerprint_budget(budget: Budget | None) -> str:
    if budget is None or budget.unlimited:
        return "unlimited"
    return _digest([budget.wall_ms, budget.max_iterations])


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters for one artifact kind."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """In-memory content-addressed store of pipeline artifacts.

    Artifacts are treated as immutable once stored; callers must not mutate
    a cached value.  Thread-safe: lookups and stores take a lock (the
    artifacts themselves are computed outside it).
    """

    def __init__(self, max_entries: int | None = None):
        self.max_entries = max_entries
        self._entries: dict[str, Any] = {}
        self._stats: dict[str, CacheStats] = {}
        self._lock = threading.Lock()

    @staticmethod
    def key(kind: str, *components: str | int | float | None) -> str:
        return f"{kind}:{_digest([kind, *components])}"

    @staticmethod
    def _kind(key: str) -> str:
        return key.split(":", 1)[0]

    @property
    def enabled(self) -> bool:
        """Caching is suspended while a fault plan is armed — injected
        failures must reach the stage code, not be served from cache."""
        return faults.active() is None

    def get(self, key: str) -> Any | None:
        if not self.enabled:
            return None
        kind = self._kind(key)
        with self._lock:
            stats = self._stats.setdefault(kind, CacheStats())
            if key in self._entries:
                stats.hits += 1
                return self._entries[key]
            stats.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            if (
                self.max_entries is not None
                and key not in self._entries
                and len(self._entries) >= self.max_entries
            ):
                # FIFO eviction: drop the oldest inserted artifact.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = value

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        found = self.get(key)
        if found is not None:
            return found
        value = builder()
        self.put(key, value)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self, kind: str | None = None) -> CacheStats:
        """Counters for one artifact kind, or the aggregate when omitted."""
        with self._lock:
            if kind is not None:
                return self._stats.get(kind, CacheStats())
            total = CacheStats()
            for stats in self._stats.values():
                total.hits += stats.hits
                total.misses += stats.misses
            return total

    def stats_by_kind(self) -> dict[str, CacheStats]:
        with self._lock:
            return {
                kind: CacheStats(s.hits, s.misses)
                for kind, s in self._stats.items()
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats.clear()


#: The process-wide default cache all pipeline stages consult.
_DEFAULT_CACHE = ArtifactCache()


def artifact_cache() -> ArtifactCache:
    return _DEFAULT_CACHE


def reset_artifact_cache() -> None:
    """Drop every cached artifact and all counters (tests, benchmarks)."""
    _DEFAULT_CACHE.clear()
