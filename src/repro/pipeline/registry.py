"""The aligner registry.

Alignment methods are registered, not hard-coded: an aligner is a callable
``(ProcedureTask) -> ProcedureResult`` registered under a canonical name
(plus optional aliases).  ``ALIGN_METHODS`` in :mod:`repro.core.align` is a
live view over this registry, and the CLI, the experiment runner, and the
cache-key normalizers all resolve method names through it — adding an
aligner is one :func:`register_aligner` call, with no parallel edits in
``align.py`` / ``cli.py`` / ``runner.py``.

The built-in methods (original / greedy / cost-greedy / cg-exhaustive /
tsp) register themselves when :mod:`repro.core.align` is imported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import UnknownNameError

if TYPE_CHECKING:  # pragma: no cover — import cycle is fine at type time
    from repro.pipeline.task import ProcedureResult, ProcedureTask

AlignerFn = Callable[["ProcedureTask"], "ProcedureResult"]


@dataclass(frozen=True)
class AlignerSpec:
    """One registered alignment method."""

    name: str
    fn: AlignerFn
    aliases: tuple[str, ...] = ()
    description: str = ""
    #: Whether the aligner consumes a DTSP instance (and therefore benefits
    #: from the shared cost-matrix cache).
    uses_instance: bool = False


_REGISTRY: dict[str, AlignerSpec] = {}
_ALIASES: dict[str, str] = {}


def _ensure_builtins() -> None:
    """The built-in aligners register when :mod:`repro.core.align` imports;
    pull it in lazily so registry lookups work regardless of import order."""
    if not _REGISTRY:
        import repro.core.align  # noqa: F401 — import side effect


def register_aligner(
    name: str,
    fn: AlignerFn | None = None,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    uses_instance: bool = False,
    replace: bool = False,
):
    """Register an alignment method (usable directly or as a decorator).

    ``name`` becomes the canonical method name everywhere: ``align_program``
    dispatch, CLI ``--method`` choices, experiment sweeps, cache keys.
    ``aliases`` are accepted wherever a method name is, and normalize to
    ``name`` before any cache boundary.
    """
    if fn is None:
        def decorator(decorated: AlignerFn) -> AlignerFn:
            register_aligner(
                name,
                decorated,
                aliases=aliases,
                description=description,
                uses_instance=uses_instance,
                replace=replace,
            )
            return decorated
        return decorator

    canonical = name.strip().lower()
    if not replace:
        for candidate in (canonical, *aliases):
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ValueError(
                    f"alignment method {candidate!r} is already registered "
                    f"(pass replace=True to override)"
                )
    spec = AlignerSpec(
        name=canonical,
        fn=fn,
        aliases=tuple(a.strip().lower() for a in aliases),
        description=description,
        uses_instance=uses_instance,
    )
    # Replacing must be symmetric with unregistering: purge the replaced
    # spec's aliases first, or a stale alias keeps resolving to a canonical
    # name whose spec was swapped in with a *different* alias set.
    replaced = _REGISTRY.get(canonical)
    if replaced is not None:
        for alias in replaced.aliases:
            _ALIASES.pop(alias, None)
    _REGISTRY[canonical] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = canonical
    return fn


def unregister_aligner(name: str) -> None:
    """Remove a registered method (tests and plug-in teardown)."""
    spec = _REGISTRY.pop(name.strip().lower(), None)
    if spec is not None:
        for alias in spec.aliases:
            _ALIASES.pop(alias, None)


def aligner_names() -> tuple[str, ...]:
    """Canonical method names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def normalize_method(name: str) -> str:
    """Resolve a method name or alias to its canonical form.

    Raises :class:`~repro.errors.UnknownNameError` (a ``ValueError``) for
    unknown names, listing the registered methods.
    """
    _ensure_builtins()
    candidate = name.strip().lower() if isinstance(name, str) else name
    if candidate in _REGISTRY:
        return candidate
    if candidate in _ALIASES:
        return _ALIASES[candidate]
    raise UnknownNameError(
        f"unknown method {name!r}; choose from {aligner_names()}"
    )


def get_aligner(name: str) -> AlignerSpec:
    """Look up the :class:`AlignerSpec` for a method name or alias."""
    return _REGISTRY[normalize_method(name)]


class MethodsView:
    """A live, tuple-like view of the registered method names.

    ``repro.core.align.ALIGN_METHODS`` is one of these: iteration, ``in``,
    indexing, and equality all reflect the registry *now*, so an aligner
    registered after import is immediately visible to the CLI and sweeps.
    """

    def __iter__(self) -> Iterator[str]:
        return iter(aligner_names())

    def __contains__(self, name: object) -> bool:
        try:
            normalize_method(name)  # type: ignore[arg-type]
        except (UnknownNameError, AttributeError):
            return False
        return True

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __getitem__(self, index):
        return aligner_names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MethodsView):
            return True
        if isinstance(other, (tuple, list)):
            return tuple(self) == tuple(other)
        return NotImplemented

    def __hash__(self):  # pragma: no cover — views are not dict keys
        return hash(aligner_names())

    def __repr__(self) -> str:
        return repr(aligner_names())
