"""Supervised per-procedure parallel execution for pipeline stages.

Procedures are aligned independently (the paper's problem is
*intra*procedural), so the solve stage fans tasks out over a
``ProcessPoolExecutor`` with a serial fallback — under a supervisor that
treats individual failures as routine:

* **Determinism** — results are merged in task order and every task carries
  its own solver seed derived from ``(seed, method, index)`` (see
  :func:`repro.pipeline.task.derive_seed`), so output is byte-identical for
  any worker count (``jobs=1`` vs ``jobs=4`` produce the same layouts,
  reports, checkpoints, and tables).
* **Chunking** — alignment tasks are small (most procedures solve in
  milliseconds), so the supervisor batches several payloads into one pool
  task (:func:`_chunk_size` — deterministic in task count and worker
  count), amortizing submit/pickle/IPC overhead.  Inside a chunk every
  payload still runs under its own fault plan and event capture, and
  sabotaged dispatches go out as singleton chunks, so supervision
  semantics are chunking-invariant.  Chunking is disabled whenever an
  outer per-task deadline is configured (the deadline binds per pool
  task).
* **Supervision** — a worker that dies (OOM, signal, ``BrokenProcessPool``)
  costs the affected tasks one attempt, never the run: the pool is rebuilt
  and the tasks resubmitted.  Each attempt may carry an outer wall-clock
  deadline (``task_timeout_ms``); an unresponsive attempt is abandoned
  (the pool is torn down to reclaim its workers) and retried.
* **Retry / quarantine** — failed attempts retry with capped exponential
  backoff under a deterministic :class:`~repro.budget.RetryPolicy` budget.
  A task failing every attempt is *quarantined*: recorded in a structured
  :class:`SupervisionReport` with its final error, while the rest of the
  batch completes.  Stage code maps quarantined procedures to their
  identity layout, so program-level results degrade gracefully.
* **Budgets** — a :class:`~repro.budget.Budget` is a per-procedure spec;
  each worker starts its own countdown exactly as the serial loop does.
* **Fault injection** — the armed :class:`~repro.faults.FaultPlan` (if any)
  is shipped to the worker and re-armed around each task, and the worker's
  call/trip counters are merged back into the parent plan.  ``True``-valued
  triggers therefore behave identically at any worker count; integer
  ("fire on the n-th call") triggers on *worker-side* sites count per task
  in parallel mode rather than globally.  The supervisor's own sites
  (``worker_crash``, ``task_timeout``) are counted in the parent and,
  for scheduled triggers, sampled once per task at its first dispatch,
  so they stay deterministic at any worker count and a sabotaged task's
  retry is never re-targeted.
* **Degradation** — if the pool cannot be created, a task cannot be
  shipped (pickling, fork failure, interpreter shutdown), or a worker
  cannot resolve what the parent dispatched (an aligner registered only
  in the parent process after the pool forked), execution falls back to
  the serial path instead of failing the run.

``jobs=None`` resolves through the ``REPRO_JOBS`` environment variable
(default 1), so ``REPRO_JOBS=4 pytest`` exercises the parallel path across
the whole suite without touching call sites.  ``REPRO_RETRIES`` and
``REPRO_TASK_TIMEOUT_MS`` likewise seed the default retry policy.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar

from repro import faults, obs
from repro.budget import RetryPolicy
from repro.errors import (
    PoisonTaskError,
    TaskTimeoutError,
    UnknownNameError,
    WorkerCrashError,
)

JOBS_ENV = "REPRO_JOBS"
RETRIES_ENV = "REPRO_RETRIES"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT_MS"

T = TypeVar("T")
R = TypeVar("R")

#: Registered task-kind handlers: kind -> callable(payload) -> result.
#: Stage modules register their handlers at import time; workers import
#: :mod:`repro.core.align` (below) which pulls every built-in handler in.
_HANDLERS: dict[str, Callable[[Any], Any]] = {}


def register_handler(kind: str, fn: Callable[[Any], Any]) -> None:
    _HANDLERS[kind] = fn


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: explicit value, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def resolve_policy(
    policy: RetryPolicy | None = None,
    *,
    retries: int | None = None,
    task_timeout_ms: float | None = None,
) -> RetryPolicy:
    """Normalize supervision knobs: an explicit policy wins; individual
    overrides apply on top of the environment-seeded default."""
    if policy is None:
        policy = _env_policy()
    updates = {}
    if retries is not None:
        updates["retries"] = max(0, retries)
    if task_timeout_ms is not None:
        updates["task_timeout_ms"] = task_timeout_ms
    if updates:
        policy = dataclasses.replace(policy, **updates)
    return policy


def _env_policy() -> RetryPolicy:
    retries = RetryPolicy.retries
    raw = os.environ.get(RETRIES_ENV, "").strip()
    if raw:
        try:
            retries = max(0, int(raw))
        except ValueError:
            pass
    timeout_ms = None
    raw = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if raw:
        try:
            timeout_ms = float(raw)
            if timeout_ms <= 0:
                timeout_ms = None
        except ValueError:
            pass
    return RetryPolicy(retries=retries, task_timeout_ms=timeout_ms)


# -- supervision records ------------------------------------------------------


@dataclass
class TaskOutcome:
    """What supervision observed for one payload."""

    index: int
    result: Any | None = None
    ok: bool = False
    #: ``"ErrorType: message"`` of the final failure, for quarantined tasks.
    error: str | None = None
    error_type: str | None = None
    attempts: int = 0
    #: Attempts beyond the first (== attempts - 1 unless never started).
    retried: int = 0
    quarantined: bool = False
    worker_crashes: int = 0
    timeouts: int = 0
    #: Supervisor bookkeeping: scheduled dispatch faults are sampled once,
    #: at the task's first dispatch (see :func:`_dispatch_faults`).
    fault_sampled: bool = field(default=False, repr=False, compare=False)


@dataclass
class SupervisionReport:
    """Structured account of one supervised batch: per-task outcomes plus
    batch-level counters.  ``quarantined`` tasks are *not* errors at this
    level — stage code decides the degraded stand-in result."""

    outcomes: list[TaskOutcome] = field(default_factory=list)
    #: Times the worker pool was torn down and rebuilt.
    pool_restarts: int = 0

    @property
    def retried(self) -> int:
        return sum(o.retried for o in self.outcomes)

    @property
    def worker_crashes(self) -> int:
        return sum(o.worker_crashes for o in self.outcomes)

    @property
    def timeouts(self) -> int:
        return sum(o.timeouts for o in self.outcomes)

    @property
    def quarantined(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.quarantined]

    def quarantine_report(
        self, labels: "Sequence[str] | None" = None
    ) -> list[dict]:
        """JSON-shaped quarantine entries, one per poisoned task."""
        report = []
        for outcome in self.quarantined:
            label = (
                labels[outcome.index]
                if labels is not None and outcome.index < len(labels)
                else str(outcome.index)
            )
            report.append({
                "task": label,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "error_type": outcome.error_type,
                "worker_crashes": outcome.worker_crashes,
                "timeouts": outcome.timeouts,
            })
        return report

    def merge_from(self, other: "SupervisionReport") -> None:
        """Fold another batch's outcomes in (stages run several batches —
        e.g. align then bound — against one report)."""
        base = len(self.outcomes)
        for outcome in other.outcomes:
            self.outcomes.append(
                dataclasses.replace(outcome, index=base + outcome.index)
            )
        self.pool_restarts += other.pool_restarts


# -- the worker side ----------------------------------------------------------


def _worker_chunk(
    shipped: tuple[dict | None, str, list[tuple[Any, bool]]],
) -> list[tuple[bool, Any, dict, dict, list[dict]]]:
    """Run a chunk of tasks in one worker process.

    Each payload is executed under its *own* re-armed fault plan (or an
    inert empty plan, which also shadows any plan inherited across
    ``fork``) and its own observability capture, so per-task fault-trigger
    and event semantics are identical whether the chunk holds one payload
    or twenty.  Returns one ``(ok, result-or-exception, calls, trips,
    events)`` entry per payload — a payload that raises costs only itself,
    not its chunk-mates.  A ``crash`` flag (decided in the parent, so
    trigger counting is worker-count invariant) kills the process the way
    a real OOM/signal would, losing the chunk's earlier results with it —
    exactly what a real mid-batch crash does.
    """
    spec, kind, entries = shipped
    import repro.core.align  # noqa: F401 — populates registry + handlers

    handler = _HANDLERS.get(kind)
    if handler is None:
        # The parent resolved this kind before dispatching, so it exists
        # there but not here: signal "cannot run in this worker" (the
        # supervisor falls back to serial) rather than a task failure.
        raise UnknownNameError(f"task kind {kind!r} not registered in worker")
    out: list[tuple[bool, Any, dict, dict, list[dict]]] = []
    for payload, crash in entries:
        if crash:
            os._exit(3)
        with obs.collect() as events:
            with faults.inject_faults(**(spec or {})) as plan:
                try:
                    ok, value = True, handler(payload)
                except Exception as exc:  # noqa: BLE001 — shipped to parent
                    ok, value = False, exc
        calls, trips = plan.counters()
        out.append((ok, value, calls, trips, events))
    return out


# -- the pool -----------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_JOBS: int = 0


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """A persistent pool, resized lazily (pool creation costs a fork per
    worker; align calls are frequent and small, so the pool is shared)."""
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_JOBS = 0


def abandon_pool() -> None:
    """Tear the pool down *without* waiting: kill worker processes and drop
    the executor.  Used when a task blew its outer deadline — its worker
    may never return, so joining it would hang the supervisor too."""
    global _POOL, _POOL_JOBS
    if _POOL is None:
        return
    pool, _POOL, _POOL_JOBS = _POOL, None, 0
    try:
        processes = list(getattr(pool, "_processes", {}).values())
    except Exception:  # noqa: BLE001 — private API; best effort
        processes = []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001
            pass
    pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pool)


# -- the supervisor -----------------------------------------------------------

#: Target dispatch waves per worker: chunks are sized so each worker sees
#: about this many pool tasks per round, amortizing per-task IPC while
#: keeping enough chunks in flight to balance uneven task costs.
_CHUNK_WAVES = 4
#: Hard cap on payloads per pool task, bounding the work lost to one crash.
_MAX_CHUNK = 16


def _chunk_size(task_count: int, jobs: int, policy: RetryPolicy) -> int:
    """Payloads per pool task — a pure function of the round's task count,
    the worker count, and the machine's core count, so dispatch is
    deterministic.  Forced to 1 when an outer per-task deadline is set:
    the deadline is enforced per pool task, and batching would silently
    stretch it by the chunk width.

    Chunks are sized for ``_CHUNK_WAVES`` waves per *usable* worker
    (``min(jobs, cores)``) — oversubscribed workers add no parallelism,
    so spreading a small batch across them just multiplies dispatch
    overhead.  Results are chunking-invariant regardless (pinned by the
    determinism suite), so this only shifts wall-clock."""
    if policy.task_timeout_ms is not None:
        return 1
    workers = max(1, min(jobs, os.cpu_count() or 1))
    # Waves exist to rebalance uneven chunks across workers; with a single
    # usable worker there is nothing to balance, so take the whole round
    # in one wave of maximal chunks.
    waves = _CHUNK_WAVES if workers > 1 else 1
    per_wave = waves * workers
    return max(1, min(_MAX_CHUNK, -(-task_count // per_wave)))


def _record_failure(
    outcome: TaskOutcome, exc: BaseException, policy: RetryPolicy
) -> None:
    outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.error_type = type(exc).__name__
    if isinstance(exc, (WorkerCrashError, BrokenProcessPool)):
        outcome.worker_crashes += 1
        outcome.error_type = WorkerCrashError.__name__
    if isinstance(exc, (TaskTimeoutError, TimeoutError)):
        outcome.timeouts += 1
        outcome.error_type = TaskTimeoutError.__name__
    if outcome.attempts >= policy.max_attempts:
        outcome.quarantined = True
    else:
        outcome.retried += 1


def _dispatch_faults(outcome: TaskOutcome) -> BaseException | None:
    """Parent-side fault decision for one dispatch: an exception to realize
    (serially as a recorded failure, in the pool as a crash flag or a
    pre-failed future), or ``None`` for a clean dispatch.

    Scheduled (integer / periodic) triggers are consulted only on a task's
    *first* dispatch: retries and uncharged requeues neither fire nor
    advance the counters, so the sabotage schedule is a pure function of
    task order — deterministic at any worker count — and a sabotaged task's
    retry always gets a clean dispatch instead of being re-targeted until
    its budget runs out.  ``True`` triggers stay unrelenting (they fire on
    every dispatch), which is how tests drive the quarantine path.
    """
    first = not outcome.fault_sampled
    outcome.fault_sampled = True
    if faults.worker_crash_fires(first):
        return WorkerCrashError("fault injection: worker crashed mid-task")
    if faults.task_timeout_fires(first):
        return faults.simulated_task_timeout_error()
    return None


def _run_serial(
    kind: str,
    payloads: Sequence[Any],
    policy: RetryPolicy,
    report: SupervisionReport,
    sleep: Callable[[float], None],
) -> None:
    """The in-process path — same supervision semantics as the pool path
    (dispatch-order fault counting, retry budget, quarantine), so results
    are identical at any worker count."""
    handler = _HANDLERS[kind]
    for index, payload in enumerate(payloads):
        outcome = report.outcomes[index]
        while not outcome.ok and not outcome.quarantined:
            if outcome.attempts > 0:
                sleep(policy.backoff_ms(outcome.retried) / 1000.0)
            outcome.attempts += 1
            injected = _dispatch_faults(outcome)
            if injected is not None:
                _record_failure(outcome, injected, policy)
                continue
            try:
                outcome.result = handler(payload)
                outcome.ok = True
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                _record_failure(outcome, exc, policy)


def _run_parallel(
    kind: str,
    payloads: Sequence[Any],
    jobs: int,
    policy: RetryPolicy,
    report: SupervisionReport,
    sleep: Callable[[float], None],
) -> bool:
    """The pool path: chunk → submit → harvest (with outer deadlines) →
    retry in rounds until every task succeeds or quarantines.  Returns
    False if the pool could not be used at all (caller falls back to
    serial).

    Tasks are batched into chunks of :func:`_chunk_size` payloads per pool
    task, amortizing submit/pickle/IPC overhead over small payloads; fault
    sampling stays strictly per task in pending order (so the sabotage
    schedule is chunking-invariant) and sabotaged tasks are dispatched as
    singleton chunks so a crash's blast radius matches the un-chunked
    supervisor's."""
    plan = faults.active()
    spec = plan.spec() if plan is not None else None
    pending = [
        o.index for o in report.outcomes if not o.ok and not o.quarantined
    ]
    round_number = 0
    while pending:
        if round_number > 0:
            report.pool_restarts += _POOL is None
            sleep(policy.backoff_ms(round_number) / 1000.0)
        round_number += 1
        chunk_cap = _chunk_size(len(pending), jobs, policy)
        try:
            pool = _get_pool(jobs)
            #: (chunk member indices, future) in ascending-index order.
            futures: list[tuple[tuple[int, ...], Future]] = []
            crashed_round: set[int] = set()
            batch: list[int] = []

            def _flush() -> None:
                if batch:
                    entries = [(payloads[i], False) for i in batch]
                    futures.append((
                        tuple(batch),
                        pool.submit(_worker_chunk, (spec, kind, entries)),
                    ))
                    batch.clear()

            for index in pending:
                injected = _dispatch_faults(report.outcomes[index])
                report.outcomes[index].attempts += 1
                if isinstance(injected, TaskTimeoutError):
                    # Simulated deadline blow: fail the dispatch without
                    # occupying a worker.
                    _flush()
                    failed: Future = Future()
                    failed.set_exception(injected)
                    futures.append(((index,), failed))
                    continue
                if injected is not None:
                    # Sabotaged dispatch: a singleton chunk, so the crash
                    # takes down exactly one charged task (everything else
                    # broken with the pool is collateral, see below).
                    crashed_round.add(index)
                    _flush()
                    futures.append(((index,), pool.submit(
                        _worker_chunk,
                        (spec, kind, [(payloads[index], True)]),
                    )))
                    continue
                batch.append(index)
                if len(batch) >= chunk_cap:
                    _flush()
            _flush()
        except Exception:  # noqa: BLE001 — pool unusable: serial fallback
            for index in pending:
                # Un-count the attempt: the serial path owns it now.
                if report.outcomes[index].attempts > 0:
                    report.outcomes[index].attempts -= 1
            abandon_pool()
            return False

        timeout_s = (
            policy.task_timeout_ms / 1000.0
            if policy.task_timeout_ms is not None
            else None
        )
        killed_pool = False
        unshippable = False
        for indices, fut in futures:
            try:
                if killed_pool and not fut.done():
                    # We tore the pool down for an earlier timeout; these
                    # tasks never got to finish — requeue without charging
                    # an attempt.
                    for index in indices:
                        report.outcomes[index].attempts -= 1
                    continue
                entries = fut.result(timeout=timeout_s)
            except TimeoutError:
                # Outer deadlines force singleton chunks, so this charges
                # exactly the task that blew its deadline.
                for index in indices:
                    _record_failure(
                        report.outcomes[index],
                        TaskTimeoutError(
                            f"task exceeded its "
                            f"{policy.task_timeout_ms:.0f} ms deadline",
                            timeout_ms=policy.task_timeout_ms,
                        ),
                        policy,
                    )
                # The worker may never come back: reclaim its slot.
                abandon_pool()
                killed_pool = True
            except (BrokenProcessPool, TaskTimeoutError, OSError) as exc:
                if (
                    isinstance(exc, BrokenProcessPool)
                    and crashed_round
                    and not crashed_round.intersection(indices)
                ):
                    # An *injected* crash took the pool down and this chunk
                    # was collateral, not the culprit: requeue it without
                    # charging attempts, or a periodic crash schedule
                    # over a large batch would quarantine innocents (and
                    # make attempt counts timing-dependent).  For real
                    # crashes the culprit is unknowable, so every affected
                    # task is charged.
                    for index in indices:
                        report.outcomes[index].attempts -= 1
                else:
                    for index in indices:
                        _record_failure(report.outcomes[index], exc, policy)
                if isinstance(exc, BrokenProcessPool):
                    killed_pool = True
                    abandon_pool()
            except UnknownNameError:
                # The worker cannot resolve what the parent dispatched —
                # e.g. an aligner registered only in the parent process
                # after the pool forked.  Environmental, not a task
                # failure: uncharge and finish the batch serially, where
                # the parent's registry applies (a genuinely unknown name
                # still fails — and quarantines — on the serial path).
                for index in indices:
                    report.outcomes[index].attempts -= 1
                unshippable = True
            except Exception as exc:  # noqa: BLE001 — chunk infrastructure
                # (e.g. result unpicklable) failed; task-level exceptions
                # come back *inside* entries, not here.
                for index in indices:
                    _record_failure(report.outcomes[index], exc, policy)
            else:
                for index, entry in zip(indices, entries):
                    ok, value, calls, trips, events = entry
                    outcome = report.outcomes[index]
                    if not ok:
                        # The payload raised in the worker.  Counters and
                        # events of failed attempts are dropped, matching
                        # the un-chunked contract ("only successful
                        # attempts ship events back").
                        _record_failure(outcome, value, policy)
                        continue
                    if plan is not None:
                        plan.merge_counts(calls, trips)
                    # Only successful attempts ship events back, so a
                    # retried task contributes one attempt's worth of
                    # events.
                    obs.absorb(events)
                    outcome.result = value
                    outcome.ok = True
        if unshippable:
            return False
        pending = [
            o.index
            for o in report.outcomes
            if not o.ok and not o.quarantined
        ]
    return True


def run_tasks_supervised(
    kind: str,
    payloads: Sequence[Any],
    *,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> SupervisionReport:
    """Execute ``payloads`` under the registered ``kind`` handler with full
    supervision, returning a :class:`SupervisionReport` whose ``outcomes``
    line up with ``payloads``.

    Never raises for task failures: a task that exhausts its retry budget
    is quarantined in the report (``outcome.quarantined``), and everything
    else completes.  ``jobs`` > 1 fans out over the process pool; 1 (or a
    single payload, or a pool failure) runs the serial path in-process.
    ``sleep`` is injectable so tests observe backoff without waiting.
    """
    _ = _HANDLERS[kind]  # unknown kinds fail fast, before any dispatch
    jobs = resolve_jobs(jobs)
    policy = resolve_policy(policy)
    report = SupervisionReport(
        outcomes=[TaskOutcome(index=i) for i in range(len(payloads))]
    )
    # Fanning out needs a reason: a second usable core, process isolation
    # for an active fault plan (injected crashes must kill a *worker*),
    # or an enforceable per-task deadline (future.result(timeout)).  With
    # none of those the pool only adds IPC latency — results are
    # worker-count invariant either way (pinned by the determinism suite).
    want_pool = (
        jobs > 1
        and len(payloads) > 1
        and (
            (os.cpu_count() or 1) > 1
            or faults.active() is not None
            or policy.task_timeout_ms is not None
        )
    )
    with obs.span("executor:batch", kind=kind, tasks=len(payloads)) as sp:
        if not (
            want_pool
            and _run_parallel(kind, payloads, jobs, policy, report, sleep)
        ):
            _run_serial(kind, payloads, policy, report, sleep)
        sp["retried"] = report.retried
        sp["quarantined"] = len(report.quarantined)
    # Counters mirror the report exactly (they are *read from* it), so the
    # trace reconciles with SupervisionReport totals by construction.
    obs.count("executor.retried", report.retried)
    obs.count("executor.quarantined", len(report.quarantined))
    obs.count("executor.worker_crashes", report.worker_crashes)
    obs.count("executor.timeouts", report.timeouts)
    # Pool restarts depend on process placement, not on the work requested.
    obs.count("executor.pool_restarts", report.pool_restarts, stable=False)
    return report


def run_tasks(
    kind: str,
    payloads: Sequence[Any],
    *,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> list[Any]:
    """Strict façade over :func:`run_tasks_supervised`: returns results in
    payload order, raising :class:`~repro.errors.PoisonTaskError` if any
    task exhausted its retry budget.  Callers that can degrade per task
    (the pipeline stages) use the supervised form directly.
    """
    report = run_tasks_supervised(kind, payloads, jobs=jobs, policy=policy)
    for outcome in report.outcomes:
        if outcome.quarantined:
            raise PoisonTaskError(
                f"task {outcome.index} failed all {outcome.attempts} "
                f"attempt(s): {outcome.error}",
                attempts=outcome.attempts,
                last_error=outcome.error,
            )
    return [outcome.result for outcome in report.outcomes]
