"""Per-procedure parallel execution for pipeline stages.

Procedures are aligned independently (the paper's problem is
*intra*procedural), so the solve stage fans tasks out over a
``ProcessPoolExecutor`` with a serial fallback.  Guarantees:

* **Determinism** — results are merged in task order and every task carries
  its own ``seed + index`` solver seed, so output is byte-identical for any
  worker count (``jobs=1`` vs ``jobs=4`` produce the same layouts, reports,
  checkpoints, and tables).
* **Budgets** — a :class:`~repro.budget.Budget` is a per-procedure spec;
  each worker starts its own countdown exactly as the serial loop does.
* **Fault injection** — the armed :class:`~repro.faults.FaultPlan` (if any)
  is shipped to the worker and re-armed around each task, and the worker's
  call/trip counters are merged back into the parent plan.  ``True``-valued
  triggers therefore behave identically at any worker count; integer
  ("fire on the n-th call") triggers count per *task* in parallel mode
  rather than globally.
* **Degradation** — if the pool cannot be created or a task cannot be
  shipped (pickling, fork failure, interpreter shutdown), execution falls
  back to the serial path instead of failing the run.

``jobs=None`` resolves through the ``REPRO_JOBS`` environment variable
(default 1), so ``REPRO_JOBS=4 pytest`` exercises the parallel path across
the whole suite without touching call sites.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

from repro import faults

JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")

#: Registered task-kind handlers: kind -> callable(payload) -> result.
#: Stage modules register their handlers at import time; workers import
#: :mod:`repro.core.align` (below) which pulls every built-in handler in.
_HANDLERS: dict[str, Callable[[Any], Any]] = {}


def register_handler(kind: str, fn: Callable[[Any], Any]) -> None:
    _HANDLERS[kind] = fn


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: explicit value, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


# -- the worker side ----------------------------------------------------------


def _worker(shipped: tuple[dict | None, str, Any]) -> tuple[Any, dict, dict]:
    """Run one task in a worker process.

    Re-arms the parent's fault plan (or an inert empty plan, which also
    shadows any plan inherited across ``fork``) and returns the result
    together with the plan's call/trip counters for merging.
    """
    spec, kind, payload = shipped
    import repro.core.align  # noqa: F401 — populates registry + handlers

    with faults.inject_faults(**(spec or {})) as plan:
        result = _HANDLERS[kind](payload)
    calls, trips = plan.counters()
    return result, calls, trips


# -- the pool -----------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_JOBS: int = 0


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """A persistent pool, resized lazily (pool creation costs a fork per
    worker; align calls are frequent and small, so the pool is shared)."""
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_JOBS = 0


atexit.register(shutdown_pool)


# -- the parent side ----------------------------------------------------------


def run_tasks(
    kind: str,
    payloads: Sequence[Any],
    *,
    jobs: int | None = None,
) -> list[Any]:
    """Execute ``payloads`` under the registered ``kind`` handler, returning
    results in payload order.

    ``jobs`` > 1 fans out over the process pool; 1 (or a single payload, or
    a pool failure) runs the serial path in-process.
    """
    handler = _HANDLERS[kind]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [handler(payload) for payload in payloads]

    plan = faults.active()
    spec = plan.spec() if plan is not None else None
    shipped = [(spec, kind, payload) for payload in payloads]
    try:
        pool = _get_pool(jobs)
        outcomes = list(pool.map(_worker, shipped))
    except Exception:  # noqa: BLE001 — broken pool degrades to serial
        shutdown_pool()
        return [handler(payload) for payload in payloads]
    results = []
    for result, calls, trips in outcomes:
        if plan is not None:
            plan.merge_counts(calls, trips)
        results.append(result)
    return results
