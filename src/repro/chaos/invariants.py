"""The system-invariant suite a replayed fault schedule must not break.

Each invariant is a predicate over one :class:`WorkloadResult` — plus
the fault-free *reference* result from discovery — that must hold **no
matter which faults were injected**.  The art is in the excuses: a
fault that *legitimately* changes behaviour (a solver timeout degrades
the aligner ladder; an injected disk-full degrades the journal) must
not fail the invariant that behaviour feeds, or every schedule would
"fail" and the explorer would find nothing.  Excuses are derived only
from the schedule's armed sites, never from the observed result, so a
verdict is a pure function of (schedule, result) and stays
byte-comparable across runs and worker counts.

The suite:

* ``closed_accounting`` — ``submitted == admitted + shed`` summed
  across every shard life (restarts included).
* ``no_lost_admissions`` — every submitted request settled: a response,
  a typed error, but never a hang past the workload timeout.
* ``responses_verified`` — every ok response carries valid permutation
  layouts and respects its own Held–Karp floors.
* ``journal_replayable`` — every journal the run wrote loads cleanly;
  interior corruption appears only under schedules that damage the
  journal on purpose.
* ``results_match_reference`` — outcome statuses and semantic response
  signatures equal the fault-free reference.  Excused for schedules
  arming *degrading* sites (a degraded solve is allowed to return a
  different — still valid, still verified — layout) and for sites that
  shed or fail requests by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.schedule import FaultSchedule
from repro.chaos.workloads import WorkloadResult

#: Sites whose whole purpose is to change which rung/route served the
#: request — results may legitimately differ from the reference.
DEGRADING_SITES = frozenset({
    "solver_timeout", "construction_failure", "greedy_failure",
    "bound_timeout", "vm_max_blocks", "checkpoint_corrupt_on",
    "breaker_probe_fail", "worker_crash", "task_timeout",
})

#: Sites that shed/fail requests by design (a shed request's outcome is
#: a typed error, so outcome lists differ from the reference).
SHEDDING_SITES = frozenset({"service_overload"})

#: Sites that damage the journal on purpose — a scrub finding torn or
#: interior-corrupt lines under these is the fault working as injected,
#: and a degraded journal legitimately drops terminal records (orphans).
JOURNAL_DAMAGE_SITES = frozenset({
    "journal_torn_tail", "journal_io_error", "journal_enospc",
    "torn_write_mid_file",
})


@dataclass
class InvariantReport:
    """Verdicts for one replayed schedule."""

    schedule_id: str
    verdicts: dict = field(default_factory=dict)  # name -> {ok, detail}

    @property
    def ok(self) -> bool:
        return all(v["ok"] for v in self.verdicts.values())

    def failed(self) -> list[str]:
        return sorted(
            name for name, v in self.verdicts.items() if not v["ok"]
        )

    def to_json(self) -> dict:
        return {
            "schedule": self.schedule_id,
            "ok": self.ok,
            "verdicts": {
                name: dict(v) for name, v in sorted(self.verdicts.items())
            },
        }

    def canonical(self) -> dict:
        """Verdict booleans only — details (timings, paths, counts that
        ride on thread scheduling) are excluded so canonical reports are
        byte-identical across reruns and worker counts."""
        return {
            name: bool(v["ok"]) for name, v in sorted(self.verdicts.items())
        }


def _armed(schedule: FaultSchedule) -> frozenset:
    return frozenset(site for site, _trigger in schedule.sites)


def check_invariants(
    schedule: FaultSchedule,
    result: WorkloadResult,
    reference: "WorkloadResult | None",
) -> InvariantReport:
    report = InvariantReport(schedule_id=schedule.schedule_id)
    armed = _armed(schedule)

    def verdict(name: str, ok: bool, detail: str = "") -> None:
        report.verdicts[name] = {"ok": bool(ok), "detail": detail}

    # 1. Closed accounting across shard lives.
    if result.snapshot is not None:
        totals = result.snapshot.get("totals", {})
        submitted = totals.get("submitted", 0)
        admitted = totals.get("admitted", 0)
        shed = totals.get("shed", 0)
        verdict(
            "closed_accounting",
            submitted == admitted + shed,
            f"submitted={submitted} admitted={admitted} shed={shed}",
        )
    else:
        verdict("closed_accounting", True, "no admission gate in workload")

    # 2. No lost admissions: nothing hung past the workload timeout.
    lost = [
        i for i, outcome in enumerate(result.outcomes)
        if outcome["status"] == "lost"
    ]
    verdict(
        "no_lost_admissions",
        not lost,
        f"lost requests at indices {lost}" if lost else "",
    )

    # 3. Every ok response self-verifies (permutation layouts, HK floor).
    violations = [
        f"request {i}: {outcome['violation']}"
        for i, outcome in enumerate(result.outcomes)
        if outcome.get("violation")
    ]
    verdict(
        "responses_verified",
        not violations,
        "; ".join(violations[:3]),
    )

    # 4. Journal integrity and replayability.
    damage_excused = bool(armed & JOURNAL_DAMAGE_SITES)
    journal_problems = []
    for scrub in result.scrubs:
        if scrub.unreadable:
            journal_problems.append(f"{scrub.path}: unreadable")
        elif scrub.interior_corrupt and not damage_excused:
            journal_problems.append(
                f"{scrub.path}: interior corruption at lines "
                f"{scrub.interior_corrupt}"
            )
        elif scrub.torn_tail and not damage_excused:
            journal_problems.append(f"{scrub.path}: torn tail")
    verdict(
        "journal_replayable",
        not journal_problems,
        "; ".join(journal_problems[:3]),
    )

    # 5. Worker-count/fault invariance of results, vs the reference.
    excused = bool(armed & (DEGRADING_SITES | SHEDDING_SITES))
    if reference is None or excused:
        verdict(
            "results_match_reference", True,
            "excused: degrading/shedding sites armed" if excused
            else "no reference",
        )
    else:
        diffs = []
        ref = reference.outcomes
        if len(ref) != len(result.outcomes):
            diffs.append(
                f"outcome count {len(result.outcomes)} != {len(ref)}"
            )
        else:
            for i, (got, want) in enumerate(zip(result.outcomes, ref)):
                if (got["status"], got["signature"]) != (
                    want["status"], want["signature"]
                ):
                    diffs.append(
                        f"request {i}: {got['status']} != {want['status']}"
                    )
        verdict(
            "results_match_reference", not diffs, "; ".join(diffs[:3])
        )

    return report
