"""Fault schedules: which sites fire, and on which call index.

A schedule maps :class:`~repro.faults.FaultPlan` field names to trigger
call indices — ``{"journal_enospc": 3}`` fires the disk-full fault on
the third journal append of the replayed workload; ``{"shard_death":
(1, 4)}`` kills a shard on the first *and* fourth routed request.  The
schedule compiles 1:1 into a fault plan, and its canonical id
(``"journal_enospc@3+shard_death@1"``) is stable across runs, which is
what makes reports byte-comparable and corpus entries addressable.

Generation is deterministic by construction: schedules are derived only
from the sorted fault space, never from randomness or wall clocks, so
the same discovery pass always yields the same schedule list in the
same order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

from repro import faults
from repro.chaos.space import FaultSpace


def _norm_trigger(value) -> "int | tuple[int, ...]":
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    if isinstance(value, (tuple, list)):
        picks = tuple(sorted(int(v) for v in value))
        if len(picks) == 1:
            return picks[0]
        return picks
    raise ValueError(f"unsupported schedule trigger {value!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """One deterministic injection schedule over the fault space."""

    sites: tuple = field(default_factory=tuple)  # ((site, trigger), ...)

    @classmethod
    def of(cls, mapping: dict) -> "FaultSchedule":
        known = {
            f.name for f in fields(faults.FaultPlan)
            if not f.name.startswith("_")
        }
        items = []
        for site, trigger in sorted(mapping.items()):
            if site not in known:
                raise ValueError(f"unknown fault site {site!r}")
            items.append((site, _norm_trigger(trigger)))
        return cls(sites=tuple(items))

    @classmethod
    def from_atoms(cls, atoms: "list[tuple[str, int]]") -> "FaultSchedule":
        """Build from ``(site, index)`` atoms; duplicate sites merge into
        a multi-index trigger (the shrinker works on atoms)."""
        merged: dict[str, list[int]] = {}
        for site, index in atoms:
            merged.setdefault(site, []).append(int(index))
        return cls.of({site: picks for site, picks in merged.items()})

    def atoms(self) -> "list[tuple[str, int]]":
        """The schedule flattened to ``(site, index)`` pairs — the unit
        the delta-debugging shrinker removes one at a time."""
        out: list[tuple[str, int]] = []
        for site, trigger in self.sites:
            if isinstance(trigger, tuple):
                out.extend((site, index) for index in trigger)
            else:
                out.append((site, trigger))
        return out

    @property
    def schedule_id(self) -> str:
        parts = []
        for site, trigger in self.sites:
            if isinstance(trigger, tuple):
                parts.append(f"{site}@" + "+".join(str(i) for i in trigger))
            else:
                parts.append(f"{site}@{trigger}")
        return "+".join(parts) if parts else "fault-free"

    def to_plan(self) -> faults.FaultPlan:
        return faults.FaultPlan(**dict(self.sites))

    def to_json(self) -> dict:
        return {
            site: (list(trigger) if isinstance(trigger, tuple) else trigger)
            for site, trigger in self.sites
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSchedule":
        return cls.of(data)

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the CLI spelling: ``"journal_enospc@3+shard_death@1"``
        (``site@i`` atoms joined by ``+``; a repeated site merges)."""
        atoms: list[tuple[str, int]] = []
        for part in text.split("+"):
            part = part.strip()
            if not part:
                continue
            site, sep, index = part.partition("@")
            if not sep:
                raise ValueError(
                    f"bad schedule atom {part!r} (want site@index)"
                )
            atoms.append((site.strip(), int(index)))
        if not atoms:
            raise ValueError("empty schedule")
        return cls.from_atoms(atoms)


def _spread_indices(total: int, per_site: int) -> list[int]:
    """Up to ``per_site`` call indices spread across ``[1, total]``:
    always the first, then evenly spaced through the tail — edges and
    middle are where injection findings live."""
    if total <= 0:
        return []
    if per_site <= 1 or total == 1:
        return [1]
    picks = {1, total}
    step = max(1, total // per_site)
    index = 1 + step
    while len(picks) < per_site and index < total:
        picks.add(index)
        index += step
    return sorted(picks)[:per_site]


def single_fault_schedules(
    space: FaultSpace, *, per_site: int = 2
) -> list[FaultSchedule]:
    """One schedule per (site, spread index) point of the space."""
    out = []
    for site in space.sites():
        for index in _spread_indices(space.total(site), per_site):
            out.append(FaultSchedule.of({site: index}))
    return out


def pairwise_schedules(
    space: FaultSpace, *, limit: int = 16
) -> list[FaultSchedule]:
    """Bounded pairwise combinations, deterministically ordered.

    Pairs of *distinct* sites arm each site's first reached index; a
    same-site pair (only for sites consulted at least twice) compiles to
    a multi-index trigger — the "same fault strikes twice" family that
    single-fault sweeps can never cover.
    """
    sites = space.sites()
    out: list[FaultSchedule] = []
    for a, b in itertools.combinations_with_replacement(sites, 2):
        if len(out) >= limit:
            break
        if a == b:
            total = space.total(a)
            if total < 2:
                continue
            out.append(FaultSchedule.of({a: (1, total)}))
        else:
            out.append(FaultSchedule.of({a: 1, b: 1}))
    return out
