"""The reproducer corpus: minimized failing schedules as a regression gate.

Every schedule the explorer finds failing is shrunk to a 1-minimal
reproducer and written here as one JSON file, addressed by a hash of
its schedule id (stable names: re-finding the same bug never creates a
second file).  The corpus is committed; CI replays every entry on each
build.  The contract is the inverse of discovery: a corpus entry
records a schedule that failed *once* — after the fix lands, replaying
it must **pass**, forever.  A corpus replay failure is a regression of
a previously-fixed robustness bug, the cheapest kind to catch.

Entries carry the workload config they reproduce against, so the gate
keeps meaning even as default workload knobs drift.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from repro.chaos.schedule import FaultSchedule
from repro.chaos.workloads import WorkloadConfig

CORPUS_VERSION = 1


@dataclass
class CorpusEntry:
    """One committed minimal reproducer."""

    schedule: FaultSchedule
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Invariants the schedule failed when it was minimized (history,
    #: not a prediction: replays must pass once the bug is fixed).
    failed: list[str] = field(default_factory=list)
    note: str = ""
    path: str = ""

    def to_json(self) -> dict:
        return {
            "v": CORPUS_VERSION,
            "schedule": self.schedule.to_json(),
            "workload": self.workload.to_json(),
            "failed": list(self.failed),
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: dict, *, path: str = "") -> "CorpusEntry":
        if data.get("v") != CORPUS_VERSION:
            raise ValueError(
                f"unsupported corpus entry version {data.get('v')!r}"
            )
        return cls(
            schedule=FaultSchedule.from_json(data["schedule"]),
            workload=WorkloadConfig.from_json(data.get("workload", {})),
            failed=[str(name) for name in data.get("failed", [])],
            note=str(data.get("note", "")),
            path=path,
        )


def entry_filename(schedule: FaultSchedule) -> str:
    digest = hashlib.sha256(schedule.schedule_id.encode()).hexdigest()
    return f"{digest[:12]}.json"


def save_reproducer(
    corpus_dir: "str | pathlib.Path",
    schedule: FaultSchedule,
    *,
    workload: WorkloadConfig,
    failed: "list[str] | None" = None,
    note: str = "",
) -> "pathlib.Path | None":
    """Write one minimized reproducer; returns its path, or ``None`` if
    an entry for this exact schedule already exists (idempotent — CI
    re-finding a committed bug must not dirty the tree)."""
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / entry_filename(schedule)
    if path.exists():
        return None
    entry = CorpusEntry(
        schedule=schedule, workload=workload,
        failed=list(failed or []), note=note,
    )
    path.write_text(json.dumps(entry.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: "str | pathlib.Path") -> list[CorpusEntry]:
    """Every readable entry, sorted by filename (stable replay order).
    A malformed entry raises — a corrupt regression gate must be loud."""
    corpus_dir = pathlib.Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        data = json.loads(path.read_text())
        entries.append(CorpusEntry.from_json(data, path=str(path)))
    return entries
