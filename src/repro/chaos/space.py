"""The discovered fault space: what a record-mode workload pass reached.

Discovery runs the workload fault-free with
:func:`repro.faults.record_sites` armed: every hook consultation is
counted under ``(site, scope)``, where *site* is the
:class:`~repro.faults.FaultPlan` field name (so a schedule entry is
directly a plan kwarg) and *scope* labels the consulting context
(``"main"``, ``"shard-0"``, ...).  The resulting :class:`FaultSpace` is
the universe the explorer schedules over: site X with N consultations
has exactly N schedulable single-fault injection points, ``X@1``
through ``X@N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import SiteRecorder


@dataclass
class FaultSpace:
    """``{site: {scope: consultations}}`` from one discovery pass."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_recorder(cls, recorder: SiteRecorder) -> "FaultSpace":
        counts: dict[str, dict[str, int]] = {}
        for (site, scope), n in recorder.counts().items():
            counts.setdefault(site, {})[scope] = n
        return cls(counts=counts)

    def sites(self) -> list[str]:
        return sorted(self.counts)

    def total(self, site: str) -> int:
        """Consultations of ``site`` across all scopes — the number of
        distinct call indices a schedule may target."""
        return sum(self.counts.get(site, {}).values())

    def scopes(self, site: str) -> list[str]:
        return sorted(self.counts.get(site, {}))

    def to_json(self) -> dict:
        return {
            site: dict(sorted(scopes.items()))
            for site, scopes in sorted(self.counts.items())
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpace":
        return cls(counts={
            str(site): {str(scope): int(n) for scope, n in scopes.items()}
            for site, scopes in data.items()
        })
