"""repro.chaos: deterministic fault-space exploration.

The engine that turns the fault catalog (:mod:`repro.faults`) into a
correctness tool: discover every injection point a workload reaches,
replay single- and pairwise-fault schedules deterministically, judge
each run against the system-invariant suite, shrink failures to
minimal reproducers, and gate CI on the committed corpus.

    explorer = Explorer(ExploreConfig(workload=WorkloadConfig(requests=8)))
    report = explorer.explore()
    report.canonical()   # byte-identical across reruns and worker counts

CLI: ``repro chaos explore | replay | shrink`` and the offline journal
scrubber ``repro journal verify``.
"""

from repro.chaos.corpus import (
    CorpusEntry,
    entry_filename,
    load_corpus,
    save_reproducer,
)
from repro.chaos.explore import ExplorationReport, ExploreConfig, Explorer
from repro.chaos.invariants import (
    DEGRADING_SITES,
    JOURNAL_DAMAGE_SITES,
    SHEDDING_SITES,
    InvariantReport,
    check_invariants,
)
from repro.chaos.schedule import (
    FaultSchedule,
    pairwise_schedules,
    single_fault_schedules,
)
from repro.chaos.shrink import shrink, shrink_atoms
from repro.chaos.space import FaultSpace
from repro.chaos.workloads import (
    WORKLOAD_NAMES,
    WorkloadConfig,
    WorkloadResult,
    run_workload,
)

__all__ = [
    "DEGRADING_SITES",
    "JOURNAL_DAMAGE_SITES",
    "SHEDDING_SITES",
    "WORKLOAD_NAMES",
    "CorpusEntry",
    "ExplorationReport",
    "ExploreConfig",
    "Explorer",
    "FaultSchedule",
    "FaultSpace",
    "InvariantReport",
    "WorkloadConfig",
    "WorkloadResult",
    "check_invariants",
    "entry_filename",
    "load_corpus",
    "pairwise_schedules",
    "run_workload",
    "save_reproducer",
    "shrink",
    "shrink_atoms",
    "single_fault_schedules",
]
