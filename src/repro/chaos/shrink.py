"""Delta-debugging shrinker: failing schedule → minimal reproducer.

Classic ddmin over a schedule's ``(site, call_index)`` atoms: try ever
finer partitions, keep any complement that still fails, stop when no
single-atom removal preserves the failure.  The result is 1-minimal —
every remaining atom is load-bearing — which is exactly what a human
debugging the regression wants to read, and what the corpus commits.

After atom minimization, each surviving atom's call index is lowered
toward 1 (binary search) while the failure persists: ``site@17`` that
also fails as ``site@1`` reproduces in a fraction of the workload.

The ``fails`` predicate is injected (usually a closure over
:meth:`Explorer.run_schedule`), so tests can shrink against synthetic
oracles without paying for real workload replays.
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.schedule import FaultSchedule

Oracle = Callable[[FaultSchedule], bool]


def _chunks(atoms: list, n: int) -> list[list]:
    size, rem = divmod(len(atoms), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(atoms[start:end])
        start = end
    return out


def shrink_atoms(
    atoms: "list[tuple[str, int]]", fails: Oracle
) -> "list[tuple[str, int]]":
    """ddmin over the atom list; ``fails(schedule)`` must be True for the
    input and is preserved throughout."""
    atoms = list(atoms)
    n = 2
    while len(atoms) >= 2:
        reduced = False
        for chunk in _chunks(atoms, min(n, len(atoms))):
            complement = _complement(atoms, chunk)
            if complement and fails(FaultSchedule.from_atoms(complement)):
                atoms = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(atoms):
                break
            n = min(len(atoms), n * 2)
    return atoms


def _complement(atoms: list, chunk: list) -> list:
    remaining = list(atoms)
    for atom in chunk:
        remaining.remove(atom)
    return remaining


def lower_indices(
    atoms: "list[tuple[str, int]]", fails: Oracle
) -> "list[tuple[str, int]]":
    """Binary-search each surviving atom's call index toward 1 while the
    schedule still fails."""
    atoms = list(atoms)
    for position, (site, index) in enumerate(atoms):
        low, high = 1, index  # invariant: `high` fails; probe below it
        while low < high:
            mid = (low + high) // 2
            candidate = list(atoms)
            candidate[position] = (site, mid)
            if fails(FaultSchedule.from_atoms(candidate)):
                high = mid
            else:
                low = mid + 1
        atoms[position] = (site, high)
    return atoms


def shrink(schedule: FaultSchedule, fails: Oracle) -> FaultSchedule:
    """Shrink a failing schedule to a 1-minimal, index-lowered one.

    Raises ``ValueError`` if ``schedule`` does not fail in the first
    place — shrinking a passing schedule silently would commit a
    meaningless corpus entry.
    """
    if not fails(schedule):
        raise ValueError(
            f"schedule {schedule.schedule_id!r} does not fail; "
            "nothing to shrink"
        )
    atoms = shrink_atoms(schedule.atoms(), fails)
    atoms = lower_indices(atoms, fails)
    return FaultSchedule.from_atoms(atoms)
