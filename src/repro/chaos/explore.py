"""The fault-space exploration engine: discover → schedule → replay → check.

One exploration is four deterministic phases:

1. **Discovery** — run the workload fault-free with record mode armed
   (:func:`repro.faults.record_sites`) and the environment's chaos plan
   neutralized (:func:`repro.faults.chaos_override` with ``None``, so a
   CI job that exports ``$REPRO_CHAOS`` cannot leak nondeterminism into
   the pass).  This yields the :class:`FaultSpace` — every injection
   point the workload actually reaches — and the *reference* result the
   invariance checks compare against.
2. **Scheduling** — compile the space into single-fault schedules (a
   spread of call indices per site) and bounded pairwise schedules,
   both pure functions of the sorted space.
3. **Replay** — run the workload once per schedule with the schedule's
   plan armed **twice from one object**: installed in the submitting
   context (pipeline sites fire inside ``ctx.run``) *and* as the chaos
   override (journal/store/shard hooks consulted on worker and probe
   threads see the same plan and the same call counters).  Each run
   gets a cold universe (fresh temp dirs, cleared caches).
4. **Checking** — the invariant suite (:mod:`repro.chaos.invariants`)
   judges every run; failing schedules become corpus candidates for the
   shrinker.

``canonical_report`` serializes only schedule ids and verdict booleans,
so two explorations of the same space — rerun, or run at a different
worker count — must produce byte-identical canonical reports.  That
property is itself under test (``tests/chaos/``).
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
from dataclasses import dataclass, field

from repro import faults, obs
from repro.chaos.invariants import InvariantReport, check_invariants
from repro.chaos.schedule import (
    FaultSchedule,
    pairwise_schedules,
    single_fault_schedules,
)
from repro.chaos.space import FaultSpace
from repro.chaos.workloads import WorkloadConfig, WorkloadResult, run_workload


@dataclass
class ExploreConfig:
    """Knobs for one exploration."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Single-fault call indices scheduled per site.
    singles_per_site: int = 2
    #: Pairwise schedule budget (0 disables the pairwise phase).
    pairs: int = 12
    #: Extra schedules to replay (corpus entries, operator picks).
    extra: list[FaultSchedule] = field(default_factory=list)
    #: Where runs scratch; ``None`` = a private temp dir per run.
    workdir: str | None = None


@dataclass
class ExplorationReport:
    """Everything one exploration learned."""

    space: FaultSpace = field(default_factory=FaultSpace)
    reports: list[InvariantReport] = field(default_factory=list)
    #: Schedule ids whose invariant suite failed.
    failures: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "space": self.space.to_json(),
            "schedules": len(self.reports),
            "failures": list(self.failures),
            "runs": [report.to_json() for report in self.reports],
        }

    def canonical(self) -> str:
        """The byte-comparable determinism witness: schedule id →
        invariant booleans, canonical JSON, nothing run-dependent."""
        return json.dumps(
            {
                report.schedule_id: report.canonical()
                for report in self.reports
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class Explorer:
    """Drives one exploration; stateless between calls except config."""

    def __init__(self, config: ExploreConfig):
        self.config = config

    # - phases -

    def _fresh_dir(self, label: str) -> pathlib.Path:
        if self.config.workdir is not None:
            base = pathlib.Path(self.config.workdir)
            base.mkdir(parents=True, exist_ok=True)
            path = pathlib.Path(tempfile.mkdtemp(prefix=label, dir=base))
        else:
            path = pathlib.Path(tempfile.mkdtemp(prefix=f"repro-chaos-{label}"))
        return path

    def discover(self) -> "tuple[FaultSpace, WorkloadResult]":
        """Phase 1: record-mode, fault-free reference pass."""
        workdir = self._fresh_dir("discover-")
        try:
            with faults.chaos_override(None), faults.record_sites() as rec:
                reference = run_workload(self.config.workload, workdir)
            return FaultSpace.from_recorder(rec), reference
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def schedules(self, space: FaultSpace) -> list[FaultSchedule]:
        """Phase 2: the deterministic schedule list."""
        out = single_fault_schedules(
            space, per_site=self.config.singles_per_site
        )
        if self.config.pairs > 0:
            out.extend(pairwise_schedules(space, limit=self.config.pairs))
        seen = set()
        unique = []
        for schedule in out + list(self.config.extra):
            if schedule.schedule_id in seen:
                continue
            seen.add(schedule.schedule_id)
            unique.append(schedule)
        return unique

    def run_schedule(
        self,
        schedule: FaultSchedule,
        reference: "WorkloadResult | None",
    ) -> InvariantReport:
        """Phase 3+4 for one schedule: replay cold, then judge."""
        workdir = self._fresh_dir("run-")
        plan = schedule.to_plan()
        try:
            # One plan, armed on both paths: the submitting context (so
            # pipeline sites consulted inside ctx.run fire) and the
            # process-wide chaos override (so journal appends on the
            # worker thread, shard probes, and store writes see the same
            # schedule with shared call counters).  chaos_override also
            # shadows any $REPRO_CHAOS in the environment.
            with faults.chaos_override(plan), faults.install_plan(plan):
                result = run_workload(self.config.workload, workdir)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return check_invariants(schedule, result, reference)

    def explore(self, *, progress=None) -> ExplorationReport:
        """The whole engine, start to finish."""
        report = ExplorationReport()
        with obs.span("chaos:discover"):
            space, reference = self.discover()
        report.space = space
        schedules = self.schedules(space)
        for index, schedule in enumerate(schedules):
            if progress is not None:
                progress(index, len(schedules), schedule)
            with obs.span("chaos:replay", schedule=schedule.schedule_id):
                inv = self.run_schedule(schedule, reference)
            report.reports.append(inv)
            if not inv.ok:
                report.failures.append(inv.schedule_id)
        return report
