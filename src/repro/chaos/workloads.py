"""Deterministic workloads the explorer discovers and replays against.

Two workload shapes, both driven strictly sequentially — submit, await,
next — so every fault site's call index is a pure function of request
order, never of thread timing.  That sequencing is what makes a
schedule like ``journal_enospc@3`` mean the *same* append on every
replay, for any worker count:

* ``service-burst`` — a shard tier (the full serving stack: admission,
  journals, breakers, probe-driven restart, failover) serving a burst
  of distinct alignment requests with a fresh artifact store.  This is
  the richest fault surface: solver/bound sites inside the worker,
  store sites around the cache, journal sites on every append, shard
  sites per routed request, clock skew on every completion.
* ``pipeline-sweep`` — bare :func:`repro.core.align_program` over the
  same programs: the executor/store surface without any serving tier
  in the way, for fault findings that need a minimal repro.

Every run gets a cold, private universe (fresh temp store + journal
dirs, cleared artifact cache) so injected faults stay reachable across
replays instead of being hidden by a warm cache.

Outcome signatures hash only the *semantic* response fields — status,
layouts, costs, penalty — never ids, latencies, or breaker state, so a
failover re-solve that lands the same layout compares equal to the
reference and thread-timing jitter cannot leak into verdicts.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.pipeline.artifacts import (
    ArtifactStore,
    reset_artifact_cache,
    reset_default_store,
    set_default_store,
)
from repro.service.core import ServiceConfig
from repro.service.scrub import JournalScrub, scrub_path
from repro.service.shard import ShardSupervisor, ShardTierConfig

WORKLOAD_NAMES = ("service-burst", "pipeline-sweep")

#: A tiny branchy program (loop + chained ifs) that still solves in
#: milliseconds; the per-request seed and inputs vary so keys differ.
_SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    if (v % 3 == 0) { acc = acc + v; } else { acc = acc - 1; }
    if (v > 7) { acc = acc + 2; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


@dataclass
class WorkloadConfig:
    """Knobs for one workload run (kept JSON-round-trippable so corpus
    entries can pin the exact workload they reproduce against)."""

    name: str = "service-burst"
    requests: int = 8
    shards: int = 2
    capacity: int = 8
    #: Pipeline ``--jobs`` for both workloads.  Results must be
    #: worker-count invariant, so explorations at ``jobs=1`` and
    #: ``jobs=4`` must produce byte-identical canonical reports — that
    #: is itself one of the explorer's guarantees under test.
    jobs: int = 1
    #: Await timeout per request — a request still unresolved after this
    #: is a *lost admission*, the invariant hangs are caught by.
    timeout_s: float = 60.0

    def to_json(self) -> dict:
        return {
            "name": self.name, "requests": self.requests,
            "shards": self.shards, "capacity": self.capacity,
            "jobs": self.jobs, "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "WorkloadConfig":
        cfg = cls()
        for key in ("name", "requests", "shards", "capacity", "jobs",
                    "timeout_s"):
            if key in data:
                setattr(cfg, key, data[key])
        return cfg


@dataclass
class WorkloadResult:
    """What one workload run produced, shaped for invariant checking."""

    #: Per-request outcome, in submission order: ``{"status": ...,
    #: "signature": ...}`` where status is ``ok``/``quarantined``/
    #: ``error:<Type>``/``lost`` and signature hashes the semantic
    #: response fields (``None`` for non-ok outcomes).
    outcomes: list[dict] = field(default_factory=list)
    #: Tier snapshot after drain (``None`` for pipeline-sweep).
    snapshot: dict | None = None
    #: Post-drain scrub of every journal the run wrote.
    scrubs: list[JournalScrub] = field(default_factory=list)
    #: The artifact store ended the run in sticky read-only mode.
    store_degraded: bool = False
    #: Any journal ended the run in degraded-durability mode.
    journal_degraded: bool = False


def response_signature(response: dict) -> str:
    """Hash of the response's semantic content only."""
    semantic = {
        "status": response.get("status"),
        "layouts": response.get("layouts"),
        "costs": response.get("costs"),
        "penalty": (response.get("penalty") or {}).get("total"),
    }
    canonical = json.dumps(
        semantic, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def response_valid(response: dict) -> "str | None":
    """Check one ok response's tour validity and Held–Karp floor from
    the response alone; returns a violation string or ``None``."""
    layouts = response.get("layouts") or {}
    costs = response.get("costs") or {}
    bounds = response.get("bounds") or {}
    for name, order in layouts.items():
        if sorted(order) != list(range(len(order))):
            return f"layout for {name!r} is not a permutation"
    for name, floor in bounds.items():
        cost = costs.get(name)
        if cost is not None and floor is not None and cost < floor - 1e-6:
            return (
                f"cost {cost} for {name!r} beats its Held–Karp floor "
                f"{floor}"
            )
    return None


def payloads_for(config: WorkloadConfig) -> list[dict]:
    """The run's request payloads: distinct seeds over the same branchy
    program, Held–Karp bounds on so every response carries its floor."""
    return [
        {
            "source": _SOURCE,
            "method": "tsp",
            "seed": i,
            "inputs": list(range(6 + (i % 5))),
            "bound": True,
        }
        for i in range(config.requests)
    ]


def _outcome(status: str, response: "dict | None" = None) -> dict:
    out: dict = {"status": status, "signature": None}
    if response is not None and response.get("status") == "ok":
        out["signature"] = response_signature(response)
        violation = response_valid(response)
        if violation is not None:
            out["violation"] = violation
    return out


def run_service_burst(
    config: WorkloadConfig, workdir: pathlib.Path
) -> WorkloadResult:
    """The service burst: a shard tier + fresh store, driven serially."""
    workdir = pathlib.Path(workdir)
    journal_dir = workdir / "journal"
    reset_artifact_cache()
    store = ArtifactStore(workdir / "store")
    set_default_store(store)
    tier = ShardSupervisor(ShardTierConfig(
        shards=config.shards,
        journal_dir=str(journal_dir),
        hedge_after_ms=None,
        probe_interval_s=0.02,
        wedge_timeout_s=0.25,
        service=ServiceConfig(
            capacity=config.capacity, jobs=max(1, config.jobs), verify=True
        ),
    ))
    tier.start()
    result = WorkloadResult()
    try:
        for payload in payloads_for(config):
            try:
                handle = tier.submit(payload)
                response = handle.result(timeout=config.timeout_s)
            except TimeoutError:
                result.outcomes.append(_outcome("lost"))
                continue
            except ReproError as exc:
                result.outcomes.append(_outcome(f"error:{type(exc).__name__}"))
                continue
            result.outcomes.append(
                _outcome(response.get("status", "unknown"), response)
            )
        tier.drain(timeout=30.0)
        result.snapshot = tier.snapshot()
    finally:
        try:
            tier.drain(timeout=5.0)
        except Exception:  # noqa: BLE001 — teardown must not mask outcomes
            pass
        reset_default_store()
        reset_artifact_cache()
    result.store_degraded = store.degraded
    if journal_dir.exists():
        result.scrubs = scrub_path(journal_dir)
    for shard in (result.snapshot or {}).get("shards", []):
        journal = (shard.get("service") or {}).get("journal") or {}
        if journal.get("degraded"):
            result.journal_degraded = True
    return result


def run_pipeline_sweep(
    config: WorkloadConfig, workdir: pathlib.Path
) -> WorkloadResult:
    """Bare pipeline alignment at ``jobs>1``: the executor-site surface."""
    from repro.core import align_program, evaluate_program
    from repro.lang import compile_source, run_and_profile
    from repro.machine.models import ALPHA_21164 as model

    workdir = pathlib.Path(workdir)
    reset_artifact_cache()
    store = ArtifactStore(workdir / "store")
    set_default_store(store)
    result = WorkloadResult()
    try:
        for payload in payloads_for(config):
            try:
                module = compile_source(payload["source"])
                _, profile = run_and_profile(module, payload["inputs"])
                layouts = align_program(
                    module.program, profile,
                    method="tsp", model=model,
                    seed=payload["seed"], jobs=config.jobs,
                )
                penalty = evaluate_program(
                    module.program, layouts, profile, model
                )
            except ReproError as exc:
                result.outcomes.append(_outcome(f"error:{type(exc).__name__}"))
                continue
            response = {
                "status": "ok",
                "layouts": {
                    name: list(layout.order)
                    for name, layout in layouts.layouts.items()
                },
                "costs": {},
                "penalty": {"total": penalty.total},
            }
            result.outcomes.append(_outcome("ok", response))
    finally:
        reset_default_store()
        reset_artifact_cache()
    result.store_degraded = store.degraded
    return result


def run_workload(
    config: WorkloadConfig, workdir: "str | pathlib.Path"
) -> WorkloadResult:
    if config.name == "service-burst":
        return run_service_burst(config, pathlib.Path(workdir))
    if config.name == "pipeline-sweep":
        return run_pipeline_sweep(config, pathlib.Path(workdir))
    raise ValueError(
        f"unknown workload {config.name!r} (want one of {WORKLOAD_NAMES})"
    )
