"""Hot/cold block splitting.

A code-placement refinement from the Pettis–Hansen lineage: blocks that
never execute under the training profile ("fluff") are moved to the end of
the procedure so the hot region stays dense in the instruction cache.  The
control-penalty cost of a layout is unaffected — unexecuted blocks
contribute zero penalty wherever they sit, which is exactly why the DTSP
reduction is free to place them arbitrarily — but cache density is not,
and the timing simulator sees the difference.

Applied as a post-pass over any aligner's layout, preserving the relative
order within the hot and cold regions.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.layout import Layout, ProgramLayout
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile


def split_hot_cold(
    cfg: ControlFlowGraph,
    layout: Layout,
    profile: EdgeProfile,
    *,
    threshold: int = 0,
) -> Layout:
    """Move cold blocks (executed ``<= threshold`` times) after hot ones.

    The entry block always stays first, even if it never executed.
    """
    layout.check_against(cfg)

    def heat(block_id: int) -> int:
        executed = profile.block_exit_count(block_id)
        if executed == 0:
            # Exit blocks have no out-edges; use in-flow for them.
            executed = profile.block_entry_count(block_id)
        return executed

    hot = [
        b for b in layout.order
        if b == cfg.entry or heat(b) > threshold
    ]
    cold = [b for b in layout.order if b not in set(hot)]
    return Layout((*hot, *cold))


def split_program_hot_cold(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    *,
    threshold: int = 0,
) -> ProgramLayout:
    """Apply :func:`split_hot_cold` to every procedure."""
    result = ProgramLayout()
    for proc in program:
        edge_profile = profile.procedures.get(proc.name, EdgeProfile())
        result[proc.name] = split_hot_cold(
            proc.cfg, layouts[proc.name], edge_profile, threshold=threshold
        )
    return result


def cold_fraction(
    cfg: ControlFlowGraph, profile: EdgeProfile, *, threshold: int = 0
) -> float:
    """Share of the procedure's code words that are cold — a quick measure
    of how much fluff splitting can push out of the hot region."""
    total = hot_words = 0
    for block in cfg:
        words = block.body_words + 1
        total += words
        executed = profile.block_exit_count(block.block_id)
        if executed == 0:
            executed = profile.block_entry_count(block.block_id)
        if executed > threshold or block.block_id == cfg.entry:
            hot_words += words
    if total == 0:
        return 0.0
    return 1.0 - hot_words / total
