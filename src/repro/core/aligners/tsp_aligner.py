"""The paper's contribution: near-optimal alignment via the DTSP reduction.

Build the §2.2 cost matrix, solve the DTSP with iterated 3-Opt (exact DP on
small procedures), and read the tour back as a layout.  Also exposes the
per-procedure Held–Karp lower bound — the provable floor under any layout's
control penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph
from repro.core.costmatrix import AlignmentInstance, build_alignment_instance
from repro.core.layout import Layout, original_layout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile
from repro.tsp.branch_and_bound import branch_and_bound
from repro.tsp.held_karp import held_karp_bound_directed
from repro.tsp.solve import DEFAULT, Effort, get_effort, solve_dtsp


@dataclass
class TspAlignment:
    """Result of aligning one procedure via the DTSP reduction."""

    layout: Layout
    cost: float                     # penalty cycles of the layout
    instance: AlignmentInstance
    runs_finding_best: int = 0
    runs_total: int = 0


def tsp_align(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
) -> TspAlignment:
    """Align one procedure, returning the layout and solver diagnostics."""
    effort = get_effort(effort)
    instance = build_alignment_instance(cfg, profile, model, predictor=predictor)
    if len(cfg) <= 2 or profile.total() == 0:
        layout = original_layout(cfg)
        return TspAlignment(
            layout=layout,
            cost=instance.layout_cost(layout),
            instance=instance,
        )
    result = solve_dtsp(instance.matrix, effort=effort, seed=seed)
    layout = instance.layout_from_cycle(result.tour)
    if result.cost >= instance.big:
        # The solver failed to avoid a forbidden edge (cannot happen with an
        # identity start in the mix, but fail safe rather than corrupt).
        layout = original_layout(cfg)
        return TspAlignment(
            layout=layout,
            cost=instance.layout_cost(layout),
            instance=instance,
        )
    return TspAlignment(
        layout=layout,
        cost=result.cost,
        instance=instance,
        runs_finding_best=result.runs_finding_best,
        runs_total=len(result.runs),
    )


def alignment_lower_bound(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    instance: AlignmentInstance | None = None,
    upper_bound: float | None = None,
    iterations: int | None = None,
    exact_nodes: int = 20_000,
) -> float:
    """Certified lower bound on the procedure's achievable control penalty.

    No layout of this procedure can have a smaller total penalty under this
    profile and machine model.  The bound is the branch-and-bound optimum
    when it certifies within ``exact_nodes`` subproblems (alignment
    instances usually certify in well under a hundred nodes), otherwise the
    Held–Karp subgradient bound — the paper's appendix bound.  Pass
    ``exact_nodes=0`` to force pure Held–Karp.
    """
    if profile.total() == 0:
        return 0.0
    if instance is None:
        instance = build_alignment_instance(cfg, profile, model)
    if upper_bound is None:
        # A tight upper bound keeps the subgradient step sizes sane; a quick
        # heuristic tour is far tighter than the original layout.
        quick = solve_dtsp(instance.matrix, effort="quick")
        upper_bound = min(
            instance.layout_cost(original_layout(cfg)), quick.cost
        )
    if exact_nodes > 0:
        exact = branch_and_bound(
            instance.matrix, upper_bound=upper_bound, max_nodes=exact_nodes
        )
        if exact.optimal:
            return min(exact.cost, upper_bound)
    result = held_karp_bound_directed(
        instance.matrix, tour_upper_bound=upper_bound, iterations=iterations
    )
    return min(result.bound, upper_bound)
