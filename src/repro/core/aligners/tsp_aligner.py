"""The paper's contribution: near-optimal alignment via the DTSP reduction.

Build the §2.2 cost matrix, solve the DTSP with iterated 3-Opt (exact DP on
small procedures), and read the tour back as a layout.  Also exposes the
per-procedure Held–Karp lower bound — the provable floor under any layout's
control penalty.

Resilience: the aligner is a best-effort pass.  When the solver exhausts
its :class:`~repro.budget.Budget` (or a fault is injected), it *degrades*
instead of raising, stepping down a ladder of ever-cheaper rungs:

    tsp (full solve) → construction (best of greedy-edge / nearest-neighbor
    / identity tours, plus any tour salvaged from the interrupted solve)
    → greedy (Pettis–Hansen chaining) → original (no reordering)

Every rung yields a valid, penalty-evaluable layout; the construction rung
always considers the identity tour, so a degraded result is never worse
than the original layout under the training profile.  The rung used is
recorded on the returned :class:`TspAlignment` together with a structured
warning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import faults
from repro.budget import Budget, BudgetTimer, ensure_timer
from repro.cfg.graph import ControlFlowGraph
from repro.core.aligners.greedy import pettis_hansen_layout
from repro.core.costmatrix import AlignmentInstance, build_alignment_instance
from repro.core.layout import Layout, original_layout
from repro.errors import ReproError, SolverBudgetExceeded
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile
from repro.tsp.branch_and_bound import branch_and_bound
from repro.tsp.construction import (
    greedy_edge_tour,
    identity_tour,
    nearest_neighbor_tour,
)
from repro.tsp.held_karp import held_karp_bound_directed
from repro.tsp.instance import tour_cost
from repro.tsp.solve import DEFAULT, Effort, get_effort, solve_dtsp

#: Rung names of the degradation ladder, in order of decreasing quality.
DEGRADATION_RUNGS = ("none", "construction", "greedy", "original")


@dataclass
class TspAlignment:
    """Result of aligning one procedure via the DTSP reduction."""

    layout: Layout
    cost: float                     # penalty cycles of the layout
    instance: AlignmentInstance
    runs_finding_best: int = 0
    runs_total: int = 0
    #: Which ladder rung produced the layout ("none" = the full TSP solve).
    degraded: str = "none"
    #: Human-readable reason when ``degraded != "none"``.
    warning: str | None = None


def _best_construction_layout(
    instance: AlignmentInstance,
    seed: int,
    salvaged: list[list[int]],
) -> tuple[Layout, float]:
    """The construction rung: cheapest of the deterministic construction
    tours and any tour salvaged from an interrupted solve.

    The identity tour (= the original layout) is always a candidate, so the
    result never costs more than the original layout.
    """
    rng = random.Random(seed)
    n = instance.n
    candidates: list[list[int]] = [identity_tour(n)]
    candidates.extend(list(tour) for tour in salvaged)
    try:
        candidates.append(greedy_edge_tour(instance.matrix, rng, jitter=0.0))
    except Exception:  # noqa: BLE001 — a broken heuristic must not block the rung
        pass
    try:
        candidates.append(
            nearest_neighbor_tour(instance.matrix, rng, candidates=1)
        )
    except Exception:  # noqa: BLE001
        pass
    best = min(candidates, key=lambda tour: tour_cost(instance.matrix, tour))
    layout = instance.layout_from_cycle(best)
    return layout, instance.layout_cost(layout)


def tsp_align(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | BudgetTimer | None = None,
    instance: AlignmentInstance | None = None,
) -> TspAlignment:
    """Align one procedure, returning the layout and solver diagnostics.

    Never raises :class:`~repro.errors.SolverBudgetExceeded`: on budget
    expiry (or injected fault) the result comes from a cheaper rung of the
    degradation ladder, recorded in ``degraded``/``warning``.

    ``instance`` optionally supplies a pre-built DTSP instance for this
    exact (cfg, profile, model, predictor) — the pipeline's content-
    addressed cache passes one in so repeated solves share the matrix.
    """
    effort = get_effort(effort)
    if instance is None:
        instance = build_alignment_instance(
            cfg, profile, model, predictor=predictor
        )
    if len(cfg) <= 2 or profile.total() == 0:
        layout = original_layout(cfg)
        return TspAlignment(
            layout=layout,
            cost=instance.layout_cost(layout),
            instance=instance,
        )

    timer = ensure_timer(budget)
    salvaged: list[list[int]] = []
    warning: str
    try:
        result = solve_dtsp(
            instance.matrix, effort=effort, seed=seed, budget=timer
        )
        if result.cost < instance.big:
            return TspAlignment(
                layout=instance.layout_from_cycle(result.tour),
                cost=result.cost,
                instance=instance,
                runs_finding_best=result.runs_finding_best,
                runs_total=len(result.runs),
            )
        # The solver failed to avoid a forbidden edge (cannot happen with an
        # identity start in the mix, but fail safe rather than corrupt).
        warning = "solver tour used a forbidden edge"
    except SolverBudgetExceeded as exc:
        warning = str(exc)
        if exc.best_so_far is not None:
            salvaged.append(exc.best_so_far)

    # Rung: best construction tour (identity always included, so never
    # worse than the original layout).
    try:
        faults.check_construction_failure()
        layout, cost = _best_construction_layout(instance, seed, salvaged)
        if cost < instance.big:
            return TspAlignment(
                layout=layout,
                cost=cost,
                instance=instance,
                degraded="construction",
                warning=warning,
            )
        warning += "; construction tour used a forbidden edge"
    except (ReproError, ValueError) as exc:
        warning += f"; construction rung failed: {exc}"

    # Rung: greedy (Pettis–Hansen) alignment.  Greedy chaining is not
    # guaranteed to beat the original order, so keep whichever is cheaper —
    # every rung of the ladder is never worse than no reordering.
    try:
        faults.check_greedy_failure()
        layout = pettis_hansen_layout(cfg, profile)
        cost = instance.layout_cost(layout)
        fallback = original_layout(cfg)
        fallback_cost = instance.layout_cost(fallback)
        if fallback_cost < cost:
            layout, cost = fallback, fallback_cost
        return TspAlignment(
            layout=layout,
            cost=cost,
            instance=instance,
            degraded="greedy",
            warning=warning,
        )
    except (ReproError, ValueError) as exc:
        warning += f"; greedy rung failed: {exc}"

    # Rung of last resort: the original layout, which always exists.
    layout = original_layout(cfg)
    return TspAlignment(
        layout=layout,
        cost=instance.layout_cost(layout),
        instance=instance,
        degraded="original",
        warning=warning,
    )


def alignment_lower_bound(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    instance: AlignmentInstance | None = None,
    upper_bound: float | None = None,
    iterations: int | None = None,
    exact_nodes: int = 20_000,
    budget: Budget | BudgetTimer | None = None,
) -> float:
    """Certified lower bound on the procedure's achievable control penalty.

    No layout of this procedure can have a smaller total penalty under this
    profile and machine model.  The bound is the branch-and-bound optimum
    when it certifies within ``exact_nodes`` subproblems (alignment
    instances usually certify in well under a hundred nodes), otherwise the
    Held–Karp subgradient bound — the paper's appendix bound.  Pass
    ``exact_nodes=0`` to force pure Held–Karp.

    Degrades, never raises: on an exhausted budget (or injected fault) the
    loosest certified bound — 0.0, since penalties are non-negative — is
    returned.
    """
    if profile.total() == 0:
        return 0.0
    timer = ensure_timer(budget)
    try:
        faults.check_bound_timeout()
        if instance is None:
            instance = build_alignment_instance(cfg, profile, model)
        if upper_bound is None:
            # A tight upper bound keeps the subgradient step sizes sane; a
            # quick heuristic tour is far tighter than the original layout.
            original_cost = instance.layout_cost(original_layout(cfg))
            try:
                quick = solve_dtsp(instance.matrix, effort="quick", budget=timer)
                upper_bound = min(original_cost, quick.cost)
            except SolverBudgetExceeded:
                upper_bound = original_cost
        if exact_nodes > 0:
            exact = branch_and_bound(
                instance.matrix,
                upper_bound=upper_bound,
                max_nodes=exact_nodes,
                budget=timer,
            )
            if exact.optimal:
                return min(exact.cost, upper_bound)
        result = held_karp_bound_directed(
            instance.matrix,
            tour_upper_bound=upper_bound,
            iterations=iterations,
            budget=timer,
        )
        return min(result.bound, upper_bound)
    except SolverBudgetExceeded:
        return 0.0
