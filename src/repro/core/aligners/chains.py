"""Chain machinery shared by the greedy aligners.

Both greedy aligners (Pettis–Hansen-style frequency greedy and the
Calder–Grunwald-style cost-weighted variant) work the same way: consider
CFG edges in priority order, gluing blocks into chains when the edge's head
is still a chain tail and its target is still a chain head (§2.1's two
checks: endpoint availability and no layout cycle — the latter is automatic
because chains are acyclic paths).  The aligners differ only in the edge
priority function and are built on this module.
"""

from __future__ import annotations

from typing import Callable

from repro.cfg.graph import ControlFlowGraph
from repro.core.layout import Layout
from repro.profiles.edge_profile import EdgeProfile


class ChainSet:
    """Disjoint chains (paths) over block ids, merged head-to-tail."""

    def __init__(self, block_ids: list[int]):
        self._chain_of: dict[int, int] = {b: b for b in block_ids}
        self._chains: dict[int, list[int]] = {b: [b] for b in block_ids}

    def chain_id(self, block_id: int) -> int:
        return self._chain_of[block_id]

    def chain(self, chain_id: int) -> list[int]:
        return self._chains[chain_id]

    def is_tail(self, block_id: int) -> bool:
        return self._chains[self._chain_of[block_id]][-1] == block_id

    def is_head(self, block_id: int) -> bool:
        return self._chains[self._chain_of[block_id]][0] == block_id

    def try_link(self, src: int, dst: int) -> bool:
        """Append dst's chain after src's chain when legal (src is a chain
        tail, dst is a chain head, different chains).  Returns success."""
        src_chain = self._chain_of[src]
        dst_chain = self._chain_of[dst]
        if src_chain == dst_chain:
            return False
        if not self.is_tail(src) or not self.is_head(dst):
            return False
        merged = self._chains.pop(dst_chain)
        self._chains[src_chain].extend(merged)
        for block_id in merged:
            self._chain_of[block_id] = src_chain
        return True

    def chains(self) -> list[list[int]]:
        return list(self._chains.values())


def greedy_chain_layout(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    priority: Callable[[int, int, int], float],
    *,
    preset_chains: list[list[int]] | None = None,
) -> Layout:
    """Build a layout by greedy chaining.

    ``priority(src, dst, count)`` scores each profiled CFG edge; edges are
    processed in decreasing score order (deterministic tie-break on the
    edge key).  Chains are then emitted: the entry's chain first, remaining
    chains by decreasing executed weight — hot code stays dense up front,
    which is also what keeps the instruction cache happy.

    ``preset_chains`` pre-links block sequences before any edges are
    considered (used by the exhaustive hot-set variant).
    """
    chains = ChainSet(cfg.block_ids)
    for preset in preset_chains or ():
        for src, dst in zip(preset, preset[1:]):
            chains.try_link(src, dst)
    scored = []
    for (src, dst), count in profile.counts.items():
        if count <= 0 or src == dst:
            continue
        if src not in cfg or dst not in cfg.successors(src):
            continue
        scored.append((priority(src, dst, count), src, dst))
    scored.sort(key=lambda item: (-item[0], item[1], item[2]))
    for score, src, dst in scored:
        if score <= 0:
            break
        chains.try_link(src, dst)

    def chain_weight(chain: list[int]) -> float:
        return sum(profile.block_exit_count(b) for b in chain)

    entry_chain = chains.chain_id(cfg.entry)
    ordered = sorted(
        chains.chains(),
        key=lambda chain: (
            chain[0] != chains.chain(entry_chain)[0],
            -chain_weight(chain),
            chain[0],
        ),
    )
    # The entry must be first *within* its chain too; if something was glued
    # in front of the entry, rotate the entry's chain.  (Edges into the
    # entry do get linked by the greedy pass; a real compiler would simply
    # not consider them, so drop the prefix to the back.)
    order: list[int] = []
    for chain in ordered:
        if cfg.entry in chain and chain[0] != cfg.entry:
            at = chain.index(cfg.entry)
            chain = chain[at:] + chain[:at]
        order.extend(chain)
    return Layout(tuple(order))
