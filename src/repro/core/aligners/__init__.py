"""Branch-alignment algorithms: greedy baselines, the TSP aligner, and
the Ext-TSP chain-merge heuristics."""

from repro.core.aligners.chains import ChainSet, greedy_chain_layout
from repro.core.aligners.exttsp_merge import (
    MergeStats,
    chain_merge_layout,
    exttsp_layout,
)
from repro.core.aligners.greedy import calder_grunwald_layout, pettis_hansen_layout
from repro.core.aligners.tsp_aligner import (
    TspAlignment,
    alignment_lower_bound,
    tsp_align,
)

__all__ = [
    "ChainSet",
    "MergeStats",
    "TspAlignment",
    "alignment_lower_bound",
    "calder_grunwald_layout",
    "chain_merge_layout",
    "exttsp_layout",
    "greedy_chain_layout",
    "pettis_hansen_layout",
    "tsp_align",
]
