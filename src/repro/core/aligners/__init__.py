"""Branch-alignment algorithms: greedy baselines and the TSP aligner."""

from repro.core.aligners.chains import ChainSet, greedy_chain_layout
from repro.core.aligners.greedy import calder_grunwald_layout, pettis_hansen_layout
from repro.core.aligners.tsp_aligner import (
    TspAlignment,
    alignment_lower_bound,
    tsp_align,
)

__all__ = [
    "ChainSet",
    "TspAlignment",
    "alignment_lower_bound",
    "calder_grunwald_layout",
    "greedy_chain_layout",
    "pettis_hansen_layout",
    "tsp_align",
]
