"""The two greedy baselines.

* :func:`pettis_hansen_layout` — the paper's "greedy" baseline: edges
  prioritized purely by execution frequency (Pettis & Hansen 1990 bottom-up
  basic-block positioning), the algorithm "used as a basis for our greedy
  implementation" (§5).
* :func:`calder_grunwald_layout` — the cost-weighted variant in the spirit
  of Calder & Grunwald 1994, who "expose the details of the underlying
  microarchitecture to better estimate the cost of control penalties": the
  edge priority is the penalty saved by making the edge a fall-through
  instead of leaving the block unplaced, under the machine's penalty model.

Both share the chain machinery in :mod:`repro.core.aligners.chains`; the
paper's central question — how much does *any* greedy leave on the table —
is answered by comparing them against the TSP aligner and the Held–Karp
lower bound.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph
from repro.core.aligners.chains import greedy_chain_layout
from repro.core.costmodel import successor_counts, terminator_cost
from repro.core.layout import Layout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile


def pettis_hansen_layout(cfg: ControlFlowGraph, profile: EdgeProfile) -> Layout:
    """Frequency-greedy chaining: hotter edges become fall-throughs first."""
    return greedy_chain_layout(cfg, profile, lambda src, dst, count: float(count))


def calder_grunwald_layout(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
    exhaustive_edges: int = 0,
    max_hot_blocks: int = 6,
) -> Layout:
    """Cost-weighted greedy chaining.

    The priority of edge (B, X) is the penalty saved at B's end by laying X
    immediately after B, relative to giving B no useful successor at all —
    the microarchitecture-aware analogue of raw frequency.

    With ``exhaustive_edges > 0`` the second Calder–Grunwald improvement is
    applied: the blocks touched by the hottest ``exhaustive_edges`` edges
    (capped at ``max_hot_blocks``) are ordered by *exhaustive search* over
    all permutations, and that chain seeds the greedy pass — "an
    alternative greedy heuristic that exhaustively searches all orders of
    the basic blocks touched by the 15 most frequently-executed edges" (§5).
    """
    if predictor is None:
        predictor = StaticPredictor.train(cfg, profile)

    savings_cache: dict[int, tuple[float, dict[int, float]]] = {}

    def block_costs(src: int) -> tuple[float, dict[int, float]]:
        cached = savings_cache.get(src)
        if cached is not None:
            return cached
        block = cfg.block(src)
        counts = successor_counts(profile.counts, block)
        predicted = predictor.predict(src)
        worst = terminator_cost(block, counts, predicted, None, model).total
        per_successor = {
            succ: terminator_cost(block, counts, predicted, succ, model).total
            for succ in block.successors
        }
        savings_cache[src] = (worst, per_successor)
        return worst, per_successor

    def priority(src: int, dst: int, count: int) -> float:
        worst, per_successor = block_costs(src)
        return worst - per_successor.get(dst, worst)

    if exhaustive_edges <= 0:
        return greedy_chain_layout(cfg, profile, priority)
    return _exhaustive_search(
        cfg, profile, model, predictor, priority, block_costs,
        exhaustive_edges, max_hot_blocks,
    )


def _exhaustive_search(
    cfg, profile, model, predictor, priority, block_costs,
    exhaustive_edges: int, max_hot_blocks: int,
) -> Layout:
    """Try every order of the hottest blocks, completing each candidate
    with the greedy pass and keeping the cheapest evaluated layout —
    faithful to Calder & Grunwald's description of a heuristic that
    "exhaustively searches all orders of the basic blocks touched by the
    15 most frequently-executed edges" and "runs in a few minutes" (§5).
    """
    import itertools

    from repro.core.evaluate import evaluate_layout

    hot_blocks = _hot_block_set(cfg, profile, exhaustive_edges, max_hot_blocks)
    baseline = greedy_chain_layout(cfg, profile, priority)
    best_layout = baseline
    best_cost = evaluate_layout(
        cfg, baseline, profile, model, predictor=predictor
    ).total
    if len(hot_blocks) < 3:
        return best_layout

    def adjacency_cost(src: int, dst: int) -> float:
        worst, per_successor = block_costs(src)
        return per_successor.get(dst, worst)

    pinned = [b for b in (cfg.entry,) if b in hot_blocks]
    free = [b for b in hot_blocks if b not in pinned]
    for perm in itertools.permutations(free):
        order = pinned + list(perm)
        # Pre-link only the strictly beneficial adjacencies of this order.
        segments: list[list[int]] = [[order[0]]]
        for a, b in zip(order, order[1:]):
            if adjacency_cost(a, b) < block_costs(a)[0]:
                segments[-1].append(b)
            else:
                segments.append([b])
        presets = [segment for segment in segments if len(segment) >= 2]
        if not presets:
            continue
        candidate = greedy_chain_layout(
            cfg, profile, priority, preset_chains=presets
        )
        cost = evaluate_layout(
            cfg, candidate, profile, model, predictor=predictor
        ).total
        if cost < best_cost:
            best_cost = cost
            best_layout = candidate
    return best_layout


def _hot_block_set(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    exhaustive_edges: int,
    max_hot_blocks: int,
) -> list[int]:
    """Blocks touched by the hottest edges, capped by block heat."""
    hot_edges = sorted(
        ((count, src, dst) for (src, dst), count in profile.counts.items()
         if count > 0 and src in cfg and dst in cfg.successors(src)),
        key=lambda item: (-item[0], item[1], item[2]),
    )[:exhaustive_edges]
    heat: dict[int, int] = {}
    for count, src, dst in hot_edges:
        for block_id in (src, dst):
            heat[block_id] = heat.get(block_id, 0) + count
    chosen = sorted(heat, key=lambda b: (-heat[b], b))
    return chosen[:max_hot_blocks]
