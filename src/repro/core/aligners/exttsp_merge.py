"""Chain-merging ExtTSP layout heuristic (Newell–Pupyrev / BOLT-style).

Starts from one chain per block and greedily applies the merge with the
best Ext-TSP gain until no merge improves the objective.  A merge of
chains X and Y considers the plain concatenations ``X·Y`` / ``Y·X`` plus
bounded *split-insertion* variants ``X1·Y·X2`` and ``Y1·X·Y2`` (every
split point of either chain, capped at :data:`SPLIT_CAP` blocks so the
search stays near-quadratic) — the "chain splits" of Newell–Pupyrev's
"Improved Basic Block Reordering".  The gain of a candidate is scored
*locally*: only edges with both endpoints inside the merged pair can
change class, so each candidate costs O(|local edges|).

The entry block is pinned: any candidate that would place a block ahead
of the entry inside the entry's chain is discarded, so the final layout
always starts at the entry (the repro's layout contract).  Remaining
chains are emitted by decreasing execution density (weight per word),
the BOLT ordering that keeps hot code dense up front.

``exttsp_layout(..., refine=True)`` follows the merge phase with a
deterministic hill-climb: repeatedly move one block to the position that
most improves the Ext-TSP score, until a fixed point (or a pass cap).
The registered ``chain-merge`` method is the pure merge heuristic; the
``exttsp`` method is merge + refinement.

Everything here is deterministic — no RNG, ties broken on chain/block
ids — so results are identical for every worker count and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph
from repro.core.exttsp import (
    DEFAULT_PARAMS,
    ExtTSPParams,
    block_size_words,
    edge_weight,
)
from repro.core.layout import Layout
from repro.profiles.edge_profile import EdgeProfile

#: Chains longer than this contribute only concatenation candidates (no
#: split-insertion) — keeps a merge round near-quadratic on big CFGs.
SPLIT_CAP = 48

#: Hill-climb safety valve: at most this many full improvement passes.
MAX_REFINE_PASSES = 8


@dataclass
class MergeStats:
    """Diagnostics the aligner reports through spans/counters."""

    merges: int = 0
    splits: int = 0
    refine_moves: int = 0
    score: float = 0.0


@dataclass
class _Instance:
    """Preprocessed per-procedure scoring state."""

    sizes: dict[int, int]
    #: Scored profile edges, grouped by the blocks they touch.
    edges_of: dict[int, list[tuple[int, int, float]]] = field(
        default_factory=dict
    )
    weight_of: dict[int, float] = field(default_factory=dict)
    params: ExtTSPParams = DEFAULT_PARAMS


def _build(
    cfg: ControlFlowGraph, profile: EdgeProfile, params: ExtTSPParams
) -> _Instance:
    inst = _Instance(
        sizes={b: block_size_words(cfg.block(b)) for b in cfg.block_ids},
        params=params,
    )
    for (src, dst), count in sorted(profile.counts.items()):
        if count <= 0 or src not in cfg or dst not in cfg.successors(src):
            continue
        edge = (src, dst, float(count))
        inst.edges_of.setdefault(src, []).append(edge)
        if dst != src:
            inst.edges_of.setdefault(dst, []).append(edge)
    for block_id in cfg.block_ids:
        inst.weight_of[block_id] = float(profile.block_exit_count(block_id))
    return inst


def _sequence_score(inst: _Instance, sequence: list[int]) -> float:
    """Ext-TSP score of the edges fully inside ``sequence`` when its
    blocks are laid out consecutively (addresses local to the sequence —
    distances between blocks of one chain do not depend on where the
    chain eventually lands)."""
    start: dict[int, int] = {}
    end: dict[int, int] = {}
    at = 0
    for block_id in sequence:
        start[block_id] = at
        at += inst.sizes[block_id]
        end[block_id] = at
    total = 0.0
    seen: set[tuple[int, int]] = set()
    for block_id in sequence:
        for src, dst, count in inst.edges_of.get(block_id, ()):
            if (src, dst) in seen:
                continue
            if src not in end or dst not in start:
                continue
            seen.add((src, dst))
            weight = edge_weight(end[src], start[dst], inst.params)
            if weight:
                total += count * weight
    return total


def _connected(inst: _Instance, a: list[int], b: list[int]) -> bool:
    """Whether any scored edge crosses between chains ``a`` and ``b`` —
    unconnected pairs can never produce a positive merge gain."""
    smaller, other = (a, b) if len(a) <= len(b) else (b, a)
    members = set(other)
    for block_id in smaller:
        for src, dst, _count in inst.edges_of.get(block_id, ()):
            if src in members or dst in members:
                return True
    return False


def _merge_candidates(x: list[int], y: list[int]):
    """Candidate merged sequences for chains ``x`` and ``y``: the two
    concatenations plus split-insertions of each (bounded); candidates
    that would bury the entry block are dropped by the caller's guard."""
    yield x + y, False
    yield y + x, False
    if len(x) <= SPLIT_CAP:
        for cut in range(1, len(x)):
            yield x[:cut] + y + x[cut:], True
    if len(y) <= SPLIT_CAP:
        for cut in range(1, len(y)):
            yield y[:cut] + x + y[cut:], True


def _entry_ok(candidate: list[int], entry: int, has_entry: bool) -> bool:
    return not has_entry or candidate[0] == entry


def _best_merge(
    inst: _Instance,
    chains: dict[int, list[int]],
    scores: dict[int, float],
    entry_chain: int,
    entry: int,
    pair: tuple[int, int],
) -> tuple[float, list[int], bool] | None:
    """The best candidate for one chain pair: (gain, sequence, used_split),
    or None when no candidate is legal.  Ties inside the pair prefer the
    earliest candidate, making the scan order part of the contract."""
    ci, cj = pair
    x, y = chains[ci], chains[cj]
    if not _connected(inst, x, y):
        return None
    base = scores[ci] + scores[cj]
    has_entry = ci == entry_chain or cj == entry_chain
    best: tuple[float, list[int], bool] | None = None
    for candidate, used_split in _merge_candidates(x, y):
        if not _entry_ok(candidate, entry, has_entry):
            continue
        gain = _sequence_score(inst, candidate) - base
        if best is None or gain > best[0] + 1e-12:
            best = (gain, candidate, used_split)
    return best


def chain_merge_order(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
    *,
    stats: MergeStats | None = None,
) -> list[int]:
    """The merge phase: block order maximizing Ext-TSP gain greedily."""
    inst = _build(cfg, profile, params)
    block_ids = sorted(cfg.block_ids)
    chains: dict[int, list[int]] = {i: [b] for i, b in enumerate(block_ids)}
    scores: dict[int, float] = {
        i: _sequence_score(inst, chain) for i, chain in chains.items()
    }
    entry_chain = next(
        i for i, chain in chains.items() if chain[0] == cfg.entry
    )

    # Candidate gains, maintained incrementally: only pairs touching a
    # freshly merged chain are rescored each round.
    best_of: dict[tuple[int, int], tuple[float, list[int], bool]] = {}

    def rescore(pairs) -> None:
        for pair in pairs:
            found = _best_merge(
                inst, chains, scores, entry_chain, cfg.entry, pair
            )
            if found is None:
                best_of.pop(pair, None)
            else:
                best_of[pair] = found

    rescore(
        (ci, cj)
        for i, ci in enumerate(sorted(chains))
        for cj in sorted(chains)[i + 1:]
    )

    while best_of:
        # Highest gain wins; ties break on the smaller chain-id pair so the
        # merge order (hence the layout) is deterministic.
        pair, (gain, merged, used_split) = min(
            best_of.items(), key=lambda item: (-item[1][0], item[0])
        )
        if gain <= 1e-12:
            break
        ci, cj = pair
        chains[ci] = merged
        scores[ci] = _sequence_score(inst, merged)
        del chains[cj], scores[cj]
        if cj == entry_chain:
            entry_chain = ci
        if stats is not None:
            stats.merges += 1
            if used_split:
                stats.splits += 1
        for stale in [p for p in best_of if ci in p or cj in p]:
            del best_of[stale]
        rescore(
            (min(ci, other), max(ci, other))
            for other in sorted(chains)
            if other != ci
        )

    def density(chain: list[int]) -> float:
        words = sum(inst.sizes[b] for b in chain) or 1
        return sum(inst.weight_of[b] for b in chain) / words

    ordered = sorted(
        chains.values(),
        key=lambda chain: (
            chain[0] != cfg.entry,
            -density(chain),
            chain[0],
        ),
    )
    order: list[int] = []
    for chain in ordered:
        order.extend(chain)
    return order


def refine_order(
    cfg: ControlFlowGraph,
    order: list[int],
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
    *,
    stats: MergeStats | None = None,
) -> list[int]:
    """Deterministic best-improvement hill climb over single-block moves.

    Each pass tries every (block, position) move with the entry pinned at
    position 0, applies the best strictly-improving one, and repeats
    until a pass finds nothing (or :data:`MAX_REFINE_PASSES` is hit)."""
    inst = _build(cfg, profile, params)
    current = list(order)
    score = _sequence_score(inst, current)
    for _pass in range(MAX_REFINE_PASSES):
        best: tuple[float, list[int]] | None = None
        for at in range(1, len(current)):
            block = current[at]
            rest = current[:at] + current[at + 1:]
            for to in range(1, len(current)):
                if to == at:
                    continue
                candidate = rest[:to] + [block] + rest[to:]
                gain = _sequence_score(inst, candidate) - score
                if gain > 1e-12 and (best is None or gain > best[0] + 1e-12):
                    best = (gain, candidate)
        if best is None:
            break
        score += best[0]
        current = best[1]
        if stats is not None:
            stats.refine_moves += 1
    return current


def chain_merge_layout(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
    *,
    stats: MergeStats | None = None,
) -> Layout:
    """The pure chain-merge heuristic (the registered ``chain-merge``)."""
    return exttsp_layout(cfg, profile, params, refine=False, stats=stats)


def exttsp_layout(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
    *,
    refine: bool = True,
    stats: MergeStats | None = None,
) -> Layout:
    """Chain merging, optionally followed by the single-block hill climb
    (the registered ``exttsp`` method)."""
    order = chain_merge_order(cfg, profile, params, stats=stats)
    if refine and len(order) > 2:
        order = refine_order(cfg, order, profile, params, stats=stats)
    if stats is not None:
        stats.score = _sequence_score(_build(cfg, profile, params), order)
    return Layout(tuple(order))
