"""Layout representation.

A :class:`Layout` is a permutation of one procedure's basic blocks — the
output of every aligner.  It is pure structure: turning a layout into
physical code (branch inversions, jump insertions/deletions, fixup blocks,
addresses) is the job of :mod:`repro.core.materialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cfg.graph import ControlFlowGraph, Program
from repro.errors import ReproError


class LayoutError(ReproError):
    """Raised for layouts that are not valid block permutations."""


@dataclass(frozen=True)
class Layout:
    """An ordering of every block of one procedure.

    The entry block is conventionally first (callers enter at the procedure's
    first address); aligners in this package always anchor it.
    """

    order: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.order)) != len(self.order):
            raise LayoutError("layout repeats a block")

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self):
        return iter(self.order)

    @property
    def positions(self) -> dict[int, int]:
        return {block_id: i for i, block_id in enumerate(self.order)}

    def successor_map(self) -> dict[int, int | None]:
        """Layout successor of each block (``None`` for the last block)."""
        succ: dict[int, int | None] = {}
        for i, block_id in enumerate(self.order):
            succ[block_id] = self.order[i + 1] if i + 1 < len(self.order) else None
        return succ

    def check_against(self, cfg: ControlFlowGraph, *, anchor_entry: bool = True) -> None:
        """Raise :class:`LayoutError` unless this is a permutation of the
        CFG's blocks (entry first when ``anchor_entry``)."""
        if set(self.order) != set(cfg.block_ids):
            missing = set(cfg.block_ids) - set(self.order)
            extra = set(self.order) - set(cfg.block_ids)
            raise LayoutError(
                f"layout is not a permutation of the CFG "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        if anchor_entry and self.order and self.order[0] != cfg.entry:
            raise LayoutError(
                f"layout must start at the entry block {cfg.entry}, "
                f"starts at {self.order[0]}"
            )


def original_layout(cfg: ControlFlowGraph) -> Layout:
    """The unoptimized layout: blocks in id order with the entry first.

    Block ids are assigned in frontend emission order, so this matches the
    "original" program layout of the paper's baselines.
    """
    rest = [b for b in sorted(cfg.block_ids) if b != cfg.entry]
    return Layout((cfg.entry, *rest))


@dataclass
class ProgramLayout:
    """Layouts for every procedure of a program, in procedure order."""

    layouts: dict[str, Layout] = field(default_factory=dict)

    def __getitem__(self, proc: str) -> Layout:
        return self.layouts[proc]

    def __setitem__(self, proc: str, layout: Layout) -> None:
        self.layouts[proc] = layout

    def __contains__(self, proc: str) -> bool:
        return proc in self.layouts

    def items(self) -> Iterable[tuple[str, Layout]]:
        return self.layouts.items()

    def check_against(self, program: Program) -> None:
        for proc in program:
            if proc.name not in self.layouts:
                raise LayoutError(f"no layout for procedure {proc.name!r}")
            self.layouts[proc.name].check_against(proc.cfg)


def original_program_layout(program: Program) -> ProgramLayout:
    layout = ProgramLayout()
    for proc in program:
        layout[proc.name] = original_layout(proc.cfg)
    return layout


def layout_from_order(order: Sequence[int]) -> Layout:
    return Layout(tuple(order))
