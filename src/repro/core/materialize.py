"""Layout materialization: from a block permutation to physical code.

Materialization performs what the paper calls "the appropriate inversions of
conditional branches and insertions or deletions of unconditional jumps to
ensure that program semantics are maintained" (§2.1), plus address
assignment.  The result feeds the instruction-cache and pipeline simulators
and the independent penalty evaluator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.costmodel import effective_kind
from repro.core.layout import Layout, ProgramLayout
from repro.machine.icache import WORD_BYTES
from repro.machine.predictors import StaticPredictor


class PhysicalKind(enum.Enum):
    """What a block physically ends with after layout."""

    FALLTHROUGH = "fallthrough"     # no CTI emitted
    JUMP = "jump"                   # unconditional jump kept/needed
    COND = "cond"                   # conditional branch (maybe inverted)
    REGISTER = "register"           # multiway/register branch
    RETURN = "return"
    FIXUP = "fixup"                 # inserted unconditional-jump block


@dataclass
class MaterializedBlock:
    """One physical block: a source block or an inserted fixup jump."""

    source: int | None              # CFG block id; None for fixup blocks
    kind: PhysicalKind
    address: int                    # byte address of the first word
    body_words: int
    cti_words: int                  # 0 or 1
    branch_target: int | None = None   # CFG block targeted by the CTI
    fallthrough: int | None = None     # CFG block reached by falling through
    #: For COND blocks with a fixup: the CFG block the fixup jumps to.
    fixup_target: int | None = None

    @property
    def words(self) -> int:
        return self.body_words + self.cti_words

    @property
    def end_address(self) -> int:
        return self.address + self.words * WORD_BYTES


@dataclass
class MaterializedProcedure:
    """A procedure after layout: physical blocks in address order."""

    name: str
    layout: Layout
    blocks: list[MaterializedBlock] = field(default_factory=list)
    start_address: int = 0

    _by_source: dict[int, MaterializedBlock] = field(default_factory=dict)

    def block_for(self, source_block: int) -> MaterializedBlock:
        return self._by_source[source_block]

    def fixup_after(self, source_block: int) -> MaterializedBlock | None:
        """The fixup block inserted after ``source_block``, if any."""
        physical = self._by_source.get(source_block)
        if physical is None or physical.fixup_target is None:
            return None
        at = self.blocks.index(physical)
        return self.blocks[at + 1]

    @property
    def end_address(self) -> int:
        return self.blocks[-1].end_address if self.blocks else self.start_address

    @property
    def code_words(self) -> int:
        return sum(b.words for b in self.blocks)

    @property
    def fixup_count(self) -> int:
        return sum(1 for b in self.blocks if b.kind is PhysicalKind.FIXUP)

    @property
    def emitted_jumps(self) -> int:
        return sum(
            1 for b in self.blocks
            if b.kind in (PhysicalKind.JUMP, PhysicalKind.FIXUP)
        )


def materialize_procedure(
    name: str,
    cfg: ControlFlowGraph,
    layout: Layout,
    predictor: StaticPredictor,
    *,
    start_address: int = 0,
) -> MaterializedProcedure:
    """Materialize one procedure's layout.

    ``predictor`` decides which arm a conditional branch targets when
    neither arm is the layout successor (the branch goes to the predicted
    arm; the fixup jump carries the other), matching the cost model.
    """
    layout.check_against(cfg)
    result = MaterializedProcedure(name=name, layout=layout, start_address=start_address)
    address = start_address
    order = list(layout.order)
    for position, block_id in enumerate(order):
        block = cfg.block(block_id)
        next_block = order[position + 1] if position + 1 < len(order) else None
        kind = effective_kind(block)

        fixup: MaterializedBlock | None = None
        if kind is TerminatorKind.RETURN:
            physical = MaterializedBlock(
                source=block_id, kind=PhysicalKind.RETURN, address=address,
                body_words=block.body_words, cti_words=1,
            )
        elif kind is TerminatorKind.UNCONDITIONAL:
            successor = block.successors[0]
            if successor == next_block:
                physical = MaterializedBlock(
                    source=block_id, kind=PhysicalKind.FALLTHROUGH,
                    address=address, body_words=block.body_words, cti_words=0,
                    fallthrough=successor,
                )
            else:
                physical = MaterializedBlock(
                    source=block_id, kind=PhysicalKind.JUMP, address=address,
                    body_words=block.body_words, cti_words=1,
                    branch_target=successor,
                )
        elif kind is TerminatorKind.CONDITIONAL:
            arms = block.successors
            if next_block in arms:
                other = arms[0] if arms[1] == next_block else arms[1]
                physical = MaterializedBlock(
                    source=block_id, kind=PhysicalKind.COND, address=address,
                    body_words=block.body_words, cti_words=1,
                    branch_target=other, fallthrough=next_block,
                )
            else:
                predicted = predictor.predict(block_id)
                if predicted not in arms:
                    predicted = arms[0]
                other = arms[0] if arms[1] == predicted else arms[1]
                physical = MaterializedBlock(
                    source=block_id, kind=PhysicalKind.COND, address=address,
                    body_words=block.body_words, cti_words=1,
                    branch_target=predicted, fixup_target=other,
                )
                fixup = MaterializedBlock(
                    source=None, kind=PhysicalKind.FIXUP,
                    address=physical.end_address, body_words=0, cti_words=1,
                    branch_target=other,
                )
                physical.fallthrough = other  # via the fixup jump
        else:  # MULTIWAY
            physical = MaterializedBlock(
                source=block_id, kind=PhysicalKind.REGISTER, address=address,
                body_words=block.body_words, cti_words=1,
            )

        result.blocks.append(physical)
        result._by_source[block_id] = physical
        address = physical.end_address
        if fixup is not None:
            result.blocks.append(fixup)
            address = fixup.end_address
    return result


@dataclass
class MaterializedProgram:
    """All procedures laid out sequentially in program order."""

    procedures: dict[str, MaterializedProcedure] = field(default_factory=dict)

    def __getitem__(self, name: str) -> MaterializedProcedure:
        return self.procedures[name]

    @property
    def code_words(self) -> int:
        return sum(p.code_words for p in self.procedures.values())

    @property
    def total_fixups(self) -> int:
        return sum(p.fixup_count for p in self.procedures.values())


def materialize_program(
    program: Program,
    layouts: ProgramLayout,
    predictors: dict[str, StaticPredictor],
    *,
    proc_align_words: int = 8,
) -> MaterializedProgram:
    """Materialize every procedure, packing them at aligned addresses.

    Procedures keep program order (interprocedural placement is out of the
    paper's scope); each starts at a ``proc_align_words``-word boundary, as
    a linker would align them.
    """
    result = MaterializedProgram()
    address = 0
    align_bytes = proc_align_words * WORD_BYTES
    for proc in program:
        if address % align_bytes:
            address += align_bytes - address % align_bytes
        materialized = materialize_procedure(
            proc.name,
            proc.cfg,
            layouts[proc.name],
            predictors[proc.name],
            start_address=address,
        )
        result.procedures[proc.name] = materialized
        address = materialized.end_address
    return result
