"""Human-readable alignment reports.

Turns a layout decision into the story a compiler engineer wants to read:
which blocks moved, which jumps were deleted or inserted, where fixups
landed, and which block-ends pay the remaining penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.costmodel import successor_counts, terminator_cost
from repro.core.layout import Layout, ProgramLayout, original_layout
from repro.core.materialize import PhysicalKind, materialize_procedure
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile


@dataclass
class BlockReport:
    """One block's layout outcome."""

    block_id: int
    label: str
    original_position: int
    new_position: int
    physical: str                # fallthrough / jump / cond / ...
    penalty: float
    note: str = ""

    @property
    def moved(self) -> bool:
        return self.original_position != self.new_position


@dataclass
class ProcedureReport:
    name: str
    blocks: list[BlockReport] = field(default_factory=list)
    total_penalty: float = 0.0
    original_penalty: float = 0.0
    jumps_deleted: int = 0
    jumps_inserted: int = 0
    fixups: int = 0

    @property
    def blocks_moved(self) -> int:
        return sum(1 for b in self.blocks if b.moved)

    def rows(self) -> list[list[object]]:
        return [
            [
                b.new_position,
                b.label or f"b{b.block_id}",
                b.original_position,
                b.physical,
                b.penalty,
                b.note,
            ]
            for b in self.blocks
        ]


def describe_layout(
    cfg: ControlFlowGraph,
    layout: Layout,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    name: str = "",
    predictor: StaticPredictor | None = None,
) -> ProcedureReport:
    """Describe one procedure's layout against the original order."""
    if predictor is None:
        predictor = StaticPredictor.train(cfg, profile)
    baseline = original_layout(cfg)
    original_positions = baseline.positions
    physical = materialize_procedure(name or "proc", cfg, layout, predictor)
    successor_map = layout.successor_map()

    report = ProcedureReport(name=name)
    original_succ = baseline.successor_map()
    for position, block_id in enumerate(layout.order):
        block = cfg.block(block_id)
        counts = successor_counts(profile.counts, block)
        penalty = terminator_cost(
            block, counts, predictor.predict(block_id),
            successor_map[block_id], model,
        ).total
        original_penalty = terminator_cost(
            block, counts, predictor.predict(block_id),
            original_succ[block_id], model,
        ).total
        materialized = physical.block_for(block_id)
        note = ""
        if materialized.fixup_target is not None:
            note = f"fixup -> b{materialized.fixup_target}"
            report.fixups += 1
        kind = materialized.kind
        if kind is PhysicalKind.JUMP and len(block.successors) == 1:
            # Did the original layout avoid this jump?
            if original_succ[block_id] == block.successors[0]:
                note = note or "jump inserted"
                report.jumps_inserted += 1
        if kind is PhysicalKind.FALLTHROUGH:
            if original_succ[block_id] != block.successors[0]:
                note = note or "jump deleted"
                report.jumps_deleted += 1
        report.blocks.append(
            BlockReport(
                block_id=block_id,
                label=block.label,
                original_position=original_positions[block_id],
                new_position=position,
                physical=kind.value,
                penalty=penalty,
                note=note,
            )
        )
        report.total_penalty += penalty
        report.original_penalty += original_penalty
    return report


def describe_program(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    model: PenaltyModel,
) -> dict[str, ProcedureReport]:
    """Per-procedure reports for a whole program layout."""
    reports = {}
    for proc in program:
        edge_profile = profile.procedures.get(proc.name, EdgeProfile())
        reports[proc.name] = describe_layout(
            proc.cfg,
            layouts[proc.name],
            edge_profile,
            model,
            name=proc.name,
        )
    return reports
