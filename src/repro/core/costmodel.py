"""The §2.2 cost model: penalty cycles at the end of a block.

For a block B with layout successor X, the paper charges

    c(B, X) = C(B,X)·p_NN + I(B,X)·p_TN + Σ_{B'≠X} [ C(B,B')·p_TT + I(B,B')·p_NT ]

where C(B,B') / I(B,B') count executions of edge B→B' on which the static
predictor was correct / incorrect.  Those counts depend only on the CFG and
the profile — never on the layout — which is what makes the DTSP reduction
exact.  This module implements the formula plus the two practicalities of
Table 3: unconditional-jump deletion/insertion and fixup blocks.

A *fixup block* is a one-instruction unconditional jump inserted as the
fall-through of a conditional block whose layout successor is neither CFG
successor.  The conditional branch targets the predicted successor; the
other arm falls through into the fixup jump.  The fixup's cost (2 cycles per
execution on the 21164) is attached to the DTSP edge that required it, per
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cfg.blocks import BasicBlock, TerminatorKind
from repro.machine.models import PenaltyModel


@dataclass(frozen=True)
class CostBreakdown:
    """Penalty cycles at one block end, split by mechanism.

    * ``redirect`` — correctly predicted taken branches (misfetch class),
    * ``mispredict`` — wrongly predicted conditional/multiway transfers,
    * ``jump`` — kept or inserted unconditional jumps, including fixups.
    """

    redirect: float = 0.0
    mispredict: float = 0.0
    jump: float = 0.0

    @property
    def total(self) -> float:
        return self.redirect + self.mispredict + self.jump

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.redirect + other.redirect,
            self.mispredict + other.mispredict,
            self.jump + other.jump,
        )


ZERO_COST = CostBreakdown()


def effective_kind(block: BasicBlock) -> TerminatorKind:
    """Layout-relevant terminator kind.

    A conditional whose arms coincide, or a multiway with a single distinct
    target, behaves like an unconditional transfer: the compiler would fold
    the branch away, and the cost model treats it that way.
    """
    kind = block.kind
    if kind in (TerminatorKind.CONDITIONAL, TerminatorKind.MULTIWAY):
        if len(block.successors) == 1:
            return TerminatorKind.UNCONDITIONAL
    return kind


def terminator_cost(
    block: BasicBlock,
    counts: Mapping[int, int],
    predicted: int | None,
    layout_successor: int | None,
    model: PenaltyModel,
) -> CostBreakdown:
    """Penalty cycles charged at ``block``'s end.

    ``counts`` maps each executed CFG successor to its execution count under
    the *evaluation* profile; ``predicted`` is the static prediction (from
    the *training* profile — the two differ under cross-validation);
    ``layout_successor`` is the block physically following ``block``
    (``None`` when nothing does, e.g. the last block before the dummy city).
    """
    kind = effective_kind(block)
    if kind is TerminatorKind.RETURN:
        return ZERO_COST

    total = sum(counts.values())
    if total == 0:
        return ZERO_COST

    if kind is TerminatorKind.UNCONDITIONAL:
        successor = block.successors[0]
        if layout_successor == successor:
            return ZERO_COST
        return CostBreakdown(jump=total * model.unconditional)

    if predicted is None or predicted not in block.successors:
        predicted = block.successors[0]

    if kind is TerminatorKind.CONDITIONAL:
        return _conditional_cost(
            block, counts, predicted, layout_successor, model
        )
    return _multiway_cost(block, counts, predicted, layout_successor, model)


def _conditional_cost(
    block: BasicBlock,
    counts: Mapping[int, int],
    predicted: int,
    layout_successor: int | None,
    model: PenaltyModel,
) -> CostBreakdown:
    penalties = model.conditional
    successors = block.successors
    if layout_successor in successors:
        # One arm falls through; the branch targets the other (inverting the
        # source-level direction if needed).  Static prediction is "taken"
        # exactly when the predicted arm is not the fall-through.
        predicted_taken = predicted != layout_successor
        redirect = mispredict = 0.0
        for succ, n in counts.items():
            taken = succ != layout_successor
            cycles = n * penalties.cost(predicted_taken=predicted_taken, taken=taken)
            if succ == predicted:
                redirect += cycles
            else:
                mispredict += cycles
        return CostBreakdown(redirect=redirect, mispredict=mispredict)

    # Neither arm follows: branch to the predicted arm, fixup jump to the
    # other.  Going to the predicted arm is a correctly predicted taken
    # branch; going the other way falls through (mispredicted) into the
    # fixup unconditional jump, whose cost rides on this DTSP edge.
    redirect = mispredict = jump = 0.0
    for succ, n in counts.items():
        if succ == predicted:
            redirect += n * penalties.p_tt
        else:
            mispredict += n * penalties.p_tn
            jump += n * model.unconditional
    return CostBreakdown(redirect=redirect, mispredict=mispredict, jump=jump)


def _multiway_cost(
    block: BasicBlock,
    counts: Mapping[int, int],
    predicted: int,
    layout_successor: int | None,
    model: PenaltyModel,
) -> CostBreakdown:
    # A register branch reaches any target without fixups.  Table 3: a
    # correctly predicted transfer to the layout successor is free; every
    # other combination pays the register-branch redirect penalty.
    penalties = model.multiway
    redirect = mispredict = 0.0
    for succ, n in counts.items():
        correct = succ == predicted
        follows = succ == layout_successor
        if correct and follows:
            cycles = n * penalties.p_nn
        elif correct:
            cycles = n * penalties.p_tt
        elif follows:
            cycles = n * penalties.p_tn
        else:
            cycles = n * penalties.p_nt
        if correct:
            redirect += cycles
        else:
            mispredict += cycles
    return CostBreakdown(redirect=redirect, mispredict=mispredict)


def successor_counts(
    profile_counts: Mapping[tuple[int, int], int], block: BasicBlock
) -> dict[int, int]:
    """Evaluation counts of ``block``'s distinct CFG successors."""
    result: dict[int, int] = {}
    for succ in block.successors:
        n = profile_counts.get((block.block_id, succ), 0)
        if n:
            result[succ] = n
    return result
