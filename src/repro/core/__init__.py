"""The paper's primary contribution: branch alignment via DTSP reduction.

Public surface:

* :func:`align_program` / :func:`lower_bound_program` — the top-level API,
* the aligner registry (:func:`register_aligner` / :func:`get_aligner`;
  ``ALIGN_METHODS`` is a live view over it),
* the cost model and matrix construction (§2.2),
* layout representation, materialization, and analytic evaluation,
* the individual aligners (greedy baselines + TSP).
"""

from repro.core.align import (
    ALIGN_METHODS,
    AlignmentReport,
    LowerBoundReport,
    align_program,
    lower_bound_program,
)
from repro.pipeline.registry import (
    AlignerSpec,
    get_aligner,
    normalize_method,
    register_aligner,
    unregister_aligner,
)
from repro.core.aligners import (
    alignment_lower_bound,
    calder_grunwald_layout,
    chain_merge_layout,
    exttsp_layout,
    pettis_hansen_layout,
    tsp_align,
)
from repro.core.exttsp import (
    DEFAULT_PARAMS,
    ExtTSPParams,
    exttsp_max_score,
    exttsp_program_score,
    exttsp_score,
)
from repro.core.costmatrix import (
    DUMMY_CITY,
    AlignmentInstance,
    build_alignment_instance,
)
from repro.core.costmodel import (
    CostBreakdown,
    effective_kind,
    successor_counts,
    terminator_cost,
)
from repro.core.evaluate import (
    ProgramPenalty,
    evaluate_layout,
    evaluate_program,
    train_predictors,
)
from repro.core.layout import (
    Layout,
    LayoutError,
    ProgramLayout,
    original_layout,
    original_program_layout,
)
from repro.core.hot_cold import split_hot_cold, split_program_hot_cold
from repro.core.report import describe_layout, describe_program
from repro.core.proc_order import (
    pettis_hansen_procedure_order,
    reorder_program,
)
from repro.core.materialize import (
    MaterializedBlock,
    MaterializedProcedure,
    MaterializedProgram,
    PhysicalKind,
    materialize_procedure,
    materialize_program,
)

__all__ = [
    "ALIGN_METHODS",
    "AlignerSpec",
    "AlignmentInstance",
    "AlignmentReport",
    "CostBreakdown",
    "DUMMY_CITY",
    "Layout",
    "LayoutError",
    "LowerBoundReport",
    "MaterializedBlock",
    "MaterializedProcedure",
    "MaterializedProgram",
    "PhysicalKind",
    "ProgramLayout",
    "ProgramPenalty",
    "align_program",
    "alignment_lower_bound",
    "DEFAULT_PARAMS",
    "ExtTSPParams",
    "build_alignment_instance",
    "calder_grunwald_layout",
    "chain_merge_layout",
    "describe_layout",
    "describe_program",
    "effective_kind",
    "evaluate_layout",
    "evaluate_program",
    "exttsp_layout",
    "exttsp_max_score",
    "exttsp_program_score",
    "exttsp_score",
    "lower_bound_program",
    "get_aligner",
    "materialize_procedure",
    "materialize_program",
    "normalize_method",
    "original_layout",
    "original_program_layout",
    "pettis_hansen_layout",
    "pettis_hansen_procedure_order",
    "register_aligner",
    "reorder_program",
    "split_hot_cold",
    "split_program_hot_cold",
    "successor_counts",
    "terminator_cost",
    "train_predictors",
    "tsp_align",
    "unregister_aligner",
]
