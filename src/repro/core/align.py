"""Top-level alignment API.

    profile = ...                     # ProgramProfile from a training run
    layouts = align_program(program, profile, method="tsp", jobs=4)
    penalty = evaluate_program(program, layouts, profile, ALPHA_21164)

Methods: ``original`` (no reordering), ``greedy`` (Pettis–Hansen frequency
chaining — the paper's baseline), ``cost-greedy`` (Calder–Grunwald-style),
``tsp`` (the paper's near-optimal DTSP alignment), and the modern
Ext-TSP pair — ``chain-merge`` (greedy chain splits/merges maximizing the
Ext-TSP gain, à la Newell–Pupyrev) and ``exttsp`` (chain-merge plus a
single-block hill climb).  Every aligner's layout is priced both ways:
the paper's control penalty and the Ext-TSP score
(:mod:`repro.core.exttsp`) travel together on each
:class:`~repro.pipeline.task.ProcedureResult`.

Methods are *registered*, not hard-coded: each built-in below is a
:func:`~repro.pipeline.registry.register_aligner` entry mapping a
:class:`~repro.pipeline.task.ProcedureTask` to a
:class:`~repro.pipeline.task.ProcedureResult`, and ``ALIGN_METHODS`` is a
live view over the registry.  ``align_program`` itself is a thin wrapper
around the staged pipeline (:mod:`repro.pipeline.stages`), which adds
content-addressed caching of cost matrices / solved alignments and optional
per-procedure parallelism (``jobs=``) on top of the same dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.budget import Budget, RetryPolicy
from repro.cfg.graph import Program
from repro.core.aligners.exttsp_merge import MergeStats, exttsp_layout
from repro.core.aligners.greedy import calder_grunwald_layout, pettis_hansen_layout
from repro.core.aligners.tsp_aligner import tsp_align
from repro.core.exttsp import exttsp_score
from repro.core.layout import ProgramLayout, original_layout
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.pipeline.registry import (
    MethodsView,
    normalize_method,
    register_aligner,
)
from repro.pipeline.stages import (
    align_procedures,
    instance_for,
    lower_bound_procedures,
)
from repro.pipeline.task import ProcedureResult, ProcedureTask
from repro.profiles.edge_profile import ProgramProfile
from repro.tsp.solve import DEFAULT, Effort

# -- the built-in aligners ----------------------------------------------------


@register_aligner("original", description="keep the compiler's block order")
def _align_original(task: ProcedureTask) -> ProcedureResult:
    layout = original_layout(task.cfg)
    return ProcedureResult(
        task.name,
        layout,
        exttsp_score=exttsp_score(task.cfg, layout, task.profile),
    )


def _priced_result(task: ProcedureTask, layout) -> ProcedureResult:
    """Wrap a heuristic layout, pricing it both ways: the paper's penalty
    (the tour cost under the shared DTSP instance) and the Ext-TSP score.
    The instance comes from (and feeds) the content-addressed cache, so
    greedy / tsp / lower-bound passes over one procedure all use a single
    cost matrix; ``cities`` stays unset so these results do not populate
    TSP solver diagnostics in an :class:`AlignmentReport`.
    """
    instance = instance_for(
        task.cfg, task.profile, task.model, predictor=task.predictor
    )
    return ProcedureResult(
        name=task.name,
        layout=layout,
        cost=instance.layout_cost(layout),
        exttsp_score=exttsp_score(task.cfg, layout, task.profile),
        instance=instance,
    )


@register_aligner(
    "greedy",
    aliases=("pettis-hansen", "ph"),
    description="Pettis–Hansen frequency chaining (the paper's baseline)",
    uses_instance=True,
)
def _align_greedy(task: ProcedureTask) -> ProcedureResult:
    return _priced_result(
        task, pettis_hansen_layout(task.cfg, task.profile)
    )


@register_aligner(
    "cost-greedy",
    aliases=("calder-grunwald", "cg"),
    description="Calder–Grunwald cost-model greedy chaining",
    uses_instance=True,
)
def _align_cost_greedy(task: ProcedureTask) -> ProcedureResult:
    return _priced_result(
        task,
        calder_grunwald_layout(task.cfg, task.profile, task.model),
    )


@register_aligner(
    "cg-exhaustive",
    description="Calder–Grunwald plus exhaustive search over the blocks "
    "touched by the 15 hottest edges (§5)",
    uses_instance=True,
)
def _align_cg_exhaustive(task: ProcedureTask) -> ProcedureResult:
    return _priced_result(
        task,
        calder_grunwald_layout(
            task.cfg, task.profile, task.model, exhaustive_edges=15
        ),
    )


@register_aligner(
    "tsp",
    aliases=("dtsp",),
    description="the paper's near-optimal DTSP alignment",
    uses_instance=True,
)
def _align_tsp(task: ProcedureTask) -> ProcedureResult:
    instance = instance_for(
        task.cfg, task.profile, task.model, predictor=task.predictor
    )
    with obs.span("tsp_solver", proc=task.name) as sp:
        alignment = tsp_align(
            task.cfg,
            task.profile,
            task.model,
            predictor=task.predictor,
            effort=task.effort,
            seed=task.effective_seed,
            budget=task.budget,
            instance=instance,
        )
        sp["cities"] = alignment.instance.n
        sp["degraded"] = alignment.degraded
    return ProcedureResult(
        name=task.name,
        layout=alignment.layout,
        cost=alignment.cost,
        exttsp_score=exttsp_score(task.cfg, alignment.layout, task.profile),
        cities=alignment.instance.n,
        runs_finding_best=alignment.runs_finding_best,
        runs_total=alignment.runs_total,
        degraded=alignment.degraded,
        warning=alignment.warning,
        instance=alignment.instance,
    )


def _exttsp_result(task: ProcedureTask, *, refine: bool) -> ProcedureResult:
    """Run the chain-merging Ext-TSP heuristic and dual-price the layout."""
    stats = MergeStats()
    with obs.span(
        "exttsp_solver", proc=task.name, refine=refine
    ) as sp:
        layout = exttsp_layout(
            task.cfg, task.profile, refine=refine, stats=stats
        )
        sp["merges"] = stats.merges
        sp["splits"] = stats.splits
        sp["refine_moves"] = stats.refine_moves
        sp["score"] = stats.score
    # Deterministic per-task work, so these counters are stable (identical
    # for every worker count), like tsp.runs.
    obs.count("exttsp.merges", stats.merges)
    obs.count("exttsp.splits", stats.splits)
    obs.count("exttsp.refine_moves", stats.refine_moves)
    return _priced_result(task, layout)


@register_aligner(
    "exttsp",
    aliases=("ext-tsp", "bolt"),
    description="Ext-TSP chain merging plus single-block hill climb "
    "(Newell–Pupyrev's improved basic block reordering)",
    uses_instance=True,
)
def _align_exttsp(task: ProcedureTask) -> ProcedureResult:
    return _exttsp_result(task, refine=True)


@register_aligner(
    "chain-merge",
    aliases=("newell-pupyrev", "np"),
    description="greedy chain splits/merges maximizing the Ext-TSP gain "
    "(the BOLT-style merge phase, without refinement)",
    uses_instance=True,
)
def _align_chain_merge(task: ProcedureTask) -> ProcedureResult:
    return _exttsp_result(task, refine=False)


#: Live view of every registered method name, in registration order.
#: Tuple-compatible (iteration, ``in``, indexing, ``==``), but reflects
#: aligners registered after import as well.
ALIGN_METHODS = MethodsView()


# -- program-level entry points -----------------------------------------------


@dataclass
class AlignmentReport:
    """Per-procedure diagnostics from a TSP alignment pass."""

    cities: dict[str, int] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)
    #: Per-procedure Ext-TSP scores of the emitted layouts (dual pricing;
    #: every aligner fills this, including ``original``).
    exttsp_scores: dict[str, float] = field(default_factory=dict)
    runs_finding_best: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Procedures whose layout came from a fallback rung (proc → rung name).
    degraded: dict[str, str] = field(default_factory=dict)
    #: Structured warnings explaining each degradation.
    warnings: list[str] = field(default_factory=list)
    #: Retry attempts the supervised executor spent on this pass.
    retried: int = 0
    #: Procedures poisoned out of the pass (proc → final error); their
    #: layouts are the identity stand-in.
    quarantined: dict[str, str] = field(default_factory=dict)
    #: Worker deaths the supervised executor absorbed during this pass —
    #: the circuit breaker's failure signal.
    worker_crashes: int = 0
    #: Per-attempt deadline expiries the executor absorbed during this pass.
    timeouts: int = 0


def align_program(
    program: Program,
    profile: ProgramProfile,
    *,
    method: str = "tsp",
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    report: AlignmentReport | None = None,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> ProgramLayout:
    """Align every procedure of ``program`` using ``profile`` as training
    data; returns one layout per procedure.

    ``budget`` is a *per-procedure* solver deadline for the TSP method: each
    procedure's solve starts a fresh countdown, and a procedure that cannot
    be solved in time degrades down the aligner's ladder instead of raising
    (``report.degraded`` records which rung each such procedure used).

    ``jobs`` > 1 solves procedures in parallel worker processes;
    ``jobs=None`` reads ``REPRO_JOBS`` (default 1).  Results — layouts and
    ``report`` contents — are identical for every worker count.

    ``policy`` tunes the supervised executor (retry budget, per-task
    deadline, backoff); failures that exhaust it quarantine the procedure
    with its identity layout (``report.quarantined``) instead of raising.
    """
    return align_procedures(
        program,
        profile,
        method=normalize_method(method),
        model=model,
        effort=effort,
        seed=seed,
        budget=budget,
        jobs=jobs,
        policy=policy,
        report=report,
    )


@dataclass
class LowerBoundReport:
    """Held–Karp penalty lower bounds, per procedure and total."""

    per_procedure: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_procedure.values())


def lower_bound_program(
    program: Program,
    profile: ProgramProfile,
    *,
    model: PenaltyModel = ALPHA_21164,
    iterations: int | None = None,
    upper_bounds: dict[str, float] | None = None,
    budget: Budget | None = None,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
) -> LowerBoundReport:
    """Held–Karp lower bound on the total control penalty of any layout.

    ``upper_bounds`` optionally supplies known per-procedure tour costs
    (e.g. from a TSP alignment) to tighten the subgradient schedule.
    """
    report = LowerBoundReport()
    report.per_procedure.update(lower_bound_procedures(
        program,
        profile,
        model=model,
        iterations=iterations,
        upper_bounds=upper_bounds,
        budget=budget,
        jobs=jobs,
        policy=policy,
    ))
    return report
