"""Top-level alignment API.

    profile = ...                     # ProgramProfile from a training run
    layouts = align_program(program, profile, method="tsp")
    penalty = evaluate_program(program, layouts, profile, ALPHA_21164)

Methods: ``original`` (no reordering), ``greedy`` (Pettis–Hansen frequency
chaining — the paper's baseline), ``cost-greedy`` (Calder–Grunwald-style),
and ``tsp`` (the paper's near-optimal DTSP alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.budget import Budget
from repro.cfg.graph import Program
from repro.errors import UnknownNameError
from repro.core.aligners.greedy import calder_grunwald_layout, pettis_hansen_layout
from repro.core.aligners.tsp_aligner import alignment_lower_bound, tsp_align
from repro.core.layout import ProgramLayout, original_layout
from repro.machine.models import ALPHA_21164, PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile
from repro.tsp.solve import DEFAULT, Effort

ALIGN_METHODS = ("original", "greedy", "cost-greedy", "cg-exhaustive", "tsp")


@dataclass
class AlignmentReport:
    """Per-procedure diagnostics from a TSP alignment pass."""

    cities: dict[str, int] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)
    runs_finding_best: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Procedures whose layout came from a fallback rung (proc → rung name).
    degraded: dict[str, str] = field(default_factory=dict)
    #: Structured warnings explaining each degradation.
    warnings: list[str] = field(default_factory=list)


def align_program(
    program: Program,
    profile: ProgramProfile,
    *,
    method: str = "tsp",
    model: PenaltyModel = ALPHA_21164,
    effort: Effort | str = DEFAULT,
    seed: int = 0,
    budget: Budget | None = None,
    report: AlignmentReport | None = None,
) -> ProgramLayout:
    """Align every procedure of ``program`` using ``profile`` as training
    data; returns one layout per procedure.

    ``budget`` is a *per-procedure* solver deadline for the TSP method: each
    procedure's solve starts a fresh countdown, and a procedure that cannot
    be solved in time degrades down the aligner's ladder instead of raising
    (``report.degraded`` records which rung each such procedure used).
    """
    if method not in ALIGN_METHODS:
        raise UnknownNameError(
            f"unknown method {method!r}; choose from {ALIGN_METHODS}"
        )
    layouts = ProgramLayout()
    for index, proc in enumerate(program):
        edge_profile = profile.procedures.get(proc.name, EdgeProfile())
        if method == "original" or edge_profile.total() == 0:
            layouts[proc.name] = original_layout(proc.cfg)
        elif method == "greedy":
            layouts[proc.name] = pettis_hansen_layout(proc.cfg, edge_profile)
        elif method == "cost-greedy":
            layouts[proc.name] = calder_grunwald_layout(
                proc.cfg, edge_profile, model
            )
        elif method == "cg-exhaustive":
            # Calder & Grunwald's second improvement: exhaustive search
            # over the blocks touched by the 15 hottest edges (§5).
            layouts[proc.name] = calder_grunwald_layout(
                proc.cfg, edge_profile, model, exhaustive_edges=15
            )
        else:
            alignment = tsp_align(
                proc.cfg,
                edge_profile,
                model,
                effort=effort,
                seed=seed + index,
                budget=budget,
            )
            layouts[proc.name] = alignment.layout
            if report is not None:
                report.cities[proc.name] = alignment.instance.n
                report.costs[proc.name] = alignment.cost
                report.runs_finding_best[proc.name] = (
                    alignment.runs_finding_best,
                    alignment.runs_total,
                )
                if alignment.degraded != "none":
                    report.degraded[proc.name] = alignment.degraded
                    if alignment.warning:
                        report.warnings.append(
                            f"{proc.name}: degraded to "
                            f"{alignment.degraded!r} ({alignment.warning})"
                        )
    return layouts


@dataclass
class LowerBoundReport:
    """Held–Karp penalty lower bounds, per procedure and total."""

    per_procedure: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_procedure.values())


def lower_bound_program(
    program: Program,
    profile: ProgramProfile,
    *,
    model: PenaltyModel = ALPHA_21164,
    iterations: int | None = None,
    upper_bounds: dict[str, float] | None = None,
    budget: Budget | None = None,
) -> LowerBoundReport:
    """Held–Karp lower bound on the total control penalty of any layout.

    ``upper_bounds`` optionally supplies known per-procedure tour costs
    (e.g. from a TSP alignment) to tighten the subgradient schedule.
    """
    report = LowerBoundReport()
    for proc in program:
        edge_profile = profile.procedures.get(proc.name)
        if edge_profile is None or edge_profile.total() == 0:
            report.per_procedure[proc.name] = 0.0
            continue
        ub = upper_bounds.get(proc.name) if upper_bounds else None
        report.per_procedure[proc.name] = alignment_lower_bound(
            proc.cfg,
            edge_profile,
            model,
            upper_bound=ub,
            iterations=iterations,
            budget=budget,
        )
    return report
