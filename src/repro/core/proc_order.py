"""Interprocedural procedure ordering (the paper's §6 future work).

Branch alignment is intraprocedural; the paper closes by noting "we would
like to try to generalize our method to the interprocedural code placement
problem".  The classic technique is Pettis & Hansen's procedure
positioning: order procedures so that hot caller/callee pairs sit close in
memory, improving instruction-cache behaviour (which the timing simulator
models).  This module implements the greedy chain-merging algorithm over
the dynamic call graph recorded by the profiler.
"""

from __future__ import annotations

from repro.cfg.graph import Program
from repro.profiles.edge_profile import ProgramProfile


def pettis_hansen_procedure_order(
    program: Program, profile: ProgramProfile
) -> list[str]:
    """Order procedures by greedy call-edge chain merging.

    Call edges are processed by decreasing call count; the two chains
    containing caller and callee are joined with the orientation that puts
    the pair closest together (the simplified closest-is-best variant of
    Pettis & Hansen's procedure positioning).  The entry procedure's chain
    is emitted first; remaining chains follow by decreasing call weight.
    """
    names = [proc.name for proc in program]
    chain_of = {name: name for name in names}
    chains: dict[str, list[str]] = {name: [name] for name in names}

    def find(name: str) -> str:
        while chain_of[name] != name:
            chain_of[name] = chain_of[chain_of[name]]
            name = chain_of[name]
        return name

    edges = sorted(
        (
            (count, caller, callee)
            for (caller, callee), count in profile.call_pairs.items()
            if caller in chains and callee in chains and caller != callee
        ),
        key=lambda item: (-item[0], item[1], item[2]),
    )
    for count, caller, callee in edges:
        a, b = find(caller), find(callee)
        if a == b:
            continue
        left, right = chains[a], chains[b]
        # Choose the orientation minimizing caller/callee distance.
        candidates = [
            left + right,
            left + right[::-1],
            right + left,
            right[::-1] + left,
        ]
        def distance(order: list[str]) -> int:
            return abs(order.index(caller) - order.index(callee))
        merged = min(candidates, key=distance)
        chains[a] = merged
        chain_of[b] = a
        del chains[b]

    def chain_weight(chain: list[str]) -> int:
        return sum(profile.call_counts.get(name, 0) for name in chain)

    entry_chain = find(program.main)
    ordered_chains = sorted(
        chains.items(),
        key=lambda item: (
            item[0] != entry_chain,
            -chain_weight(item[1]),
            item[1][0],
        ),
    )
    order: list[str] = []
    for root, chain in ordered_chains:
        if program.main in chain and chain[0] != program.main:
            # Keep the program entry at the very start of memory.
            at = chain.index(program.main)
            chain = chain[at:] + chain[:at]
        order.extend(chain)
    return order


def reorder_program(program: Program, order: list[str]) -> Program:
    """A copy of ``program`` with procedures in ``order``.

    Every procedure must appear exactly once; this is the program handed to
    :func:`repro.core.materialize.materialize_program`, whose address
    packing follows program order.
    """
    if sorted(order) != sorted(program.procedures):
        raise ValueError("order must be a permutation of the procedures")
    reordered = Program(main=program.main)
    for name in order:
        reordered.add(program.procedures[name])
    return reordered
