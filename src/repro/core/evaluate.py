"""Analytic control-penalty evaluation of layouts.

This walks a layout block by block and charges each block's terminator cost
under a (possibly different) evaluation profile — the "compiler-computed
control penalties" reported throughout the paper's evaluation.  Under
cross-validation (§4.2) the static predictions come from the *training*
profile while the counts come from the *testing* profile, which is exactly
how this module separates the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.costmodel import CostBreakdown, successor_counts, terminator_cost
from repro.core.layout import Layout, ProgramLayout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile


def evaluate_layout(
    cfg: ControlFlowGraph,
    layout: Layout,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
) -> CostBreakdown:
    """Total penalty cycles of one procedure's layout under ``profile``.

    ``predictor`` defaults to static prediction trained on the same profile
    (train = test); pass one trained on a different profile to evaluate a
    cross-validated layout.
    """
    layout.check_against(cfg)
    if predictor is None:
        predictor = StaticPredictor.train(cfg, profile)
    successor_map = layout.successor_map()
    total = CostBreakdown()
    for block_id in layout.order:
        block = cfg.block(block_id)
        counts = successor_counts(profile.counts, block)
        if not counts:
            continue
        total = total + terminator_cost(
            block,
            counts,
            predictor.predict(block_id),
            successor_map[block_id],
            model,
        )
    return total


@dataclass
class ProgramPenalty:
    """Per-procedure and total penalty cycles for a program layout."""

    per_procedure: dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(b.total for b in self.per_procedure.values())

    @property
    def breakdown(self) -> CostBreakdown:
        result = CostBreakdown()
        for b in self.per_procedure.values():
            result = result + b
        return result


def train_predictors(
    program: Program, profile: ProgramProfile
) -> dict[str, StaticPredictor]:
    """Static predictors for every procedure, trained on ``profile``."""
    return {
        proc.name: StaticPredictor.train(
            proc.cfg,
            profile.procedures.get(proc.name, EdgeProfile()),
        )
        for proc in program
    }


def evaluate_program(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    model: PenaltyModel,
    *,
    predictors: dict[str, StaticPredictor] | None = None,
) -> ProgramPenalty:
    """Penalty cycles of a whole-program layout under ``profile``.

    Delegates to the pipeline's evaluate stage
    (:func:`repro.pipeline.stages.evaluate_procedures`) — the single
    program-level evaluation code path.
    """
    from repro.pipeline.stages import evaluate_procedures  # local: cycle

    return evaluate_procedures(
        program, layouts, profile, model, predictors=predictors
    )
