"""Reduction of branch alignment to a DTSP cost matrix (§2.2).

Cities are the procedure's basic blocks plus one dummy end-of-layout city.
The cost of directed edge (B, X) is the penalty charged at B's end when X
succeeds B in the layout, so the cost of the walk entry → … → dummy equals
the total control penalty of the layout.

The walk is anchored by construction: entering the entry city from anywhere
but the dummy is forbidden (BIG), and the dummy can only be left toward the
entry, so every finite-cost tour is ``entry, …, dummy`` up to rotation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import TerminatorKind
from repro.cfg.graph import ControlFlowGraph
from repro.core.costmodel import successor_counts, terminator_cost
from repro.core.layout import Layout
from repro.machine.models import PenaltyModel
from repro.machine.predictors import StaticPredictor
from repro.profiles.edge_profile import EdgeProfile

#: Pseudo block id of the dummy end-of-layout city.
DUMMY_CITY = -1


@dataclass
class AlignmentInstance:
    """A DTSP instance for one procedure.

    ``cities[i]`` is the block id of matrix row/column ``i``; the entry block
    is city 0 and the dummy is the last city.  ``big`` marks forbidden edges;
    any tour with cost below ``big`` uses none of them.
    """

    cities: tuple[int, ...]
    matrix: np.ndarray
    big: float

    @property
    def n(self) -> int:
        return len(self.cities)

    @property
    def entry_index(self) -> int:
        return 0

    @property
    def dummy_index(self) -> int:
        return self.n - 1

    def index_of(self) -> dict[int, int]:
        return {city: i for i, city in enumerate(self.cities)}

    def layout_cost(self, layout: Layout) -> float:
        """Control penalty of a layout = cost of the corresponding walk."""
        index = self.index_of()
        order = [index[block_id] for block_id in layout.order]
        order.append(self.dummy_index)
        return float(
            sum(self.matrix[a, b] for a, b in zip(order, order[1:]))
        )

    def layout_from_cycle(self, cycle: list[int]) -> Layout:
        """Convert a Hamiltonian cycle (city indices) into a layout by
        rotating the dummy to the end."""
        if sorted(cycle) != list(range(self.n)):
            raise ValueError("cycle is not a permutation of the cities")
        at = cycle.index(self.dummy_index)
        rotated = cycle[at + 1:] + cycle[:at]
        return Layout(tuple(self.cities[i] for i in rotated))


def build_alignment_instance(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    model: PenaltyModel,
    *,
    predictor: StaticPredictor | None = None,
) -> AlignmentInstance:
    """Build the DTSP matrix for one procedure.

    ``profile`` supplies the edge counts the costs are computed from;
    ``predictor`` defaults to static prediction trained on the same profile
    (the paper's setting — pass a predictor trained elsewhere to build
    cross-validation evaluation matrices).
    """
    if predictor is None:
        predictor = StaticPredictor.train(cfg, profile)

    block_ids = [cfg.entry] + sorted(b for b in cfg.block_ids if b != cfg.entry)
    cities = (*block_ids, DUMMY_CITY)
    n = len(cities)
    index = {city: i for i, city in enumerate(cities)}
    matrix = np.zeros((n, n), dtype=float)

    # Fill each block's row: the cost is the "no useful successor" default
    # everywhere except toward the block's own CFG successors, so each row
    # is O(n) plus a handful of exact recomputations.
    finite_total = 0.0
    for block_id in block_ids:
        block = cfg.block(block_id)
        counts = successor_counts(profile.counts, block)
        predicted = predictor.predict(block_id)
        row = index[block_id]
        default = terminator_cost(block, counts, predicted, None, model).total
        matrix[row, :] = default
        for succ in block.successors:
            cost = terminator_cost(block, counts, predicted, succ, model).total
            matrix[row, index[succ]] = cost
        finite_total += float(matrix[row].max())
    # Dummy row cost toward the entry is zero; set below with BIG elsewhere.

    big = 10.0 * (finite_total + 1.0) + 1000.0
    dummy = index[DUMMY_CITY]
    entry = index[cfg.entry]
    np.fill_diagonal(matrix, big)
    matrix[dummy, :] = big
    matrix[dummy, entry] = 0.0
    # Nothing but the dummy may precede the entry: anchors the walk.
    matrix[:, entry] = np.where(
        np.arange(n) == dummy, matrix[:, entry], big
    )
    # Blocks cost nothing toward the dummy beyond their computed default —
    # but the default column value was already written per-row above; the
    # dummy column keeps those defaults (no CFG successor is the dummy).
    return AlignmentInstance(cities=cities, matrix=matrix, big=big)


def instance_statistics(instance: AlignmentInstance) -> dict[str, float]:
    """Small descriptive summary used by reports and tests."""
    finite = instance.matrix[instance.matrix < instance.big]
    return {
        "cities": float(instance.n),
        "finite_edges": float(finite.size),
        "max_cost": float(finite.max()) if finite.size else 0.0,
        "mean_cost": float(finite.mean()) if finite.size else 0.0,
    }


def has_real_choice(cfg: ControlFlowGraph, profile: EdgeProfile) -> bool:
    """True when the procedure's alignment is non-trivial: at least one
    executed block with more than one possible layout benefit.  Procedures
    that never executed need no alignment at all."""
    for block in cfg:
        if profile.block_exit_count(block.block_id) > 0:
            if block.kind in (TerminatorKind.CONDITIONAL, TerminatorKind.MULTIWAY):
                return True
            if block.kind is TerminatorKind.UNCONDITIONAL:
                return True
    return False
