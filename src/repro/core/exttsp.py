"""The Ext-TSP layout objective (fall-through + bounded short-jump windows).

Where the paper prices a layout by the control *penalty* it pays (lower is
better, §2.2's DTSP reduction minimizes it), the Extended-TSP objective of
Mestre–Pupyrev–Umboh ("On the Extended TSP Problem") *rewards* a layout
for keeping hot transfers cheap: an edge executed ``w`` times scores

* ``w * fallthrough_weight`` when the target starts exactly where the
  source ends (a physical fall-through),
* ``w * forward_weight`` when the target lies ahead within a bounded
  forward window (a short forward jump stays in reach of the decoder and
  the instruction cache),
* ``w * backward_weight`` when the target lies behind within a (tighter)
  backward window (a short loop back edge),
* nothing otherwise.

Higher is better; the score is bounded above by every edge falling
through (:func:`exttsp_max_score`).  This is the objective behind the
chain-merging heuristic of Newell–Pupyrev ("Improved Basic Block
Reordering") that superseded Pettis–Hansen in production (BOLT), and the
repro prices *every* aligner's layout under both models — the 1997
penalty and this score are dual columns throughout the evaluation stage
and the experiment tables.

Block addresses come from the same size model the i-cache simulation
uses: ``body_words`` plus one terminator word per block, blocks placed
consecutively in layout order.  Distances (and the windows) are measured
in instruction words, from the end of the source block to the start of
the target block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.blocks import TERMINATOR_WORDS
from repro.cfg.graph import ControlFlowGraph, Program
from repro.core.layout import Layout, ProgramLayout
from repro.profiles.edge_profile import EdgeProfile, ProgramProfile

#: Methods whose *solve* is driven by the Ext-TSP objective; their align
#: cache keys must cover the scoring parameters (see ``stages.align_key``).
EXTTSP_METHODS = ("exttsp", "chain-merge")


@dataclass(frozen=True)
class ExtTSPParams:
    """Weights and windows of the Ext-TSP objective.

    Defaults follow Newell–Pupyrev: fall-throughs score full weight,
    short jumps a tenth of it, with a 1024-word forward window and a
    tighter 640-word backward window.  Windows are in instruction words
    (the repro's address unit), measured end-of-source → start-of-target.
    """

    fallthrough_weight: float = 1.0
    forward_weight: float = 0.1
    backward_weight: float = 0.1
    forward_window: int = 1024
    backward_window: int = 640

    def fingerprint(self) -> str:
        """Stable cache-key component covering every scoring knob."""
        return (
            f"exttsp:{self.fallthrough_weight!r}:{self.forward_weight!r}"
            f":{self.backward_weight!r}:{self.forward_window}"
            f":{self.backward_window}"
        )


DEFAULT_PARAMS = ExtTSPParams()


def block_size_words(block) -> int:
    """Size of one block in instruction words: body plus terminator."""
    return block.body_words + TERMINATOR_WORDS[block.kind]


def block_addresses(
    cfg: ControlFlowGraph, order: tuple[int, ...] | list[int]
) -> dict[int, tuple[int, int]]:
    """``block_id -> (start, end)`` addresses for blocks laid out
    consecutively in ``order`` (end is one past the last word)."""
    addresses: dict[int, tuple[int, int]] = {}
    at = 0
    for block_id in order:
        size = block_size_words(cfg.block(block_id))
        addresses[block_id] = (at, at + size)
        at += size
    return addresses


def edge_weight(
    src_end: int, dst_start: int, params: ExtTSPParams = DEFAULT_PARAMS
) -> float:
    """The Ext-TSP weight class of one (source end, target start) pair."""
    if dst_start == src_end:
        return params.fallthrough_weight
    if dst_start > src_end:
        if dst_start - src_end <= params.forward_window:
            return params.forward_weight
        return 0.0
    if src_end - dst_start <= params.backward_window:
        return params.backward_weight
    return 0.0


def _scored_edges(cfg: ControlFlowGraph, profile: EdgeProfile):
    """Profiled CFG edges the objective scores: executed, real, and an
    actual successor edge (mirrors the greedy aligners' edge filter)."""
    for (src, dst), count in profile.counts.items():
        if count <= 0:
            continue
        if src not in cfg or dst not in cfg.successors(src):
            continue
        yield src, dst, count


def exttsp_score(
    cfg: ControlFlowGraph,
    layout: Layout,
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
) -> float:
    """Ext-TSP score of one procedure's layout (higher is better)."""
    addresses = block_addresses(cfg, layout.order)
    total = 0.0
    for src, dst, count in _scored_edges(cfg, profile):
        weight = edge_weight(addresses[src][1], addresses[dst][0], params)
        if weight:
            total += count * weight
    return total


def exttsp_max_score(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
) -> float:
    """Upper bound on any layout's score: every scored edge falling
    through (unachievable whenever a block has two hot successors, but a
    sound normalization denominator)."""
    return params.fallthrough_weight * float(
        sum(count for _src, _dst, count in _scored_edges(cfg, profile))
    )


def exttsp_program_score(
    program: Program,
    layouts: ProgramLayout,
    profile: ProgramProfile,
    params: ExtTSPParams = DEFAULT_PARAMS,
) -> float:
    """Whole-program Ext-TSP score: the per-procedure scores summed in
    program order (procedures without a profile slice score zero)."""
    total = 0.0
    for proc in program:
        edge_profile = profile.procedures.get(proc.name)
        if edge_profile is None or proc.name not in layouts:
            continue
        total += exttsp_score(proc.cfg, layouts[proc.name], edge_profile, params)
    return total
