"""Tests for the error taxonomy (repro.errors)."""

import pytest

from repro import errors
from repro.errors import (
    CheckpointCorruptError,
    DegradationError,
    ProfileMismatchError,
    ReproError,
    SolverBudgetExceeded,
    UnknownNameError,
    UsageError,
)


class TestTaxonomy:
    def test_every_error_derives_from_repro_error(self):
        for cls in (
            UsageError,
            UnknownNameError,
            ProfileMismatchError,
            SolverBudgetExceeded,
            DegradationError,
            CheckpointCorruptError,
        ):
            assert issubclass(cls, ReproError)

    def test_unknown_name_keeps_builtin_compatibility(self):
        # Long-standing call sites catch KeyError/ValueError for bad names.
        assert issubclass(UnknownNameError, KeyError)
        assert issubclass(UnknownNameError, ValueError)

    def test_unknown_name_str_is_not_quoted(self):
        # KeyError.__str__ shows repr(args[0]); the taxonomy overrides it so
        # the CLI prints the message verbatim.
        exc = UnknownNameError("unknown machine model 'zap'")
        assert str(exc) == "unknown machine model 'zap'"

    def test_solver_budget_carries_diagnostics(self):
        exc = SolverBudgetExceeded(
            "boom", where="iterated-3opt", elapsed_ms=12.5, iterations=99,
            best_so_far=[0, 2, 1],
        )
        assert exc.where == "iterated-3opt"
        assert exc.elapsed_ms == 12.5
        assert exc.iterations == 99
        assert exc.best_so_far == [0, 2, 1]

    def test_checkpoint_corrupt_carries_line_number(self):
        exc = CheckpointCorruptError("bad line", line_number=7)
        assert exc.line_number == 7

    def test_vm_runaway_lazily_re_exported(self):
        from repro.lang.vm import VMError, VMRunawayError

        assert errors.VMRunawayError is VMRunawayError
        assert issubclass(VMRunawayError, VMError)
        assert issubclass(VMRunawayError, ReproError)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            errors.NoSuchError  # noqa: B018


class TestRaisedByLookups:
    """The taxonomy is actually used at the user-facing lookup points."""

    def test_machine_model(self):
        from repro.machine.models import get_model

        with pytest.raises(UnknownNameError, match="unknown machine model"):
            get_model("zap9000")

    def test_effort(self):
        from repro.tsp.solve import get_effort

        with pytest.raises(UnknownNameError, match="unknown effort"):
            get_effort("heroic")

    def test_benchmark(self):
        from repro.workloads.suite import get_benchmark

        with pytest.raises(UnknownNameError, match="unknown benchmark"):
            get_benchmark("zzz")

    def test_dataset(self):
        from repro.workloads.suite import get_benchmark

        with pytest.raises(UnknownNameError, match="unknown data set"):
            get_benchmark("su2").inputs("nope")

    def test_align_method(self, loop_program, loop_profile):
        from repro.core import align_program

        with pytest.raises(UnknownNameError, match="unknown method"):
            align_program(loop_program, loop_profile, method="sorcery")

    def test_profile_error_alias(self):
        from repro.profiles.edge_profile import ProfileError

        assert ProfileError is ProfileMismatchError

    def test_catching_repro_error_is_enough_at_a_tier_boundary(self):
        from repro.machine.models import get_model

        with pytest.raises(ReproError):
            get_model("zap9000")
