"""Shared fixtures: small CFGs, a compiled module, and profiled runs."""

from __future__ import annotations

import random

import pytest

from repro.cfg import CFGBuilder, Procedure, Program
from repro.lang import compile_source, run_and_profile
from repro.machine import ALPHA_21164
from repro.profiles import random_bias_assignment, synthesize_profile


@pytest.fixture
def loop_cfg():
    """A small loop with a conditional exit and a switch in the body."""
    b = CFGBuilder()
    b.block("entry", padding=3).jump("head")
    b.block("head", padding=2).cond("body", "exit")
    b.block("body", padding=4).switch(["c0", "c1", "c2", "c0"])
    b.block("c0", padding=5).jump("latch")
    b.block("c1", padding=2).cond("c1a", "latch")
    b.block("c1a", padding=1).jump("latch")
    b.block("c2", padding=8).jump("latch")
    b.block("latch", padding=1).jump("head")
    b.block("exit", padding=1).ret()
    return b.build(entry="entry")


@pytest.fixture
def diamond_cfg():
    """entry -> (left | right) -> exit."""
    b = CFGBuilder()
    b.block("entry", padding=2).cond("left", "right")
    b.block("left", padding=3).jump("exit")
    b.block("right", padding=4).jump("exit")
    b.block("exit", padding=1).ret()
    return b.build(entry="entry")


@pytest.fixture
def loop_program(loop_cfg):
    program = Program()
    program.add(Procedure("main", loop_cfg))
    return program


@pytest.fixture
def loop_profile(loop_program, loop_cfg):
    rng = random.Random(1)
    biases = {"main": random_bias_assignment(loop_cfg, rng)}
    return synthesize_profile(
        loop_program, biases, seed=2, walks_per_procedure=40, max_steps=2500
    )


MINI_SOURCE = """
arr counts[32];
global total = 0;

fn bucket(x) {
  return (x * 7 + 3) % 32;
}

fn classify(v) {
  switch (v % 6) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 2;
    case 4: return 3;
    default: return 0;
  }
}

fn main() {
  var i = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    counts[bucket(v)] = counts[bucket(v)] + 1;
    if (v > 50 && v % 2 == 0) {
      total = total + classify(v);
    } else {
      if (v < 5 || v == 13) { total = total - 1; }
    }
    i = i + 1;
  }
  output(total);
  return total;
}
"""


@pytest.fixture(scope="session")
def mini_module():
    return compile_source(MINI_SOURCE)


@pytest.fixture(scope="session")
def mini_run(mini_module):
    rng = random.Random(9)
    inputs = [rng.randrange(0, 120) for _ in range(800)]
    return run_and_profile(mini_module, inputs)


@pytest.fixture(scope="session")
def mini_profile(mini_run):
    return mini_run[1]


@pytest.fixture
def machine_model():
    return ALPHA_21164
