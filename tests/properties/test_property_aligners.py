"""Property-based tests of the aligners on random CFGs and profiles."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    calder_grunwald_layout,
    evaluate_layout,
    original_layout,
    pettis_hansen_layout,
)
from repro.core.hot_cold import split_hot_cold
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile
from repro.workloads import GeneratorConfig, random_procedure


def make_case(cfg_seed: int, target: int, profile_seed: int):
    rng = random.Random(cfg_seed)
    proc = random_procedure("p", rng, GeneratorConfig(target_blocks=target))
    profile = EdgeProfile()
    profile_rng = random.Random(profile_seed)
    for block in proc.cfg:
        for succ in block.successors:
            if profile_rng.random() < 0.85:
                profile.add(block.block_id, succ, profile_rng.randrange(0, 300))
    return proc, profile


@settings(max_examples=30, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 30),
    profile_seed=st.integers(0, 10_000),
)
def test_greedy_layouts_are_valid_permutations(cfg_seed, target, profile_seed):
    proc, profile = make_case(cfg_seed, target, profile_seed)
    for layout in (
        pettis_hansen_layout(proc.cfg, profile),
        calder_grunwald_layout(proc.cfg, profile, ALPHA_21164),
    ):
        layout.check_against(proc.cfg)


@settings(max_examples=25, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 25),
    profile_seed=st.integers(0, 10_000),
)
def test_tsp_never_loses_to_original(cfg_seed, target, profile_seed):
    """The TSP aligner never loses to the original order: the solver's
    start pool and every rung of its degradation ladder include the
    identity tour, so the returned layout costs at most the original's.

    (Greedy chaining carries no such guarantee — `tsp_aligner` documents
    that Pettis–Hansen can lose to the original order, which is why the
    ladder's greedy rung keeps whichever of the two is cheaper.)
    """
    from repro.core import tsp_align

    proc, profile = make_case(cfg_seed, target, profile_seed)
    baseline = evaluate_layout(
        proc.cfg, original_layout(proc.cfg), profile, ALPHA_21164
    ).total
    alignment = tsp_align(proc.cfg, profile, ALPHA_21164, effort="quick")
    aligned = evaluate_layout(
        proc.cfg, alignment.layout, profile, ALPHA_21164
    ).total
    assert aligned <= baseline + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 25),
    profile_seed=st.integers(0, 10_000),
)
def test_hot_cold_split_preserves_validity_and_hot_penalty(
    cfg_seed, target, profile_seed
):
    proc, profile = make_case(cfg_seed, target, profile_seed)
    layout = pettis_hansen_layout(proc.cfg, profile)
    split = split_hot_cold(proc.cfg, layout, profile)
    split.check_against(proc.cfg)
    # Every cold block sits after every hot block (entry excepted).
    def heat(block_id):
        h = profile.block_exit_count(block_id)
        return h if h else profile.block_entry_count(block_id)
    positions = split.positions
    hot_positions = [
        positions[b] for b in split.order
        if heat(b) > 0 or b == proc.cfg.entry
    ]
    cold_positions = [
        positions[b] for b in split.order
        if heat(b) == 0 and b != proc.cfg.entry
    ]
    if hot_positions and cold_positions:
        assert max(hot_positions) < min(cold_positions)
