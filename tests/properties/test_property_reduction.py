"""Property-based tests of the DTSP reduction (hypothesis).

The central theorem of §2.2: for *any* layout of *any* CFG under *any*
edge profile, the cost of the corresponding walk through the alignment
matrix equals the control penalty of the materialized layout.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import Procedure, validate_cfg
from repro.core import build_alignment_instance, evaluate_layout
from repro.core.layout import Layout
from repro.machine import ALPHA_21064, ALPHA_21164, DEEP_PIPE, UNIT_COST
from repro.profiles import EdgeProfile
from repro.workloads import GeneratorConfig, random_procedure

MODELS = [ALPHA_21164, ALPHA_21064, DEEP_PIPE, UNIT_COST]


def build_procedure(seed: int, target_blocks: int) -> Procedure:
    rng = random.Random(seed)
    return random_procedure(
        "p", rng, GeneratorConfig(target_blocks=target_blocks)
    )


def build_profile(proc: Procedure, seed: int) -> EdgeProfile:
    """A random CFG-consistent profile (not necessarily flow-conserving:
    the reduction must not care)."""
    rng = random.Random(seed)
    profile = EdgeProfile()
    for block in proc.cfg:
        for succ in block.successors:
            if rng.random() < 0.8:
                profile.add(block.block_id, succ, rng.randrange(0, 500))
    return profile


def random_layout(proc: Procedure, seed: int) -> Layout:
    rng = random.Random(seed)
    rest = [b for b in proc.cfg.block_ids if b != proc.cfg.entry]
    rng.shuffle(rest)
    return Layout((proc.cfg.entry, *rest))


@settings(max_examples=40, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    profile_seed=st.integers(0, 10_000),
    layout_seed=st.integers(0, 10_000),
    target=st.integers(5, 30),
    model_index=st.integers(0, len(MODELS) - 1),
)
def test_walk_cost_equals_layout_penalty(
    cfg_seed, profile_seed, layout_seed, target, model_index
):
    model = MODELS[model_index]
    proc = build_procedure(cfg_seed, target)
    validate_cfg(proc.cfg)
    profile = build_profile(proc, profile_seed)
    instance = build_alignment_instance(proc.cfg, profile, model)
    layout = random_layout(proc, layout_seed)
    walk = instance.layout_cost(layout)
    penalty = evaluate_layout(proc.cfg, layout, profile, model).total
    assert abs(walk - penalty) <= 1e-6 * max(1.0, penalty)


@settings(max_examples=25, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    profile_seed=st.integers(0, 10_000),
    target=st.integers(5, 20),
)
def test_costs_nonnegative_and_finite(cfg_seed, profile_seed, target):
    proc = build_procedure(cfg_seed, target)
    profile = build_profile(proc, profile_seed)
    instance = build_alignment_instance(proc.cfg, profile, ALPHA_21164)
    assert (instance.matrix >= 0).all()
    assert (instance.matrix <= instance.big).all()


@settings(max_examples=20, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    profile_seed=st.integers(0, 10_000),
    target=st.integers(5, 18),
)
def test_alignment_never_worse_than_original(cfg_seed, profile_seed, target):
    """The TSP aligner includes the identity start, so it can never lose to
    the original layout."""
    from repro.core import original_layout, tsp_align

    proc = build_procedure(cfg_seed, target)
    profile = build_profile(proc, profile_seed)
    alignment = tsp_align(proc.cfg, profile, ALPHA_21164, effort="quick")
    original = evaluate_layout(
        proc.cfg, original_layout(proc.cfg), profile, ALPHA_21164
    ).total
    assert alignment.cost <= original + 1e-6
