"""Property-based tests of the staged pipeline's core invariants.

The central one is the paper's reduction itself: the DTSP tour cost a
pipeline stage reports for a layout equals the control penalty the
evaluation stage computes for that layout — for *every* registered method.
``ProcedureResult.cost`` and ``evaluate_layout`` are two walks over the
same model, and they must never drift apart.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate_layout
from repro.core.align import ALIGN_METHODS
from repro.machine import ALPHA_21164
from repro.pipeline.stages import align_one, instance_for
from repro.pipeline.task import ProcedureTask
from repro.profiles import EdgeProfile
from repro.tsp.solve import get_effort
from repro.workloads import GeneratorConfig, random_procedure


def make_case(cfg_seed: int, target: int, profile_seed: int):
    rng = random.Random(cfg_seed)
    proc = random_procedure("p", rng, GeneratorConfig(target_blocks=target))
    profile = EdgeProfile()
    profile_rng = random.Random(profile_seed)
    for block in proc.cfg:
        for succ in block.successors:
            if profile_rng.random() < 0.85:
                profile.add(block.block_id, succ, profile_rng.randrange(0, 300))
    return proc, profile


def tasks_for(proc, profile, seed: int = 0):
    return [
        ProcedureTask(
            name=proc.name,
            cfg=proc.cfg,
            profile=profile,
            method=method,
            model=ALPHA_21164,
            effort=get_effort("quick"),
            seed=seed,
        )
        for method in ALIGN_METHODS
    ]


@settings(max_examples=20, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 22),
    profile_seed=st.integers(0, 10_000),
)
def test_tour_cost_equals_evaluated_penalty(cfg_seed, target, profile_seed):
    """§2.2's reduction, end to end: every method's reported layout cost
    (a tour cost under the DTSP instance) equals the evaluation stage's
    control penalty for the same layout — exactly, not approximately."""
    proc, profile = make_case(cfg_seed, target, profile_seed)
    for task in tasks_for(proc, profile):
        result = align_one(task)
        result.layout.check_against(proc.cfg)
        evaluated = evaluate_layout(
            proc.cfg, result.layout, profile, ALPHA_21164
        ).total
        if result.cost is not None:
            assert result.cost == evaluated, (
                f"{task.method}: tour cost {result.cost} != "
                f"evaluated penalty {evaluated}"
            )
        # Results without a priced cost (the trivial path) still evaluate:
        # the layout must be the no-op one, costing the original penalty.
        if result.cost is None:
            assert profile.total() == 0 or task.method == "original"


@settings(max_examples=15, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 18),
    profile_seed=st.integers(0, 10_000),
)
def test_every_method_is_priced_both_ways(cfg_seed, target, profile_seed):
    """Dual pricing: every registered aligner's result carries an Ext-TSP
    score alongside the paper penalty, the score recomputes exactly from
    the layout it came with, never exceeds the all-fall-through bound, and
    is deterministic across repeated runs."""
    from repro.core import exttsp_max_score, exttsp_score

    proc, profile = make_case(cfg_seed, target, profile_seed)
    bound = exttsp_max_score(proc.cfg, profile)
    for task in tasks_for(proc, profile):
        result = align_one(task)
        assert result.exttsp_score is not None, task.method
        assert result.exttsp_score == exttsp_score(
            proc.cfg, result.layout, profile
        ), task.method
        assert result.exttsp_score <= bound + 1e-9, task.method
        again = align_one(task)
        assert again.exttsp_score == result.exttsp_score, task.method
        assert again.layout.order == result.layout.order, task.method


@settings(max_examples=15, deadline=None)
@given(
    cfg_seed=st.integers(0, 10_000),
    target=st.integers(5, 18),
    profile_seed=st.integers(0, 10_000),
)
def test_layout_cost_agrees_for_any_instance_client(
    cfg_seed, target, profile_seed
):
    """All instance clients price layouts identically: pricing a method's
    layout under a freshly built instance gives the same number the
    pipeline attached to the result (matrix construction is a pure
    function of its fingerprinted inputs)."""
    proc, profile = make_case(cfg_seed, target, profile_seed)
    if profile.total() == 0:
        return
    instance = instance_for(proc.cfg, profile, ALPHA_21164)
    for task in tasks_for(proc, profile):
        result = align_one(task)
        if result.cost is not None:
            assert instance.layout_cost(result.layout) == result.cost
