"""Property-based tests of the TSP library's core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsp import (
    branch_and_bound,
    assignment_bound,
    check_tour,
    exact_tour,
    held_karp_bound_directed,
    iterated_three_opt,
    patched_tour,
    solve_dtsp,
    tour_cost,
)


def matrix_strategy(min_n=4, max_n=9):
    return st.integers(min_n, max_n).flatmap(
        lambda n: st.lists(
            st.lists(
                st.integers(1, 200), min_size=n, max_size=n
            ),
            min_size=n,
            max_size=n,
        ).map(lambda rows: _clean(np.array(rows, dtype=float)))
    )


def _clean(matrix: np.ndarray) -> np.ndarray:
    np.fill_diagonal(matrix, 0.0)
    return matrix


@settings(max_examples=25, deadline=None)
@given(matrix=matrix_strategy())
def test_bounds_below_heuristics(matrix):
    """HK bound <= exact optimum <= every heuristic tour; AP <= optimum."""
    _, optimal = exact_tour(matrix)
    heuristic = iterated_three_opt(matrix, seed=0)
    patched_cost = patched_tour(matrix)[1]
    hk = held_karp_bound_directed(matrix, tour_upper_bound=heuristic.cost)
    ap = assignment_bound(matrix)
    tolerance = 1e-6 * max(1.0, optimal)
    assert hk.bound <= optimal + tolerance
    assert ap <= optimal + tolerance
    assert heuristic.cost >= optimal - tolerance
    assert patched_cost >= optimal - tolerance


@settings(max_examples=20, deadline=None)
@given(matrix=matrix_strategy())
def test_branch_and_bound_matches_dp(matrix):
    _, optimal = exact_tour(matrix)
    result = branch_and_bound(matrix)
    assert result.optimal
    assert abs(result.cost - optimal) <= 1e-6 * max(1.0, optimal)


@settings(max_examples=20, deadline=None)
@given(matrix=matrix_strategy(), seed=st.integers(0, 100))
def test_solver_outputs_valid_tours(matrix, seed):
    result = solve_dtsp(matrix, effort="quick", seed=seed)
    n = matrix.shape[0]
    check_tour(result.tour, n)
    assert result.cost == tour_cost(matrix, result.tour)


@settings(max_examples=15, deadline=None)
@given(
    matrix=matrix_strategy(min_n=5, max_n=8),
    scale=st.integers(2, 50),
)
def test_cost_scaling_invariance(matrix, scale):
    """Scaling all costs scales the optimum; the optimal tour set is
    invariant, so the scaled exact cost is exactly scale times."""
    _, optimal = exact_tour(matrix)
    _, scaled = exact_tour(matrix * scale)
    assert abs(scaled - optimal * scale) <= 1e-6 * max(1.0, scaled)


@settings(max_examples=20, deadline=None)
@given(matrix=matrix_strategy(min_n=13, max_n=20), seed=st.integers(0, 50))
def test_kernel_engines_output_valid_exact_cost_tours(matrix, seed):
    """Every kernel engine returns a permutation whose reported cost is the
    recomputed tour cost (delta evaluation never drifts), and the guarded
    engine never costs more than the legacy solver."""
    n = matrix.shape[0]
    costs = {}
    for engine in ("legacy", "guarded", "turbo"):
        result = solve_dtsp(matrix, effort="quick", seed=seed, engine=engine)
        check_tour(result.tour, n)
        assert abs(result.cost - tour_cost(matrix, result.tour)) <= 1e-6
        costs[engine] = result.cost
    assert costs["guarded"] <= costs["legacy"] + 1e-9


@settings(max_examples=15, deadline=None)
@given(matrix=matrix_strategy(min_n=14, max_n=20), seed=st.integers(0, 50))
def test_budget_expiry_salvage_is_complete(matrix, seed):
    """However early the budget trips, a salvaged best-so-far is a complete
    permutation — even when the kernel is mid-descent."""
    from repro.budget import Budget
    from repro.errors import SolverBudgetExceeded

    n = matrix.shape[0]
    try:
        solve_dtsp(matrix, effort="paper", seed=seed,
                   budget=Budget(max_iterations=3))
    except SolverBudgetExceeded as exc:
        if exc.best_so_far is not None:
            assert sorted(exc.best_so_far) == list(range(n))
    else:  # tiny instances may finish inside the budget
        pass
