"""Property-based tests of the language pipeline.

Random arithmetic expressions are generated together with their expected
Python value; the compiled program must compute the same value.  This
differentially tests the lexer, parser, lowering, and VM at once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import validate_program
from repro.lang import compile_source, execute


class ExprTree:
    """A random expression plus its reference value (Python semantics)."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = value


def leaf(value: int) -> ExprTree:
    if value < 0:
        return ExprTree(f"(0 - {-value})", value)
    return ExprTree(str(value), value)


_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def combine(op: str, left: ExprTree, right: ExprTree) -> ExprTree:
    return ExprTree(
        f"({left.text} {op} {right.text})", _BIN_OPS[op](left.value, right.value)
    )


def expr_strategy():
    return st.recursive(
        st.integers(-50, 50).map(leaf),
        lambda children: st.tuples(
            st.sampled_from(sorted(_BIN_OPS)), children, children
        ).map(lambda t: combine(*t)),
        max_leaves=12,
    )


@settings(max_examples=60, deadline=None)
@given(tree=expr_strategy())
def test_expressions_compute_python_semantics(tree):
    source = f"fn main() {{ return {tree.text}; }}"
    module = compile_source(source)
    validate_program(module.program)
    assert execute(module, trace=False).returned == tree.value


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(0, 100), min_size=1, max_size=30),
    threshold=st.integers(0, 100),
)
def test_counting_loop_matches_python(values, threshold):
    source = f"""
    fn main() {{
      var i = 0;
      var count = 0;
      while (i < input_len()) {{
        if (input(i) > {threshold}) {{ count = count + 1; }}
        i = i + 1;
      }}
      return count;
    }}
    """
    module = compile_source(source)
    result = execute(module, values, trace=False)
    assert result.returned == sum(1 for v in values if v > threshold)


@settings(max_examples=30, deadline=None)
@given(
    selector=st.integers(-3, 12),
)
def test_switch_matches_python_dict(selector):
    source = """
    fn main() {
      switch (input(0)) {
        case 0: return 10;
        case 1: return 11;
        case 2: return 12;
        case 3: return 13;
        case 5: return 15;
        case 7: return 17;
        default: return -1;
      }
    }
    """
    module = compile_source(source)
    expected = {0: 10, 1: 11, 2: 12, 3: 13, 5: 15, 7: 17}.get(selector, -1)
    assert execute(module, [selector], trace=False).returned == expected


@settings(max_examples=25, deadline=None)
@given(
    a=st.booleans(), b=st.booleans(), c=st.booleans(),
)
def test_short_circuit_truth_table(a, b, c):
    source = """
    fn main() {
      var a = input(0);
      var b = input(1);
      var c = input(2);
      if (a && b || !c) { return 1; }
      return 0;
    }
    """
    module = compile_source(source)
    expected = 1 if (a and b) or (not c) else 0
    result = execute(module, [int(a), int(b), int(c)], trace=False)
    assert result.returned == expected
