"""Property-based tests of layout materialization invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import Layout
from repro.core.materialize import PhysicalKind, materialize_procedure
from repro.machine.icache import WORD_BYTES
from repro.machine.predictors import StaticPredictor
from repro.profiles import EdgeProfile
from repro.workloads import GeneratorConfig, random_procedure


def build(seed: int, target: int, layout_seed: int, start: int):
    rng = random.Random(seed)
    proc = random_procedure("p", rng, GeneratorConfig(target_blocks=target))
    profile = EdgeProfile()
    profile_rng = random.Random(seed + 1)
    for block in proc.cfg:
        for succ in block.successors:
            profile.add(block.block_id, succ, profile_rng.randrange(0, 200))
    predictor = StaticPredictor.train(proc.cfg, profile)
    rest = [b for b in proc.cfg.block_ids if b != proc.cfg.entry]
    random.Random(layout_seed).shuffle(rest)
    layout = Layout((proc.cfg.entry, *rest))
    physical = materialize_procedure(
        "p", proc.cfg, layout, predictor, start_address=start
    )
    return proc, layout, physical


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    target=st.integers(5, 25),
    layout_seed=st.integers(0, 10_000),
    start=st.integers(0, 64).map(lambda words: words * WORD_BYTES),
)
def test_materialization_invariants(seed, target, layout_seed, start):
    proc, layout, physical = build(seed, target, layout_seed, start)

    # Addresses are contiguous, word-aligned, and strictly increasing.
    address = start
    for block in physical.blocks:
        assert block.address == address
        assert block.address % WORD_BYTES == 0
        assert block.words >= 1 or block.kind is PhysicalKind.FALLTHROUGH
        address = block.end_address
    assert physical.end_address == address

    # Every CFG block materializes exactly once, in layout order.
    sources = [b.source for b in physical.blocks if b.source is not None]
    assert sources == list(layout.order)

    # Fixup blocks appear exactly after conditional blocks that need them,
    # and jump where the owner says they do.
    for i, block in enumerate(physical.blocks):
        if block.kind is PhysicalKind.FIXUP:
            owner = physical.blocks[i - 1]
            assert owner.kind is PhysicalKind.COND
            assert owner.fixup_target == block.branch_target
            assert block.words == 1

    # Fall-through blocks are followed by their CFG successor.
    for i, block in enumerate(physical.blocks):
        if block.kind is PhysicalKind.FALLTHROUGH:
            assert i + 1 < len(physical.blocks)
            assert physical.blocks[i + 1].source == block.fallthrough

    # Conditional invariants: the branch target is a real arm, and the
    # fall-through (direct or via fixup) is the other arm.
    for block in physical.blocks:
        if block.kind is PhysicalKind.COND:
            arms = set(proc.cfg.successors(block.source))
            assert block.branch_target in arms
            assert block.fallthrough in arms


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    target=st.integers(5, 20),
)
def test_code_size_bounds(seed, target):
    """Total emitted words are bounded: at least the body words, at most
    body + one CTI per block + one fixup word per conditional."""
    proc, layout, physical = build(seed, target, seed + 7, 0)
    body = sum(b.body_words for b in proc.cfg)
    n_blocks = len(proc.cfg)
    conditionals = sum(
        1 for b in proc.cfg if len(set(b.successors)) == 2
    )
    assert body <= physical.code_words <= body + n_blocks + conditionals
    assert physical.fixup_count <= conditionals
