"""Schedules: construction, canonical ids, atoms, parsing, generation."""

import pytest

from repro.chaos.schedule import (
    FaultSchedule,
    _spread_indices,
    pairwise_schedules,
    single_fault_schedules,
)
from repro.chaos.space import FaultSpace


def space_of(**totals) -> FaultSpace:
    return FaultSpace(counts={site: {"main": n} for site, n in totals.items()})


class TestFaultSchedule:
    def test_of_sorts_and_normalizes(self):
        sched = FaultSchedule.of({"shard_death": 2, "journal_enospc": [3, 1]})
        assert sched.sites == (
            ("journal_enospc", (1, 3)),
            ("shard_death", 2),
        )

    def test_singleton_list_collapses_to_int(self):
        sched = FaultSchedule.of({"journal_enospc": [3]})
        assert sched.sites == (("journal_enospc", 3),)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSchedule.of({"not_a_site": 1})

    def test_bool_trigger_rejected(self):
        with pytest.raises(ValueError, match="unsupported schedule trigger"):
            FaultSchedule.of({"journal_enospc": True})

    def test_schedule_id(self):
        assert FaultSchedule.of({}).schedule_id == "fault-free"
        assert (
            FaultSchedule.of({"journal_enospc": 3}).schedule_id
            == "journal_enospc@3"
        )
        sched = FaultSchedule.of({"shard_death": 1, "journal_enospc": (3, 7)})
        assert sched.schedule_id == "journal_enospc@3+7+shard_death@1"

    def test_atoms_roundtrip(self):
        sched = FaultSchedule.of({"shard_death": 1, "journal_enospc": (3, 7)})
        atoms = sched.atoms()
        assert atoms == [
            ("journal_enospc", 3), ("journal_enospc", 7), ("shard_death", 1),
        ]
        assert FaultSchedule.from_atoms(atoms) == sched

    def test_from_atoms_merges_duplicate_sites(self):
        sched = FaultSchedule.from_atoms(
            [("journal_enospc", 7), ("journal_enospc", 3)]
        )
        assert sched.sites == (("journal_enospc", (3, 7)),)

    def test_parse(self):
        sched = FaultSchedule.parse("journal_enospc@3+shard_death@1")
        assert sched.schedule_id == "journal_enospc@3+shard_death@1"
        # A repeated site merges into a multi-index trigger.
        sched = FaultSchedule.parse("journal_enospc@3+journal_enospc@7")
        assert sched.sites == (("journal_enospc", (3, 7)),)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSchedule.parse("journal_enospc")
        with pytest.raises(ValueError):
            FaultSchedule.parse("")

    def test_json_roundtrip(self):
        sched = FaultSchedule.of({"shard_death": 1, "journal_enospc": (3, 7)})
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_to_plan_arms_exactly_the_sites(self):
        plan = FaultSchedule.of({"journal_enospc": 2}).to_plan()
        assert plan.journal_enospc == 2
        assert not plan.shard_death
        # Tuple triggers fire on exactly those call indices.
        plan = FaultSchedule.of({"shard_death": (1, 3)}).to_plan()
        assert plan.fires("shard_death", plan.shard_death) is True   # call 1
        assert plan.fires("shard_death", plan.shard_death) is False  # call 2
        assert plan.fires("shard_death", plan.shard_death) is True   # call 3
        assert plan.fires("shard_death", plan.shard_death) is False  # call 4


class TestSpread:
    def test_spread_edges_and_middle(self):
        assert _spread_indices(0, 2) == []
        assert _spread_indices(1, 2) == [1]
        assert _spread_indices(5, 1) == [1]
        picks = _spread_indices(10, 3)
        assert picks[0] == 1
        assert 10 in picks or len(picks) == 3
        assert picks == sorted(set(picks))
        assert all(1 <= i <= 10 for i in picks)

    def test_spread_always_includes_first_call(self):
        for total in range(1, 20):
            for per_site in range(1, 5):
                picks = _spread_indices(total, per_site)
                assert picks[0] == 1
                assert len(picks) <= per_site


class TestGeneration:
    def test_single_fault_schedules(self):
        space = space_of(journal_enospc=8, shard_death=1)
        scheds = single_fault_schedules(space, per_site=2)
        ids = [s.schedule_id for s in scheds]
        assert "journal_enospc@1" in ids
        assert "shard_death@1" in ids
        assert len([i for i in ids if i.startswith("journal_enospc")]) == 2

    def test_pairwise_schedules_bounded_and_deterministic(self):
        space = space_of(journal_enospc=4, shard_death=2, solver_timeout=1)
        first = pairwise_schedules(space, limit=4)
        second = pairwise_schedules(space, limit=4)
        assert [s.schedule_id for s in first] == [
            s.schedule_id for s in second
        ]
        assert len(first) <= 4
        # Same-site pair for a site consulted >= 2 times compiles to a
        # multi-index trigger.
        same = [s for s in pairwise_schedules(space, limit=16)
                if len(s.sites) == 1 and isinstance(s.sites[0][1], tuple)]
        assert any(s.sites[0][0] == "journal_enospc" for s in same)
        # Sites consulted once never get a same-site pair.
        assert not any(s.sites[0][0] == "solver_timeout" for s in same)

    def test_generation_is_pure_function_of_space(self):
        space = space_of(journal_enospc=8, shard_death=3, store_enospc=5)
        a = [s.schedule_id for s in single_fault_schedules(space, per_site=3)]
        b = [s.schedule_id for s in single_fault_schedules(space, per_site=3)]
        assert a == b
